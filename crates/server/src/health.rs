//! Per-downstream health tracking for the router tier: a circuit
//! breaker that learns which shard servers are alive instead of
//! rediscovering it on every scatter.
//!
//! The state machine (normative; `ARCHITECTURE.md`, "router tier"):
//!
//! ```text
//!            call failure                trip (consecutive or rate)
//!  Healthy ──────────────▶ Suspect ───────────────────────▶ Ejected
//!     ▲  ◀──────────────     │                                 │
//!     │    call success      └───(more failures)───────────────┘
//!     │                                                        │ probe due
//!     │   M consecutive probe successes                        ▼
//!     └───(tiling re-validated, module re-pushed)────────── Probing
//!                                  (probe failure → Ejected, backed off)
//! ```
//!
//! `Healthy` and `Suspect` admit scatter traffic; `Ejected` and
//! `Probing` do not — an ejected shard's slot fails **instantly** at
//! scatter time (`Degraded` merges the survivors with the shard in
//! `missing_shards`, `Strict` refuses fast), so a dead downstream costs
//! the fleet ~zero wait instead of a `shard_timeout` per request. Two
//! trips eject: a run of [`HealthConfig::consecutive_failures`], or a
//! full outcome window whose failure rate reaches
//! [`HealthConfig::failure_rate`]. Re-admission is earned, not timed:
//! a background prober re-checks the shard at exponentially backed-off
//! intervals and only [`HealthConfig::readmit_successes`] consecutive
//! probe successes — plus a tiling re-validation and a module re-push,
//! which the router performs between `Probing` and `Healthy` — return
//! it to traffic.
//!
//! Call outcomes that arrive while the shard is already out of the
//! scatter set (stragglers from pre-ejection calls) are ignored: only
//! probes may move an ejected shard.

use crate::protocol::HealthState;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Circuit-breaker tuning for one router deployment (shared by every
/// downstream tracker).
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive call failures that trip ejection.
    pub consecutive_failures: u32,
    /// Recent-outcome window size for the rate trip (outcomes, not
    /// time).
    pub window: usize,
    /// Failure rate over a **full** window that trips ejection even
    /// without a consecutive run (interleaved successes can otherwise
    /// keep a mostly-dead shard in the scatter forever).
    pub failure_rate: f64,
    /// Delay from ejection (or a successful probe that has not yet
    /// reached the re-admission quorum) to the next probe.
    pub probe_interval: Duration,
    /// Probe-interval clamp as failed probes back off exponentially
    /// (`probe_interval · 2^fails`, capped here).
    pub probe_backoff_max: Duration,
    /// Consecutive probe successes required before re-admission (M).
    /// A single lucky probe must not put a flapping shard back into
    /// every scatter.
    pub readmit_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            consecutive_failures: 5,
            window: 32,
            failure_rate: 0.5,
            probe_interval: Duration::from_millis(100),
            probe_backoff_max: Duration::from_secs(2),
            readmit_successes: 3,
        }
    }
}

/// Mutable half of the tracker, under one small mutex (touched once
/// per call outcome and per probe — never on the scan path itself).
struct HealthInner {
    state: HealthState,
    /// Consecutive call failures while admitting traffic.
    consecutive: u32,
    /// Recent call outcomes, `true` = failure (rate trip input).
    outcomes: VecDeque<bool>,
    /// Consecutive failed probes since ejection (backoff exponent).
    probe_fails: u32,
    /// Consecutive successful probes toward the re-admission quorum.
    probe_successes: u32,
    /// Earliest instant the next probe may run (while `Ejected`).
    next_probe_at: Instant,
}

/// One downstream's circuit breaker: the state machine under a mutex,
/// plus lock-free lifetime counters for the stats snapshot.
pub(crate) struct HealthTracker {
    cfg: HealthConfig,
    inner: Mutex<HealthInner>,
    /// Trips into `Ejected`.
    pub(crate) ejections: AtomicU64,
    /// Probed returns to `Healthy`.
    pub(crate) readmissions: AtomicU64,
    /// Failed re-admission probes (refused, mis-tiled, or a failed
    /// module push).
    pub(crate) probe_failures: AtomicU64,
    /// Scatters that skipped this downstream while ejected.
    pub(crate) fast_degrades: AtomicU64,
}

impl HealthTracker {
    pub(crate) fn new(cfg: HealthConfig) -> Self {
        HealthTracker {
            cfg,
            inner: Mutex::new(HealthInner {
                state: HealthState::Healthy,
                consecutive: 0,
                outcomes: VecDeque::new(),
                probe_fails: 0,
                probe_successes: 0,
                next_probe_at: Instant::now(),
            }),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            probe_failures: AtomicU64::new(0),
            fast_degrades: AtomicU64::new(0),
        }
    }

    /// Current state (for stats; decisions use the specific methods).
    pub(crate) fn state(&self) -> HealthState {
        self.inner.lock().expect("health lock").state
    }

    /// Whether scatter jobs may be enqueued to this downstream —
    /// exactly the `Healthy`/`Suspect` half of the state machine.
    pub(crate) fn admits_scatter(&self) -> bool {
        matches!(self.state(), HealthState::Healthy | HealthState::Suspect)
    }

    /// Record one successful call. Ignored unless the shard is
    /// admitting traffic (a straggler from before an ejection must not
    /// shortcut the probe path).
    pub(crate) fn record_success(&self) {
        let mut inner = self.inner.lock().expect("health lock");
        if !admitting(inner.state) {
            return;
        }
        inner.consecutive = 0;
        inner.state = HealthState::Healthy;
        let window = self.cfg.window;
        push_outcome(&mut inner.outcomes, false, window);
    }

    /// Record one failed call (timeout, refused connection, malformed
    /// partial). Trips ejection on the consecutive-run or windowed-rate
    /// threshold; otherwise marks the shard `Suspect`. Ignored unless
    /// admitting traffic.
    pub(crate) fn record_failure(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("health lock");
        if !admitting(inner.state) {
            return;
        }
        inner.consecutive += 1;
        let window = self.cfg.window;
        push_outcome(&mut inner.outcomes, true, window);
        let run_trip = inner.consecutive >= self.cfg.consecutive_failures;
        let rate_trip = window > 0 && inner.outcomes.len() >= window && {
            let fails = inner.outcomes.iter().filter(|&&f| f).count();
            fails as f64 / inner.outcomes.len() as f64 >= self.cfg.failure_rate
        };
        if run_trip || rate_trip {
            inner.state = HealthState::Ejected;
            inner.consecutive = 0;
            inner.outcomes.clear();
            inner.probe_fails = 0;
            inner.probe_successes = 0;
            inner.next_probe_at = now + self.cfg.probe_interval;
            self.ejections.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.state = HealthState::Suspect;
        }
    }

    /// Count one scatter that skipped this downstream while ejected.
    pub(crate) fn note_fast_degrade(&self) {
        self.fast_degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Claim the due probe slot: transitions `Ejected → Probing` and
    /// returns `true` iff the shard is ejected and its backed-off probe
    /// time has arrived — at most one prober wins.
    pub(crate) fn take_due_probe(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock().expect("health lock");
        if inner.state == HealthState::Ejected && now >= inner.next_probe_at {
            inner.state = HealthState::Probing;
            true
        } else {
            false
        }
    }

    /// Record a successful probe. Returns `true` when this success
    /// completes the re-admission quorum (`readmit_successes`
    /// consecutive) — the shard stays `Probing` and the caller must
    /// finish re-admission (module push, then [`Self::readmit`]) or
    /// fail it ([`Self::probe_failed`]). Below the quorum the shard
    /// returns to `Ejected` with the backoff reset to the base
    /// interval.
    pub(crate) fn probe_succeeded(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock().expect("health lock");
        if inner.state != HealthState::Probing {
            return false;
        }
        inner.probe_fails = 0;
        inner.probe_successes += 1;
        if inner.probe_successes >= self.cfg.readmit_successes {
            true
        } else {
            inner.state = HealthState::Ejected;
            inner.next_probe_at = now + self.cfg.probe_interval;
            false
        }
    }

    /// Record a failed probe (or a failed re-admission step after the
    /// quorum): back to `Ejected`, success run reset, next probe
    /// exponentially backed off.
    pub(crate) fn probe_failed(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("health lock");
        if !matches!(inner.state, HealthState::Probing | HealthState::Ejected) {
            return;
        }
        inner.state = HealthState::Ejected;
        inner.probe_successes = 0;
        inner.probe_fails = inner.probe_fails.saturating_add(1);
        let exp = inner.probe_fails.min(16);
        let backoff = self
            .cfg
            .probe_interval
            .saturating_mul(1u32 << exp)
            .min(self.cfg.probe_backoff_max)
            .max(self.cfg.probe_interval);
        inner.next_probe_at = now + backoff;
        self.probe_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Complete re-admission after the probe quorum and the module
    /// push: `Probing → Healthy` with a clean slate.
    pub(crate) fn readmit(&self) {
        let mut inner = self.inner.lock().expect("health lock");
        if inner.state != HealthState::Probing {
            return;
        }
        inner.state = HealthState::Healthy;
        inner.consecutive = 0;
        inner.outcomes.clear();
        inner.probe_fails = 0;
        inner.probe_successes = 0;
        self.readmissions.fetch_add(1, Ordering::Relaxed);
    }
}

fn admitting(state: HealthState) -> bool {
    matches!(state, HealthState::Healthy | HealthState::Suspect)
}

fn push_outcome(outcomes: &mut VecDeque<bool>, failed: bool, window: usize) {
    if window == 0 {
        return;
    }
    if outcomes.len() >= window {
        outcomes.pop_front();
    }
    outcomes.push_back(failed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(consecutive: u32, window: usize, rate: f64, m: u32) -> HealthConfig {
        HealthConfig {
            consecutive_failures: consecutive,
            window,
            failure_rate: rate,
            probe_interval: Duration::from_millis(10),
            probe_backoff_max: Duration::from_millis(80),
            readmit_successes: m,
        }
    }

    #[test]
    fn consecutive_run_trips_ejection() {
        let t = HealthTracker::new(cfg(3, 100, 1.1, 2));
        let now = Instant::now();
        assert!(t.admits_scatter());
        t.record_failure(now);
        assert_eq!(t.state(), HealthState::Suspect);
        assert!(t.admits_scatter(), "Suspect still takes traffic");
        t.record_failure(now);
        assert!(t.admits_scatter());
        t.record_failure(now);
        assert_eq!(t.state(), HealthState::Ejected);
        assert!(!t.admits_scatter());
        assert_eq!(t.ejections.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn a_success_resets_the_consecutive_run() {
        let t = HealthTracker::new(cfg(3, 100, 1.1, 2));
        let now = Instant::now();
        for _ in 0..10 {
            t.record_failure(now);
            t.record_failure(now);
            t.record_success();
            assert_eq!(t.state(), HealthState::Healthy);
        }
        assert_eq!(t.ejections.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn windowed_rate_trips_without_a_consecutive_run() {
        // Alternating fail/ok never reaches 3 consecutive, but a 50%
        // rate over a full window of 8 trips on the next failure.
        let t = HealthTracker::new(cfg(3, 8, 0.5, 2));
        let now = Instant::now();
        for _ in 0..4 {
            t.record_failure(now);
            t.record_success();
        }
        assert!(t.admits_scatter(), "window not yet tripped");
        t.record_failure(now);
        assert_eq!(
            t.state(),
            HealthState::Ejected,
            "a mostly-dead shard must not ride interleaved successes forever"
        );
    }

    #[test]
    fn probe_path_backs_off_and_requires_the_quorum() {
        let t = HealthTracker::new(cfg(1, 100, 1.1, 2));
        let t0 = Instant::now();
        t.record_failure(t0);
        assert_eq!(t.state(), HealthState::Ejected);
        // Not due before the interval.
        assert!(!t.take_due_probe(t0));
        let due = t0 + Duration::from_millis(10);
        assert!(t.take_due_probe(due));
        assert_eq!(t.state(), HealthState::Probing);
        // Only one claimant wins the slot.
        assert!(!t.take_due_probe(due));
        // Failure: back off (2× base), success run reset.
        t.probe_failed(due);
        assert_eq!(t.state(), HealthState::Ejected);
        assert_eq!(t.probe_failures.load(Ordering::Relaxed), 1);
        assert!(!t.take_due_probe(due + Duration::from_millis(10)));
        assert!(t.take_due_probe(due + Duration::from_millis(20)));
        // One success is below the quorum: Ejected again, base interval.
        assert!(!t.probe_succeeded(due + Duration::from_millis(20)));
        assert_eq!(t.state(), HealthState::Ejected);
        let due2 = due + Duration::from_millis(30);
        assert!(t.take_due_probe(due2));
        // Second consecutive success reaches M = 2: readmission may
        // proceed, state holds at Probing until it completes.
        assert!(t.probe_succeeded(due2));
        assert_eq!(t.state(), HealthState::Probing);
        assert!(!t.admits_scatter(), "no traffic before the module push");
        t.readmit();
        assert_eq!(t.state(), HealthState::Healthy);
        assert_eq!(t.readmissions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stale_call_outcomes_cannot_move_an_ejected_shard() {
        let t = HealthTracker::new(cfg(1, 100, 1.1, 1));
        let now = Instant::now();
        t.record_failure(now);
        assert_eq!(t.state(), HealthState::Ejected);
        t.record_success(); // straggler from a pre-ejection call
        assert_eq!(t.state(), HealthState::Ejected);
        t.record_failure(now);
        assert_eq!(t.ejections.load(Ordering::Relaxed), 1, "no double trip");
    }

    /// Driver for the proptests: replay an arbitrary event script
    /// against a tracker, modeling the prober's contract (probe
    /// outcomes only follow a claimed slot; a completed quorum is
    /// followed by readmit or probe_failed).
    #[derive(Debug, Clone, Copy)]
    enum Event {
        CallOk,
        CallFail,
        /// Advance time past any backoff and run one probe with this
        /// outcome (push succeeding) if a probe is due.
        Probe {
            ok: bool,
            push_ok: bool,
        },
    }

    fn event_strategy() -> impl Strategy<Value = Event> {
        (0u8..3, any::<bool>(), any::<bool>()).prop_map(|(kind, ok, push_ok)| match kind {
            0 => Event::CallOk,
            1 => Event::CallFail,
            _ => Event::Probe { ok, push_ok },
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Scatter admission is exactly the Healthy/Suspect half of the
        // machine, under any interleaving of call outcomes and probes —
        // the "no scatter ever enqueues to an Ejected shard" invariant
        // the router's filter relies on.
        #[test]
        fn admission_matches_state_under_any_script(
            events in prop::collection::vec(event_strategy(), 0..200),
            consecutive in 1u32..6,
            m in 1u32..4,
        ) {
            let t = HealthTracker::new(cfg(consecutive, 16, 0.5, m));
            let mut now = Instant::now();
            for ev in events {
                match ev {
                    Event::CallOk => t.record_success(),
                    Event::CallFail => t.record_failure(now),
                    Event::Probe { ok, push_ok } => {
                        now += Duration::from_secs(10); // past any backoff
                        if t.take_due_probe(now) {
                            if !ok {
                                t.probe_failed(now);
                            } else if t.probe_succeeded(now) {
                                if push_ok {
                                    t.readmit();
                                } else {
                                    t.probe_failed(now);
                                }
                            }
                        }
                    }
                }
                let state = t.state();
                prop_assert_eq!(
                    t.admits_scatter(),
                    matches!(state, HealthState::Healthy | HealthState::Suspect),
                    "admission must mirror the state, got {:?}", state
                );
                // While out of the scatter set, call outcomes are inert:
                // the counters only ever move via the probe path.
                if matches!(state, HealthState::Ejected | HealthState::Probing) {
                    t.record_success();
                    t.record_failure(now);
                    prop_assert_eq!(t.state(), state);
                }
            }
        }

        // Re-admission requires exactly M consecutive probe successes:
        // M-1 successes (however many times, with a failure in between)
        // never readmit; the M-th consecutive one does.
        #[test]
        fn readmission_requires_exactly_m_consecutive_successes(
            m in 1u32..5,
            rounds in 1usize..4,
        ) {
            let t = HealthTracker::new(cfg(1, 16, 1.1, m));
            let mut now = Instant::now();
            t.record_failure(now);
            prop_assert_eq!(t.state(), HealthState::Ejected);
            // `rounds` times: M-1 successes then a failure — never in.
            for _ in 0..rounds {
                for _ in 0..m - 1 {
                    now += Duration::from_secs(10);
                    prop_assert!(t.take_due_probe(now));
                    prop_assert!(!t.probe_succeeded(now), "below the quorum");
                    prop_assert_eq!(t.state(), HealthState::Ejected);
                }
                now += Duration::from_secs(10);
                prop_assert!(t.take_due_probe(now));
                t.probe_failed(now);
                prop_assert_eq!(t.state(), HealthState::Ejected);
            }
            prop_assert_eq!(t.readmissions.load(Ordering::Relaxed), 0);
            // M consecutive successes: exactly the quorum, then in.
            for i in 0..m {
                now += Duration::from_secs(10);
                prop_assert!(t.take_due_probe(now));
                let quorum = t.probe_succeeded(now);
                prop_assert_eq!(quorum, i == m - 1);
            }
            t.readmit();
            prop_assert_eq!(t.state(), HealthState::Healthy);
            prop_assert_eq!(t.readmissions.load(Ordering::Relaxed), 1);
        }
    }
}
