//! Per-downstream connection pools for the router tier: a bounded job
//! queue per shard server, drained by a few worker threads that each
//! own one TCP connection with connect/read/write **timeouts**,
//! exponential **backoff + reconnect**, and bounded **retries** — every
//! scatter call resolves within its gather's deadline, no matter what
//! the wire does.
//!
//! Failure taxonomy (each path is deterministic and bounded):
//!
//! * **connect failure** → backoff (`base · 2^fails`, clamped), retry
//!   until the deadline; successful re-establishment after the worker's
//!   first connect counts one reconnect;
//! * **I/O failure mid-call** (reset, truncated reply, poisoned
//!   stream) → the connection is discarded (a late reply must never
//!   desync a reused stream), one retry is counted, and the call
//!   re-runs on a fresh connection;
//! * **deadline passed** → one timeout is counted and the shard's slot
//!   is delivered as failed — the gather's failure policy decides
//!   whether the reply degrades or errors;
//! * **downstream protocol error** (a coded `Error` reply, a malformed
//!   partial) → delivered as a failure immediately, no retry — the
//!   shard answered, it just answered wrong.
//!
//! Injected faults (see [`crate::faults`]) are applied here, at the
//! call edge, and fire **once per decided call**: the retry that
//! follows runs clean, so drop/truncate/cut faults prove the retry
//! path heals while black-hole/delay faults prove the timeout path
//! bounds.

use crate::faults::{FaultMode, FaultPlan};
use crate::metrics::DownstreamStats;
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::router::RouterGather;
use fbp_vecdb::ShardPartial;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sleep slice for bounded waits (fault delays, black holes) — the
/// shutdown-poll granularity of a stalled call.
const SLICE: Duration = Duration::from_millis(5);

/// Pool tuning shared by every downstream (a subset of the router
/// config, resolved once at startup).
#[derive(Debug, Clone)]
pub(crate) struct PoolConfig {
    /// Bound on each TCP connect attempt.
    pub(crate) connect_timeout: Duration,
    /// SO_RCVTIMEO slice workers park in while awaiting a reply — the
    /// deadline-poll granularity, not the call budget.
    pub(crate) read_slice: Duration,
    /// SO_SNDTIMEO on every request write.
    pub(crate) write_timeout: Duration,
    /// First reconnect backoff; doubles per consecutive failure.
    pub(crate) backoff_base: Duration,
    /// Backoff clamp.
    pub(crate) backoff_max: Duration,
    /// Largest accepted reply frame.
    pub(crate) max_frame_len: u32,
    /// Pooled connections (worker threads) per downstream; ≥ 2 lets a
    /// hedge overtake a stuck primary.
    pub(crate) workers: usize,
}

/// One scatter call: deliver `gather`'s slot for this pool's shard.
pub(crate) struct Job {
    /// The request's gather cell.
    pub(crate) gather: Arc<RouterGather>,
    /// This is a hedge (duplicate) leg: skip it if the primary already
    /// delivered, and count a win if it beats the primary.
    pub(crate) hedge: bool,
}

/// One downstream shard server: its address, job queue, robustness
/// counters, and the workers draining it.
pub(crate) struct Downstream {
    /// Shard index in the router's downstream list (the id degraded
    /// replies report).
    pub(crate) shard: usize,
    /// The shard server's address.
    pub(crate) addr: SocketAddr,
    cfg: PoolConfig,
    faults: Option<Arc<FaultPlan>>,
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Scatter calls issued to this downstream (the fault plan's call
    /// index).
    calls: AtomicU64,
    /// Robustness counters + the latency ring behind the hedge delay.
    pub(crate) stats: Arc<DownstreamStats>,
}

impl Downstream {
    pub(crate) fn new(
        shard: usize,
        addr: SocketAddr,
        cfg: PoolConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Arc<Self> {
        Arc::new(Downstream {
            shard,
            addr,
            cfg,
            faults,
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            calls: AtomicU64::new(0),
            stats: Arc::new(DownstreamStats::default()),
        })
    }

    /// Start this downstream's worker threads.
    pub(crate) fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let ds = Arc::clone(self);
                std::thread::spawn(move || ds.worker_loop())
            })
            .collect()
    }

    /// Enqueue one scatter call. After shutdown the call fails
    /// immediately (the gather still resolves exactly once).
    pub(crate) fn enqueue(&self, job: Job) {
        {
            let mut q = self.jobs.lock().expect("pool lock");
            if !self.shutdown.load(Ordering::SeqCst) {
                q.push_back(job);
                self.cv.notify_one();
                return;
            }
        }
        job.gather
            .complete_shard(self.shard, Err("router shutting down".into()));
    }

    /// Stop accepting; wake every worker. Queued jobs are still drained
    /// (each fails fast under the shutdown flag), so no gather is left
    /// unresolved.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block for the next job; `None` once shut down **and** drained.
    fn next_job(&self) -> Option<Job> {
        let mut q = self.jobs.lock().expect("pool lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.cv.wait(q).expect("pool lock");
        }
    }

    fn worker_loop(self: Arc<Self>) {
        let mut conn: Option<TcpStream> = None;
        let mut connected_before = false;
        let mut consecutive_failures: u32 = 0;
        while let Some(job) = self.next_job() {
            self.execute(
                &mut conn,
                &mut connected_before,
                &mut consecutive_failures,
                &job,
            );
        }
    }

    /// Run one scatter call to completion: apply any scripted fault,
    /// then write/read with retries until success, deadline, or
    /// shutdown. Exactly one `complete_shard` delivery happens unless
    /// another leg (hedge or primary) already resolved the slot.
    fn execute(
        &self,
        conn: &mut Option<TcpStream>,
        connected_before: &mut bool,
        consecutive_failures: &mut u32,
        job: &Job,
    ) {
        let gather = &job.gather;
        if gather.shard_resolved(self.shard) {
            return; // the other leg already delivered
        }
        let deadline = gather.deadline();
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.decide(self.shard, call));
        let started = Instant::now();

        if fault == Some(FaultMode::BlackHole) {
            // Never touch the wire; hold the call to its deadline.
            while Instant::now() < deadline && !self.shutting_down() {
                std::thread::sleep(SLICE.min(deadline.saturating_duration_since(Instant::now())));
            }
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            gather.complete_shard(
                self.shard,
                Err(format!(
                    "shard {} black-holed past its deadline",
                    self.shard
                )),
            );
            return;
        }
        if let Some(FaultMode::Delay(d)) = fault {
            // Straggle before sending; the deadline still bounds the
            // call (a delay past it becomes a timeout below).
            let until = (started + d).min(deadline);
            while Instant::now() < until && !self.shutting_down() {
                std::thread::sleep(SLICE.min(until.saturating_duration_since(Instant::now())));
            }
        }

        let mut attempt: u64 = 0;
        loop {
            if self.shutting_down() {
                gather.complete_shard(self.shard, Err("router shutting down".into()));
                return;
            }
            if gather.shard_resolved(self.shard) {
                return; // a hedge (or the primary) won meanwhile
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                gather.complete_shard(self.shard, Err(format!("shard {} timed out", self.shard)));
                return;
            }
            let remaining = deadline - now;

            // (Re)connect with exponential backoff, all bounded by the
            // deadline.
            if conn.is_none() {
                if *consecutive_failures > 0 {
                    let backoff = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1u32 << (*consecutive_failures - 1).min(16))
                        .min(self.cfg.backoff_max)
                        .min(remaining);
                    std::thread::sleep(backoff);
                }
                match TcpStream::connect_timeout(
                    &self.addr,
                    self.cfg
                        .connect_timeout
                        .min(remaining.max(Duration::from_millis(1))),
                ) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(self.cfg.read_slice));
                        let _ = s.set_write_timeout(Some(self.cfg.write_timeout));
                        if *connected_before {
                            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        *connected_before = true;
                        *consecutive_failures = 0;
                        *conn = Some(s);
                    }
                    Err(_) => {
                        *consecutive_failures += 1;
                        attempt += 1;
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connection just ensured");

            // The request frame carries the gather's *current* seed —
            // a retry or hedge sent after another shard finished prunes
            // tighter than the original scatter would have.
            let frame = gather.shard_request().encode();
            let write_res = if attempt == 0 {
                match fault {
                    Some(FaultMode::CloseAtByte(n)) => {
                        // Cut the socket mid-frame: real wire damage for
                        // both sides.
                        let mut framed = (frame.len() as u32).to_le_bytes().to_vec();
                        framed.extend_from_slice(&frame);
                        let cut = n.min(framed.len());
                        let res = stream.write_all(&framed[..cut]);
                        let _ = stream.shutdown(Shutdown::Both);
                        res.and(Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "socket cut mid-request (injected)",
                        )))
                    }
                    _ => write_frame(stream, &frame),
                }
            } else {
                write_frame(stream, &frame)
            };
            if write_res.is_err() {
                *conn = None;
                *consecutive_failures += 1;
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
                continue;
            }
            if attempt == 0 && fault == Some(FaultMode::DropReply) {
                // The reply is "lost": abandon the connection without
                // reading it.
                let _ = stream.shutdown(Shutdown::Both);
                *conn = None;
                *consecutive_failures += 1;
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
                continue;
            }

            let mut keep_waiting =
                || Instant::now() < deadline && !self.shutdown.load(Ordering::SeqCst);
            match read_frame(stream, self.cfg.max_frame_len, &mut keep_waiting) {
                Ok(Some(payload)) => {
                    if attempt == 0 && fault == Some(FaultMode::TruncateReply) {
                        // The shard died mid-answer: discard what
                        // arrived and poison the stream.
                        let _ = stream.shutdown(Shutdown::Both);
                        *conn = None;
                        *consecutive_failures += 1;
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        continue;
                    }
                    match Response::decode(&payload) {
                        Ok(Response::ShardPartial { finished, entries }) => {
                            // Receivers MUST validate partial ordering
                            // (protocol rule): a malformed partial is a
                            // shard failure, not a panic in the merge.
                            match ShardPartial::from_entries(entries, finished) {
                                Ok(partial) => {
                                    self.stats.record_latency(started.elapsed());
                                    let first = gather.complete_shard(self.shard, Ok(partial));
                                    if first && job.hedge {
                                        self.stats.hedges_won.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(e) => {
                                    gather.complete_shard(
                                        self.shard,
                                        Err(format!("shard {} malformed partial: {e}", self.shard)),
                                    );
                                }
                            }
                            return;
                        }
                        Ok(Response::Error { code, message }) => {
                            // The shard answered with a typed refusal;
                            // retrying the same request cannot help.
                            gather.complete_shard(
                                self.shard,
                                Err(format!("shard {} error [{code}]: {message}", self.shard)),
                            );
                            return;
                        }
                        Ok(other) => {
                            gather.complete_shard(
                                self.shard,
                                Err(format!("shard {} unexpected reply: {other:?}", self.shard)),
                            );
                            return;
                        }
                        Err(_) => {
                            // Undecodable frame: the stream can no
                            // longer be trusted.
                            *conn = None;
                            *consecutive_failures += 1;
                            self.stats.retries.fetch_add(1, Ordering::Relaxed);
                            attempt += 1;
                            continue;
                        }
                    }
                }
                Ok(None) => {
                    // Deadline (or shutdown) expired at the frame
                    // boundary with the reply still in flight: the
                    // stream would desync if reused, so poison it and
                    // let the loop head classify the exit.
                    *conn = None;
                    continue;
                }
                Err(_) => {
                    *conn = None;
                    *consecutive_failures += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    continue;
                }
            }
        }
    }
}

/// One-shot control-plane round trip on a fresh connection (startup
/// probes, module replication) — bounded by `connect_timeout` +
/// `io_timeout`, never fault-injected.
pub(crate) fn control_call(
    addr: &SocketAddr,
    req: &Request,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_frame_len: u32,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(addr, connect_timeout)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(io_timeout))?;
    write_frame(&mut stream, &req.encode())?;
    let deadline = Instant::now() + io_timeout;
    let mut keep_waiting = || Instant::now() < deadline;
    match read_frame(&mut stream, max_frame_len, &mut keep_waiting) {
        Ok(Some(payload)) => Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "control call timed out",
        )),
        Err(e) => Err(io::Error::other(format!("control call frame: {e}"))),
    }
}
