//! Per-downstream connection pools for the router tier: a bounded job
//! queue per shard server, drained by a few worker threads that each
//! own one TCP connection with connect/read/write **timeouts**,
//! exponential **backoff + reconnect**, and bounded **retries** — every
//! scatter call resolves within its gather's deadline, no matter what
//! the wire does.
//!
//! Failure taxonomy (each path is deterministic and bounded):
//!
//! * **connect failure** → backoff (`base · 2^fails`, clamped), retry
//!   until the deadline; successful re-establishment after the worker's
//!   first connect counts one reconnect. The failure run resets only on
//!   a successful **call** (a decoded reply frame), never on a bare
//!   connect — an accept-then-die peer must keep backing off;
//! * **I/O failure mid-call** (reset, truncated reply, a peer that
//!   closes under an outstanding call, poisoned stream) → the
//!   connection is discarded (a late reply must never desync a reused
//!   stream), one retry is counted, and the call re-runs on a fresh
//!   connection;
//! * **deadline passed** → one timeout is counted and the shard's slot
//!   is delivered as failed — the gather's failure policy decides
//!   whether the reply degrades or errors;
//! * **downstream protocol error** (a coded `Error` reply, a malformed
//!   partial) → delivered as a failure immediately, no retry — the
//!   shard answered, it just answered wrong.
//!
//! Every terminal outcome also feeds the downstream's
//! [`HealthTracker`]: timeouts, refused outages, and malformed partials
//! count as failures, delivered partials (and typed refusals — the host
//! is alive) as successes. The router reads the tracker to eject
//! persistently dead shards from the scatter set up front; see
//! [`crate::health`].
//!
//! Injected faults (see [`crate::faults`]) are applied here, at the
//! call edge, and fire **once per decided call**: the retry that
//! follows runs clean, so drop/truncate/cut faults prove the retry
//! path heals while black-hole/delay faults prove the timeout path
//! bounds.

use crate::faults::{FaultMode, FaultPlan};
use crate::health::{HealthConfig, HealthTracker};
use crate::metrics::DownstreamStats;
use crate::protocol::{
    read_frame, write_frame, Request, Response, SPAN_FAILED, SPAN_FAST_DEGRADED, SPAN_HEDGE_WON,
};
use crate::router::RouterGather;
use fbp_vecdb::ShardPartial;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sleep slice for bounded waits (fault delays, black holes) — the
/// shutdown-poll granularity of a stalled call.
const SLICE: Duration = Duration::from_millis(5);

/// Pool tuning shared by every downstream (a subset of the router
/// config, resolved once at startup).
#[derive(Debug, Clone)]
pub(crate) struct PoolConfig {
    /// Bound on each TCP connect attempt.
    pub(crate) connect_timeout: Duration,
    /// SO_RCVTIMEO slice workers park in while awaiting a reply — the
    /// deadline-poll granularity, not the call budget.
    pub(crate) read_slice: Duration,
    /// SO_SNDTIMEO on every request write.
    pub(crate) write_timeout: Duration,
    /// First reconnect backoff; doubles per consecutive failure.
    pub(crate) backoff_base: Duration,
    /// Backoff clamp.
    pub(crate) backoff_max: Duration,
    /// Largest accepted reply frame.
    pub(crate) max_frame_len: u32,
    /// Pooled connections (worker threads) per downstream; ≥ 2 lets a
    /// hedge overtake a stuck primary.
    pub(crate) workers: usize,
}

/// One worker's connection state across jobs: the pooled connection,
/// whether it ever connected (reconnect accounting), and the
/// consecutive-failure count driving exponential backoff — reset only
/// by a successful call, never by a bare connect.
#[derive(Default)]
pub(crate) struct WorkerState {
    conn: Option<TcpStream>,
    connected_before: bool,
    consecutive_failures: u32,
}

/// One scatter call: deliver `gather`'s slot for this pool's shard.
pub(crate) struct Job {
    /// The request's gather cell.
    pub(crate) gather: Arc<RouterGather>,
    /// This is a hedge (duplicate) leg: skip it if the primary already
    /// delivered, and count a win if it beats the primary.
    pub(crate) hedge: bool,
}

/// One downstream shard server: its address, job queue, robustness
/// counters, and the workers draining it.
pub(crate) struct Downstream {
    /// Shard index in the router's downstream list (the id degraded
    /// replies report).
    pub(crate) shard: usize,
    /// The shard server's address.
    pub(crate) addr: SocketAddr,
    cfg: PoolConfig,
    faults: Option<Arc<FaultPlan>>,
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Scatter calls issued to this downstream (the fault plan's call
    /// index; plans scripting a `Down` outage also count control
    /// calls here — see [`Downstream::control_fault`]).
    calls: AtomicU64,
    /// Robustness counters + the latency ring behind the hedge delay.
    pub(crate) stats: Arc<DownstreamStats>,
    /// This downstream's circuit breaker, fed by every call outcome
    /// here and read by the router's scatter filter and prober.
    pub(crate) health: HealthTracker,
    /// The `(rows, offset, dim)` the startup probe validated — a
    /// re-admission probe must re-validate against exactly this tiling
    /// (a restarted shard serving different rows would break the
    /// key-space merge).
    pub(crate) expected: (u64, u64, u32),
}

impl Downstream {
    pub(crate) fn new(
        shard: usize,
        addr: SocketAddr,
        cfg: PoolConfig,
        faults: Option<Arc<FaultPlan>>,
        health: HealthConfig,
        expected: (u64, u64, u32),
    ) -> Arc<Self> {
        Arc::new(Downstream {
            shard,
            addr,
            cfg,
            faults,
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            calls: AtomicU64::new(0),
            stats: Arc::new(DownstreamStats::default()),
            health: HealthTracker::new(health),
            expected,
        })
    }

    /// The scripted fate of the router's next **control-plane** call to
    /// this downstream (re-admission probe, module push). Only plans
    /// containing a [`FaultMode::Down`] outage are consulted — a dead
    /// host refuses every call class — and only then does the control
    /// call consume a per-shard call index; wire-damage plans keep
    /// their exact scatter indices and control calls stay fault-free.
    pub(crate) fn control_fault(&self) -> Option<FaultMode> {
        let plan = self.faults.as_ref()?;
        if !plan.has_down() {
            return None;
        }
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match plan.decide(self.shard, call) {
            down @ Some(FaultMode::Down { .. }) => down,
            _ => None,
        }
    }

    /// Start this downstream's worker threads.
    pub(crate) fn spawn_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let ds = Arc::clone(self);
                std::thread::spawn(move || ds.worker_loop())
            })
            .collect()
    }

    /// Enqueue one scatter call. After shutdown the call fails
    /// immediately (the gather still resolves exactly once).
    pub(crate) fn enqueue(&self, job: Job) {
        {
            let mut q = self.jobs.lock().expect("pool lock");
            if !self.shutdown.load(Ordering::SeqCst) {
                q.push_back(job);
                self.cv.notify_one();
                return;
            }
        }
        job.gather
            .complete_shard(self.shard, Err("router shutting down".into()));
    }

    /// Stop accepting; wake every worker. Queued jobs are still drained
    /// (each fails fast under the shutdown flag), so no gather is left
    /// unresolved.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block for the next job; `None` once shut down **and** drained.
    fn next_job(&self) -> Option<Job> {
        let mut q = self.jobs.lock().expect("pool lock");
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.cv.wait(q).expect("pool lock");
        }
    }

    fn worker_loop(self: Arc<Self>) {
        let mut state = WorkerState::default();
        while let Some(job) = self.next_job() {
            self.execute(&mut state, &job);
        }
    }

    /// Run one scatter call to completion: apply any scripted fault,
    /// then write/read with retries until success, deadline, or
    /// shutdown. Exactly one `complete_shard` delivery happens unless
    /// another leg (hedge or primary) already resolved the slot.
    fn execute(&self, state: &mut WorkerState, job: &Job) {
        let WorkerState {
            conn,
            connected_before,
            consecutive_failures,
        } = state;
        let gather = &job.gather;
        if gather.shard_resolved(self.shard) {
            return; // the other leg already delivered
        }
        if !self.health.admits_scatter() {
            // The shard was ejected after this job (typically a hedge)
            // was queued: fail the slot instantly rather than paying
            // the deadline — and record nothing, the breaker already
            // tripped.
            gather.trace_span(self.shard, None, SPAN_FAST_DEGRADED | SPAN_FAILED);
            gather.complete_shard(
                self.shard,
                Err(format!("shard {} ejected from the scatter set", self.shard)),
            );
            return;
        }
        let deadline = gather.deadline();
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .faults
            .as_ref()
            .and_then(|p| p.decide(self.shard, call));
        let started = Instant::now();

        if matches!(
            fault,
            Some(FaultMode::BlackHole) | Some(FaultMode::Down { .. })
        ) {
            // Never touch the wire; hold the call to its deadline. A
            // black hole models silence, a `Down` outage a host whose
            // every connect is refused — from this side both are a
            // call that cannot succeed before its deadline.
            while Instant::now() < deadline && !self.shutting_down() {
                std::thread::sleep(SLICE.min(deadline.saturating_duration_since(Instant::now())));
            }
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            self.health.record_failure(Instant::now());
            let what = if fault == Some(FaultMode::BlackHole) {
                "black-holed past its deadline"
            } else {
                "down: every connect refused until the deadline"
            };
            gather.trace_span(self.shard, Some(started), SPAN_FAILED);
            gather.complete_shard(self.shard, Err(format!("shard {} {what}", self.shard)));
            return;
        }
        if let Some(FaultMode::Delay(d)) = fault {
            // Straggle before sending; the deadline still bounds the
            // call (a delay past it becomes a timeout below).
            let until = (started + d).min(deadline);
            while Instant::now() < until && !self.shutting_down() {
                std::thread::sleep(SLICE.min(until.saturating_duration_since(Instant::now())));
            }
        }

        let mut attempt: u64 = 0;
        loop {
            if self.shutting_down() {
                gather.trace_span(self.shard, Some(started), SPAN_FAILED);
                gather.complete_shard(self.shard, Err("router shutting down".into()));
                return;
            }
            if gather.shard_resolved(self.shard) {
                return; // a hedge (or the primary) won meanwhile
            }
            let now = Instant::now();
            if now >= deadline {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.health.record_failure(now);
                gather.trace_span(self.shard, Some(started), SPAN_FAILED);
                gather.complete_shard(self.shard, Err(format!("shard {} timed out", self.shard)));
                return;
            }
            let remaining = deadline - now;

            // (Re)connect with exponential backoff, all bounded by the
            // deadline.
            if conn.is_none() {
                if *consecutive_failures > 0 {
                    let backoff = self
                        .cfg
                        .backoff_base
                        .saturating_mul(1u32 << (*consecutive_failures - 1).min(16))
                        .min(self.cfg.backoff_max)
                        .min(remaining);
                    std::thread::sleep(backoff);
                }
                match TcpStream::connect_timeout(
                    &self.addr,
                    self.cfg
                        .connect_timeout
                        .min(remaining.max(Duration::from_millis(1))),
                ) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_read_timeout(Some(self.cfg.read_slice));
                        let _ = s.set_write_timeout(Some(self.cfg.write_timeout));
                        if *connected_before {
                            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                        *connected_before = true;
                        // Deliberately NOT resetting the backoff counter
                        // here: only a *successful call* proves the peer
                        // is serving. An accept-then-die loop (a host
                        // whose listener is up but whose process keeps
                        // crashing) used to reset the counter on every
                        // connect, defeating exponential backoff
                        // entirely.
                        *conn = Some(s);
                    }
                    Err(_) => {
                        *consecutive_failures += 1;
                        attempt += 1;
                        continue;
                    }
                }
            }
            let stream = conn.as_mut().expect("connection just ensured");

            // The request frame carries the gather's *current* seed —
            // a retry or hedge sent after another shard finished prunes
            // tighter than the original scatter would have.
            let frame = gather.shard_request().encode();
            let write_res = if attempt == 0 {
                match fault {
                    Some(FaultMode::CloseAtByte(n)) => {
                        // Cut the socket mid-frame: real wire damage for
                        // both sides.
                        let mut framed = (frame.len() as u32).to_le_bytes().to_vec();
                        framed.extend_from_slice(&frame);
                        let cut = n.min(framed.len());
                        let res = stream.write_all(&framed[..cut]);
                        let _ = stream.shutdown(Shutdown::Both);
                        res.and(Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "socket cut mid-request (injected)",
                        )))
                    }
                    _ => write_frame(stream, &frame),
                }
            } else {
                write_frame(stream, &frame)
            };
            if write_res.is_err() {
                *conn = None;
                *consecutive_failures += 1;
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
                continue;
            }
            if attempt == 0 && fault == Some(FaultMode::DropReply) {
                // The reply is "lost": abandon the connection without
                // reading it.
                let _ = stream.shutdown(Shutdown::Both);
                *conn = None;
                *consecutive_failures += 1;
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                attempt += 1;
                continue;
            }

            let mut keep_waiting =
                || Instant::now() < deadline && !self.shutdown.load(Ordering::SeqCst);
            match read_frame(stream, self.cfg.max_frame_len, &mut keep_waiting) {
                Ok(Some(payload)) => {
                    if attempt == 0 && fault == Some(FaultMode::TruncateReply) {
                        // The shard died mid-answer: discard what
                        // arrived and poison the stream.
                        let _ = stream.shutdown(Shutdown::Both);
                        *conn = None;
                        *consecutive_failures += 1;
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        continue;
                    }
                    match Response::decode(&payload) {
                        Ok(decoded) => {
                            // A decoded reply proves the peer is
                            // serving: the reconnect backoff restarts
                            // from its base. (This is the successful-
                            // call reset; a successful *connect* alone
                            // no longer resets — see above.)
                            *consecutive_failures = 0;
                            match decoded {
                                Response::ShardPartial { finished, entries } => {
                                    // Receivers MUST validate partial
                                    // ordering (protocol rule): a
                                    // malformed partial is a shard
                                    // failure, not a panic in the merge.
                                    match ShardPartial::from_entries(entries, finished) {
                                        Ok(partial) => {
                                            self.stats.record_latency(started.elapsed());
                                            self.health.record_success();
                                            // A hedge leg that records
                                            // the span is the leg that
                                            // resolved the shard — its
                                            // answer won.
                                            gather.trace_span(
                                                self.shard,
                                                Some(started),
                                                if job.hedge { SPAN_HEDGE_WON } else { 0 },
                                            );
                                            let first =
                                                gather.complete_shard(self.shard, Ok(partial));
                                            if first && job.hedge {
                                                self.stats
                                                    .hedges_won
                                                    .fetch_add(1, Ordering::Relaxed);
                                            }
                                        }
                                        Err(e) => {
                                            // The host is up but serving
                                            // garbage: a data-plane
                                            // failure the breaker must
                                            // see.
                                            self.health.record_failure(Instant::now());
                                            gather.trace_span(
                                                self.shard,
                                                Some(started),
                                                SPAN_FAILED,
                                            );
                                            gather.complete_shard(
                                                self.shard,
                                                Err(format!(
                                                    "shard {} malformed partial: {e}",
                                                    self.shard
                                                )),
                                            );
                                        }
                                    }
                                    return;
                                }
                                Response::Error { code, message } => {
                                    // The shard answered with a typed
                                    // refusal; retrying the same request
                                    // cannot help. The host is alive —
                                    // liveness-wise this is a success.
                                    self.health.record_success();
                                    gather.trace_span(self.shard, Some(started), SPAN_FAILED);
                                    gather.complete_shard(
                                        self.shard,
                                        Err(format!(
                                            "shard {} error [{code}]: {message}",
                                            self.shard
                                        )),
                                    );
                                    return;
                                }
                                other => {
                                    self.health.record_failure(Instant::now());
                                    gather.trace_span(self.shard, Some(started), SPAN_FAILED);
                                    gather.complete_shard(
                                        self.shard,
                                        Err(format!(
                                            "shard {} unexpected reply: {other:?}",
                                            self.shard
                                        )),
                                    );
                                    return;
                                }
                            }
                        }
                        Err(_) => {
                            // Undecodable frame: the stream can no
                            // longer be trusted.
                            *conn = None;
                            *consecutive_failures += 1;
                            self.stats.retries.fetch_add(1, Ordering::Relaxed);
                            attempt += 1;
                            continue;
                        }
                    }
                }
                Ok(None) => {
                    // The stream ended at a frame boundary with the
                    // reply still outstanding. Two distinct causes: the
                    // deadline/shutdown poll stopped the wait (let the
                    // loop head classify the exit), or the peer closed
                    // the connection under our call — a real failure
                    // that must feed the backoff, or an accept-then-
                    // close peer would be hammered in a hot reconnect
                    // loop.
                    *conn = None;
                    if Instant::now() < deadline && !self.shutting_down() {
                        *consecutive_failures += 1;
                        self.stats.retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                    }
                    continue;
                }
                Err(_) => {
                    *conn = None;
                    *consecutive_failures += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    continue;
                }
            }
        }
    }
}

/// One-shot control-plane round trip on a fresh connection (startup
/// probes, module replication) — bounded by `connect_timeout` +
/// `io_timeout`, never fault-injected.
pub(crate) fn control_call(
    addr: &SocketAddr,
    req: &Request,
    connect_timeout: Duration,
    io_timeout: Duration,
    max_frame_len: u32,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(addr, connect_timeout)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_millis(20)))?;
    stream.set_write_timeout(Some(io_timeout))?;
    write_frame(&mut stream, &req.encode())?;
    let deadline = Instant::now() + io_timeout;
    let mut keep_waiting = || Instant::now() < deadline;
    match read_frame(&mut stream, max_frame_len, &mut keep_waiting) {
        Ok(Some(payload)) => Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        Ok(None) => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "control call timed out",
        )),
        Err(e) => Err(io::Error::other(format!("control call frame: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterGather;
    use fbp_vecdb::{FailurePolicy, WeightedEuclidean};
    use std::io::Read as _;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn test_cfg() -> PoolConfig {
        PoolConfig {
            connect_timeout: Duration::from_millis(200),
            read_slice: Duration::from_millis(5),
            write_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
            max_frame_len: 1 << 20,
            workers: 1,
        }
    }

    /// A shard-server stand-in whose first connections misbehave:
    /// connections `0..drops` accept and immediately close (an
    /// accept-then-die host), connection `drops` accepts the request
    /// and stalls without replying, every later connection serves empty
    /// `ShardPartial` replies.
    fn misbehaving_server(drops: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(mut stream) = stream else { continue };
                if i < drops {
                    continue; // dropped on the floor: accept-then-die
                }
                std::thread::spawn(move || {
                    if i == drops {
                        // Swallow the request, never answer.
                        let mut buf = [0u8; 4096];
                        let _ = stream.read(&mut buf);
                        std::thread::sleep(Duration::from_millis(500));
                        return;
                    }
                    loop {
                        let mut keep = || true;
                        match read_frame(&mut stream, 1 << 20, &mut keep) {
                            Ok(Some(_)) => {
                                let reply = Response::ShardPartial {
                                    finished: false,
                                    entries: Vec::new(),
                                }
                                .encode();
                                if write_frame(&mut stream, &reply).is_err() {
                                    return;
                                }
                            }
                            _ => return,
                        }
                    }
                });
            }
        });
        addr
    }

    /// A single-shard gather whose reply reports success/failure on a
    /// channel.
    fn gather_for(deadline: Duration) -> (Arc<RouterGather>, mpsc::Receiver<bool>) {
        let (tx, rx) = mpsc::channel();
        let gather = RouterGather::new(
            1,
            WeightedEuclidean::new(vec![1.0, 1.0]).unwrap(),
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            1,
            deadline,
            FailurePolicy::Strict,
            None,
            Box::new(move |outcome| {
                let _ = tx.send(outcome.is_ok());
            }),
        );
        (gather, rx)
    }

    /// Backoff-reset regression: the exponential-backoff run must
    /// survive successful connects to a dead peer (accept-then-die used
    /// to reset it on every connect, defeating backoff entirely) and
    /// reset on the first successful *call* — so a single transient
    /// fault never leaves the downstream paying `backoff_max` forever.
    #[test]
    fn backoff_resets_on_successful_call_not_on_connect() {
        let addr = misbehaving_server(2);
        let ds = Downstream::new(
            0,
            addr,
            test_cfg(),
            None,
            HealthConfig::default(),
            (0, 0, 2),
        );
        let mut state = WorkerState::default();

        // Job 1: two accept-then-die connects, then a stalled reply —
        // the call times out with the failure run intact.
        let (g1, rx1) = gather_for(Duration::from_millis(150));
        ds.execute(
            &mut state,
            &Job {
                gather: g1,
                hedge: false,
            },
        );
        assert!(!rx1.recv().unwrap(), "job 1 must fail by timeout");
        assert!(
            state.consecutive_failures >= 2,
            "successful connects to a dead peer must not reset the backoff run, got {}",
            state.consecutive_failures
        );

        // Job 2: the server answers now — the successful call resets
        // the counter, so the next transient fault restarts backoff
        // from its base instead of near `backoff_max`.
        let (g2, rx2) = gather_for(Duration::from_secs(2));
        ds.execute(
            &mut state,
            &Job {
                gather: g2,
                hedge: false,
            },
        );
        assert!(rx2.recv().unwrap(), "job 2 must succeed");
        assert_eq!(
            state.consecutive_failures, 0,
            "a successful call resets the backoff counter"
        );
        ds.shutdown();
    }
}
