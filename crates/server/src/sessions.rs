//! Server-side session registry shared by the shard server and the
//! router tier.
//!
//! Both front-ends run the same interactive loop per session — resolve
//! learned parameters at `Knn` admission, transition on ranking
//! stability / the cycle cap, advance one [`FeedbackStepper`] step per
//! judgment, commit converged parameters into the shared module — so
//! the state machine lives here once. Sessions are connection-scoped:
//! ids are sequential (they must not be capabilities), so every access
//! is checked against the opening connection, and a connection's
//! sessions die with it.

use crate::metrics::Metrics;
use crate::protocol::{ErrorCode, Response, KNN_CONVERGED, KNN_DONE};
use fbp_feedback::{FeedbackConfig, FeedbackStepper, SetOracle, StepOutcome};
use fbp_vecdb::{Collection, Neighbor, ResultList};
use feedbackbypass::SharedBypass;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Error-response helper shared by the front-ends.
pub(crate) fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// The example sets a [`crate::protocol::Request::KnnV2`] spec anchored
/// a query with — both empty for a plain v1 `Knn`. They are part of the
/// query's **identity**: a repeated request continues the session only
/// when it resends the same spec, not merely one that happens to derive
/// the same anchor, so swapping the example sets re-anchors cleanly.
#[derive(Debug, Default, PartialEq)]
pub(crate) struct ExampleSets {
    /// Positive (relevant) example vectors — the Rocchio β term.
    pub(crate) positives: Vec<Vec<f64>>,
    /// Negative (non-relevant) example vectors — the Rocchio γ term.
    pub(crate) negatives: Vec<Vec<f64>>,
}

/// One session's in-flight interactive query.
struct ActiveQuery {
    /// The anchor query point (the module insert key). For a
    /// multi-example spec this is the **derived** Rocchio anchor — the
    /// lowering happened before admission, so everything downstream
    /// (stepper, module commit) sees a plain point query.
    anchor: Vec<f64>,
    /// The example sets the anchoring request carried.
    examples: ExampleSets,
    /// Current search point.
    point: Vec<f64>,
    /// Current search weights.
    weights: Vec<f64>,
    /// Results of the previous round (set when feedback continued).
    prev: Option<ResultList>,
    /// Results of the last round, awaiting the client's judgment.
    pending: Option<ResultList>,
    /// Feedback cycles run.
    cycles: usize,
}

/// Registry entry.
struct Session {
    /// The connection that opened the session. Ownership mismatches
    /// report `UnknownSession` exactly like a missing id, so foreign
    /// connections cannot even probe which ids exist.
    owner: u64,
    active: Option<ActiveQuery>,
}

/// The session registry plus everything its transitions touch: the
/// served collection (the [`FeedbackStepper`] fetches judged rows'
/// vectors), the shared learned module, the feedback configuration,
/// and the metrics sink for protocol-error accounting.
pub(crate) struct SessionStore {
    coll: Arc<Collection>,
    bypass: SharedBypass,
    feedback: FeedbackConfig,
    metrics: Arc<Metrics>,
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
    /// Fired after every successful module commit (insert) — the router
    /// hangs its replication trigger here so the downstream shards learn
    /// what the session tier learned without an explicit
    /// `replicate_module` call.
    commit_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl SessionStore {
    pub(crate) fn new(
        coll: Arc<Collection>,
        bypass: SharedBypass,
        feedback: FeedbackConfig,
        metrics: Arc<Metrics>,
    ) -> Self {
        SessionStore {
            coll,
            bypass,
            feedback,
            metrics,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            commit_hook: Mutex::new(None),
        }
    }

    /// Install the post-commit hook (at most one; the router sets it
    /// once at startup, before serving).
    pub(crate) fn set_commit_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.commit_hook.lock().expect("hook lock") = Some(hook);
    }

    /// The served collection.
    pub(crate) fn coll(&self) -> &Arc<Collection> {
        &self.coll
    }

    /// The shared learned module.
    pub(crate) fn bypass(&self) -> &SharedBypass {
        &self.bypass
    }

    /// Sessions currently registered.
    pub(crate) fn count(&self) -> u64 {
        self.sessions.lock().expect("sessions lock").len() as u64
    }

    /// Register a fresh session owned by `conn_id`.
    pub(crate) fn open(&self, conn_id: u64) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().expect("sessions lock").insert(
            id,
            Session {
                owner: conn_id,
                active: None,
            },
        );
        id
    }

    /// Drop `session` if `conn_id` owns it; `false` reports like a
    /// missing id.
    pub(crate) fn close(&self, session: u64, conn_id: u64) -> bool {
        let mut sessions = self.sessions.lock().expect("sessions lock");
        if owned_session(&mut sessions, session, conn_id).is_some() {
            sessions.remove(&session).is_some()
        } else {
            false
        }
    }

    /// Reap every session a disconnecting connection still owns.
    pub(crate) fn drop_owned(&self, owned: &[u64]) {
        if owned.is_empty() {
            return;
        }
        let mut sessions = self.sessions.lock().expect("sessions lock");
        for id in owned {
            sessions.remove(id);
        }
    }

    /// Resolve a `Knn` request's search parameters: a repeat of the
    /// session's current anchor **and example sets** searches under its
    /// learned parameters; a fresh spec starts from the shared module's
    /// prediction (out-of-domain queries search as-is under the uniform
    /// metric — the same fallback the in-process loop driver applies).
    /// `query` is already lowered — for `KnnV2` it is the derived
    /// Rocchio anchor, so this path is identical for both opcodes.
    /// Degenerate predicted weights fall back to uniform. `Err` carries
    /// the ready-to-send error response.
    pub(crate) fn resolve_knn(
        &self,
        conn_id: u64,
        session: u64,
        query: Vec<f64>,
        examples: ExampleSets,
    ) -> Result<(Vec<f64>, Vec<f64>), Response> {
        let dim = self.coll.dim();
        // Resolve parameters, keeping predict() off the registry lock
        // (the simplex-tree lookup is the expensive part; a connection
        // is serial, so nothing else can touch this session between the
        // two critical sections).
        let resolved: Option<(Vec<f64>, Vec<f64>)> = {
            let mut sessions = self.sessions.lock().expect("sessions lock");
            let Some(sess) = owned_session(&mut sessions, session, conn_id) else {
                drop(sessions);
                self.metrics.record_protocol_error();
                return Err(err(ErrorCode::UnknownSession, format!("session {session}")));
            };
            match &sess.active {
                Some(aq) if aq.anchor == query && aq.examples == examples => {
                    Some((aq.point.clone(), aq.weights.clone()))
                }
                _ => None,
            }
        };
        let (point, weights) = match resolved {
            Some(params) => params,
            None => {
                let (point, weights) = match self.bypass.predict(&query) {
                    Ok(p) => (p.point, p.weights),
                    Err(_) => (query.clone(), vec![1.0; dim]),
                };
                let mut sessions = self.sessions.lock().expect("sessions lock");
                let Some(sess) = owned_session(&mut sessions, session, conn_id) else {
                    drop(sessions);
                    self.metrics.record_protocol_error();
                    return Err(err(ErrorCode::UnknownSession, format!("session {session}")));
                };
                sess.active = Some(ActiveQuery {
                    anchor: query,
                    examples,
                    point: point.clone(),
                    weights: weights.clone(),
                    prev: None,
                    pending: None,
                    cycles: 0,
                });
                (point, weights)
            }
        };
        // Degenerate predicted weights fall back to the uniform metric —
        // one bad prediction must not fail the whole pass.
        let weights = if weights.iter().all(|w| w.is_finite() && *w > 0.0) {
            weights
        } else {
            vec![1.0; dim]
        };
        Ok((point, weights))
    }

    /// Post-pass session bookkeeping: ranking stability and the cycle
    /// cap end the query (committing its parameters); otherwise the
    /// results await the client's judgment. Returns the reply's
    /// `(flags, cycles)`.
    pub(crate) fn finish_knn(&self, session: u64, neighbors: &[Neighbor]) -> (u8, u32) {
        let results = ResultList::new(neighbors.to_vec());
        let mut flags = 0u8;
        let mut cycles = 0u32;
        let mut commit: Option<ActiveQuery> = None;
        {
            let mut sessions = self.sessions.lock().expect("sessions lock");
            // The session may have been closed while the request was in
            // flight; results still go back, with no state to update.
            if let Some(sess) = sessions.get_mut(&session) {
                if let Some(aq) = sess.active.as_mut() {
                    let mut finished: Option<bool> = None;
                    if let Some(prev) = &aq.prev {
                        aq.cycles += 1;
                        if results.same_ranking(prev) {
                            finished = Some(true);
                        }
                    }
                    if finished.is_none() && aq.cycles >= self.feedback.max_cycles {
                        finished = Some(false);
                    }
                    cycles = aq.cycles as u32;
                    match finished {
                        Some(converged) => {
                            commit = sess.active.take();
                            flags = KNN_DONE | if converged { KNN_CONVERGED } else { 0 };
                        }
                        None => aq.pending = Some(results),
                    }
                }
            }
        }
        // The module insert takes its own write lock; keep it off the
        // registry lock so other sessions' handlers never queue behind
        // it.
        if let Some(aq) = commit {
            self.commit_parameters(&aq);
        }
        (flags, cycles)
    }

    /// Advance the session one feedback transition on its last
    /// un-judged results (the [`FeedbackStepper`] the in-process serving
    /// loop runs), committing the learned parameters on convergence.
    /// The stepper and the module insert both run **off** the registry
    /// lock — a connection is serial, so nothing else mutates this
    /// session in between; only session removal can race, and that just
    /// discards the step's outcome.
    pub(crate) fn feedback(&self, conn_id: u64, session: u64, relevant: Vec<u32>) -> Response {
        let (point, weights, results, cycles) = {
            let mut sessions = self.sessions.lock().expect("sessions lock");
            let Some(sess) = owned_session(&mut sessions, session, conn_id) else {
                drop(sessions);
                self.metrics.record_protocol_error();
                return err(ErrorCode::UnknownSession, format!("session {session}"));
            };
            let Some(aq) = sess.active.as_mut() else {
                drop(sessions);
                self.metrics.record_protocol_error();
                return err(ErrorCode::BadRequest, "no active query to judge");
            };
            let Some(results) = aq.pending.take() else {
                drop(sessions);
                self.metrics.record_protocol_error();
                return err(
                    ErrorCode::BadRequest,
                    "no un-judged results (issue a Knn first)",
                );
            };
            (
                aq.point.clone(),
                aq.weights.clone(),
                results,
                aq.cycles as u32,
            )
        };
        let stepper = FeedbackStepper::new(&self.coll, self.feedback.clone());
        let oracle = SetOracle::new(relevant);
        let outcome = stepper.step(&point, &weights, &results, &oracle);

        let mut sessions = self.sessions.lock().expect("sessions lock");
        let aq = owned_session(&mut sessions, session, conn_id).and_then(|s| s.active.as_mut());
        match outcome {
            Ok(StepOutcome::Continue {
                point: new_point,
                weights: new_weights,
            }) => {
                if let Some(aq) = aq {
                    aq.point = new_point;
                    aq.weights = new_weights;
                    aq.prev = Some(results);
                }
                Response::FeedbackAck {
                    done: false,
                    converged: false,
                    cycles,
                }
            }
            Ok(StepOutcome::Converged) => {
                let commit =
                    owned_session(&mut sessions, session, conn_id).and_then(|s| s.active.take());
                drop(sessions);
                if let Some(aq) = commit {
                    self.commit_parameters(&aq);
                }
                Response::FeedbackAck {
                    done: true,
                    converged: true,
                    cycles,
                }
            }
            Err(e) => {
                // Put the results back so a corrected judgment can
                // retry.
                if let Some(aq) = aq {
                    aq.pending = Some(results);
                }
                drop(sessions);
                self.metrics.record_protocol_error();
                err(ErrorCode::BadRequest, format!("feedback step: {e}"))
            }
        }
    }

    /// Store a finished query's learned parameters in the shared module
    /// — only when feedback actually ran (a bypassed query teaches
    /// nothing new), and best-effort: an out-of-domain anchor cannot be
    /// learned, but serving it was still correct.
    fn commit_parameters(&self, aq: &ActiveQuery) {
        if aq.cycles > 0
            && self
                .bypass
                .insert(&aq.anchor, &aq.point, &aq.weights)
                .is_ok()
        {
            if let Some(hook) = self.commit_hook.lock().expect("hook lock").as_ref() {
                hook();
            }
        }
    }
}

/// Look up a session for `conn_id`. Ownership mismatches report like a
/// missing id.
fn owned_session(
    sessions: &mut HashMap<u64, Session>,
    session: u64,
    conn_id: u64,
) -> Option<&mut Session> {
    sessions.get_mut(&session).filter(|s| s.owner == conn_id)
}
