//! # fbp-server
//!
//! Network serving subsystem for the FeedbackBypass stack: a threaded
//! TCP front-end speaking a small length-prefixed binary protocol, with
//! an **adaptive micro-batcher** at its core that coalesces concurrent
//! sessions' k-NN requests into shared multi-query scan passes
//! ([`SharedBypass::knn_batch`](feedbackbypass::SharedBypass::knn_batch)).
//!
//! ## Why a serving layer
//!
//! Interactive similarity retrieval is a many-user workload: sessions
//! think for a few milliseconds between refinement rounds, and each
//! round is one k-NN scan over the same collection. In-process, the
//! coalesced scan path already answers Q concurrent requests for one
//! streaming pass — but only a server can *create* that concurrency
//! from independent clients. The micro-batcher queues incoming `Knn`
//! requests for at most [`ServerConfig::max_wait`] (measured from the
//! oldest queued request) or until [`ServerConfig::max_batch`]
//! accumulate, then serves the whole batch with one pass: under light
//! load a request pays at most `max_wait` of extra latency, under heavy
//! load batches fill instantly — batch fill adapts to the offered
//! concurrency with no other tuning.
//!
//! ## Sharded scatter/gather serving
//!
//! One coalesced pass is still bounded by what one dispatcher can
//! stream. [`ServerConfig::shards`] splits the served collection into
//! `S` contiguous row shards at startup and gives **each shard its own
//! micro-batcher and dispatcher thread** under the same batching
//! policy. Every `Knn` request is admitted once, scattered to all `S`
//! queues, served by `S` independent per-shard passes
//! ([`ShardedBypass::scan_shard`](feedbackbypass::ShardedBypass)), and
//! its reply is gathered — the per-shard k-bests merge in key space
//! with a deterministic `(key, index)` order, so the answer is
//! **bit-identical** to flat serving no matter how each shard happened
//! to batch. On a multi-core host the scan bandwidth of the serving
//! loop scales with `S`; see `ARCHITECTURE.md` at the repository root
//! for the measured sweep and the invariant argument.
//!
//! ## Router tier
//!
//! [`route`] runs the same scatter/gather across **machines**: a router
//! front-end owns the session tier (module prediction, feedback
//! transitions, commits) and scatters each admitted `Knn` as one
//! `ShardKnn` frame per remote shard server, gathering the per-shard
//! k-bests with the identical key-space merge — bit-identical to
//! in-process `shards = S` serving while every shard answers. Because
//! downstreams can now fail independently, the router adds the
//! robustness layer sharding alone never needed: per-downstream
//! connection pools with connect/read/write timeouts, exponential
//! backoff, and automatic reconnect; hedged retries that duplicate a
//! straggling shard's call after a p99-derived delay (first answer
//! wins); and an explicit [`FailurePolicy`] deciding what a reply may
//! claim when shards stay silent — `Strict` refuses with a typed
//! [`ErrorCode::ShardUnavailable`], `Degraded` answers from the
//! surviving subset with the reply flagged and the missing shards
//! named. Either way a request resolves within the shard-timeout
//! budget: the policy bounds *what* is answered, the deadline bounds
//! *when*. A scripted [`FaultPlan`] injects downstream faults
//! deterministically for tests and smoke drills. See `ARCHITECTURE.md`,
//! "router tier", for the full partial-failure policy.
//!
//! On top of the per-call machinery sits per-downstream **health
//! tracking** ([`HealthConfig`], [`health`]): a circuit breaker ejects
//! a persistently failing shard from the scatter set so requests stop
//! paying its `shard_timeout` (`Degraded` merges the survivors
//! instantly, `Strict` refuses fast), a background prober re-checks
//! ejected shards at backed-off intervals, and re-admission requires a
//! run of probe successes plus a tiling re-validation and a fresh
//! module push. The learned module is also re-replicated to healthy
//! shards automatically whenever a session commit updates it. Per-shard
//! health appears in [`StatsSnapshot::health`] and on the wire.
//!
//! ## Protocol
//!
//! Frames are `u32` little-endian length + payload; the payload is an
//! opcode byte plus a fixed-layout body (see [`protocol`] for the exact
//! tables). Five requests drive the full interactive loop:
//!
//! * `OpenSession` → session id + collection dim;
//! * `Knn { session, k, query }` → neighbors (+ done/converged flags) —
//!   a fresh query anchors the session and starts from the shared
//!   module's predicted parameters; repeats of the same anchor search
//!   under the session's current learned parameters;
//! * `Feedback { session, relevant ids }` → advances the session one
//!   [`FeedbackStepper`](fbp_feedback::FeedbackStepper) transition (the
//!   same code the in-process serving loop runs); converged parameters
//!   are inserted into the shared module for future bypassing;
//! * `SnapshotStats` → serving metrics (requests, passes, mean batch
//!   fill, queue-wait percentiles);
//! * `Close { session }` → drops the session.
//!
//! Protocol **v2** adds an optional `Hello`/`HelloAck` version
//! handshake and the multi-example `KnnV2` frame (anchor + positive and
//! negative example sets + Rocchio coefficients), which both front-ends
//! lower to a plain derived-anchor query before admission — see the
//! *Protocol v2* section of [`protocol`]. Connections that skip the
//! handshake speak v1 byte-for-byte.
//!
//! Protocol **v3** adds opt-in **request tracing**: a `KnnV2` frame may
//! ask for a stage-level timing trailer on its reply (queue wait, scan
//! or downstream round trip, batch fill, hedge/fast-degrade
//! attribution per shard, plus the gather/merge split), and both
//! front-ends keep a bounded ring of recent slow traces drained by
//! `GetTraces`. Tracing never changes an answer — a traced reply is
//! bit-identical to the untraced one apart from the trailer — see the
//! *Protocol v3* section of [`protocol`] for the normative layout.
//!
//! Malformed frames answer coded errors (and drop the connection only
//! when the stream can no longer be trusted); a disconnected client's
//! queued requests resolve harmlessly — the batcher cannot be wedged by
//! a dead peer.
//!
//! Results over the wire are **bit-identical** to in-process serving:
//! the batcher feeds the same `knn_batch` front-end, whose passes are
//! pinned identical to per-session
//! [`LinearScan`](fbp_vecdb::LinearScan)s — regardless of how requests
//! happen to batch, and at whatever precision
//! [`effective_precision`](feedbackbypass::SharedBypass::effective_precision)
//! resolves (mirrored collections stream f32, rescore exact).
//!
//! ## Quickstart
//!
//! ```no_run
//! use fbp_server::{serve, Client, ServerConfig};
//! use fbp_vecdb::CollectionBuilder;
//! use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
//! use std::sync::Arc;
//!
//! let mut b = CollectionBuilder::new().with_f32_mirror();
//! b.push_unlabelled(&[0.1, 0.7, 0.2]).unwrap();
//! let coll = Arc::new(b.build());
//! let bypass = SharedBypass::new(
//!     FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap(),
//! );
//! let handle = serve("127.0.0.1:0", coll, bypass, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let (session, dim) = client.open_session().unwrap();
//! assert_eq!(dim, 3);
//! let reply = client.knn(session, 1, &[0.1, 0.7, 0.2]).unwrap();
//! assert_eq!(reply.neighbors.len(), 1);
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

mod batcher;
mod metrics;
mod pool;
mod router;
mod server;
mod sessions;
mod trace;

pub mod client;
pub mod faults;
pub mod health;
pub mod loadgen;
pub mod protocol;

pub use client::{Client, ClientError, FeedbackReply, KnnReply};
pub use faults::{FaultMode, FaultPlan, FaultRule};
pub use fbp_vecdb::FailurePolicy;
pub use health::HealthConfig;
pub use loadgen::{run_loadgen, LoadgenOptions, LoadgenReport, Relevance};
pub use protocol::{
    error_code_for, DownstreamHealth, ErrorCode, HealthState, ShardSpan, StatsSnapshot,
    TraceReport, KNN_TRACED, PROTOCOL_VERSION, SPAN_FAILED, SPAN_FAST_DEGRADED, SPAN_HEDGE_FIRED,
    SPAN_HEDGE_WON, TRACE_VERSION,
};
pub use router::{route, HedgeConfig, RouterConfig, RouterHandle};
pub use server::{serve, ServerConfig, ServerHandle};
