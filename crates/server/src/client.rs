//! Blocking client for the fbp-server protocol — the counterpart the
//! load generator and the wire tests drive; also the reference for
//! implementing the protocol in other languages.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, StatsSnapshot, TraceReport,
    DEFAULT_MAX_FRAME_LEN, KNN_CONVERGED, KNN_DEGRADED, KNN_DONE, PROTOCOL_VERSION,
};
use fbp_vecdb::Neighbor;
use feedbackbypass::QuerySpec;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (includes a server that hung up mid-frame).
    Io(io::Error),
    /// The server answered with a protocol error.
    Server {
        /// Error category.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server's bytes did not decode, or the reply opcode did not
    /// match the request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Oversized { .. } => ClientError::Protocol(e.to_string()),
        }
    }
}

/// One `Knn` round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnReply {
    /// Neighbors, ascending `(dist, index)`.
    pub neighbors: Vec<Neighbor>,
    /// The session's query finished on this round (parameters
    /// committed); no feedback is expected.
    pub done: bool,
    /// It finished by converging (stable ranking) rather than by the
    /// cycle cap.
    pub converged: bool,
    /// The reply is a documented partial answer: a router served it
    /// from the surviving shards under
    /// `FailurePolicy::Degraded` after at least one shard failed.
    pub degraded: bool,
    /// The shard ids missing from a degraded merge (empty when
    /// `degraded` is false).
    pub missing_shards: Vec<u32>,
    /// Feedback cycles the query has run.
    pub cycles: u32,
    /// Stage-level timing report, present iff the request asked for a
    /// trace over a v3+ negotiation (see [`Client::knn_spec_traced`]).
    /// Tracing never changes the answer: everything else in the reply
    /// is bit-identical to the untraced one.
    pub trace: Option<Box<TraceReport>>,
}

/// A `Feedback` acknowledgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackReply {
    /// The query finished (converged or nothing left to learn).
    pub done: bool,
    /// It finished by converging.
    pub converged: bool,
    /// Feedback cycles run so far.
    pub cycles: u32,
}

/// Blocking connection to an fbp-server.
///
/// One `Client` owns one TCP connection and speaks strict
/// request/response (see [`crate::protocol`] for the wire contract and
/// [`Self::send_feedback`] for the one sanctioned pipelining overlap).
/// Sessions opened on this connection are owned by it — they cannot be
/// used from another connection and die when this one closes.
///
/// ```
/// use fbp_server::{serve, Client, ServerConfig};
/// use fbp_vecdb::CollectionBuilder;
/// use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
/// use std::sync::Arc;
///
/// // A tiny served collection on an ephemeral loopback port.
/// let mut b = CollectionBuilder::new().with_f32_mirror();
/// b.push_unlabelled(&[0.1, 0.7, 0.2]).unwrap();
/// b.push_unlabelled(&[0.3, 0.3, 0.4]).unwrap();
/// let coll = Arc::new(b.build());
/// let bypass = SharedBypass::new(
///     FeedbackBypass::for_histograms(3, BypassConfig::default()).unwrap(),
/// );
/// let handle = serve("127.0.0.1:0", coll, bypass, ServerConfig::default()).unwrap();
///
/// // The full client surface: open, search, judge, stats, close.
/// let mut client = Client::connect(handle.local_addr()).unwrap();
/// let (session, dim) = client.open_session().unwrap();
/// assert_eq!(dim, 3);
/// let reply = client.knn(session, 2, &[0.1, 0.7, 0.2]).unwrap();
/// assert_eq!(reply.neighbors.len(), 2);
/// if !reply.done {
///     let relevant: Vec<u32> = reply.neighbors.iter().map(|n| n.index).collect();
///     client.feedback(session, &relevant).unwrap();
/// }
/// assert_eq!(client.stats().unwrap().requests, 1);
/// client.close_session(session).unwrap();
/// handle.shutdown();
/// ```
pub struct Client {
    reader: io::BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_len: u32,
}

impl Client {
    /// Connect (Nagle off — the protocol is request/response).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = io::BufReader::with_capacity(16 * 1024, writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.reader, self.max_frame_len, &mut || true)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".into()))?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// One request/response round trip.
    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let resp = self.recv()?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Negotiate the protocol version (see the `Protocol v2` section of
    /// [`crate::protocol`]): offer [`PROTOCOL_VERSION`], return what the
    /// server settled on. A v1 server that predates the handshake
    /// answers `UnknownOpcode` — that downgrade is folded into `Ok(1)`,
    /// so callers just check the returned version before using v2-only
    /// requests like [`Self::knn_spec`]. Any time before the first
    /// versioned request is fine; without it the connection speaks v1.
    pub fn hello(&mut self) -> Result<u8, ClientError> {
        match self.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        }) {
            Ok(Response::HelloAck { version }) => Ok(version),
            Ok(other) => Err(unexpected("HelloAck", &other)),
            Err(ClientError::Server {
                code: ErrorCode::UnknownOpcode,
                ..
            }) => Ok(1),
            Err(e) => Err(e),
        }
    }

    /// Open a session; returns `(session id, collection dim)`.
    pub fn open_session(&mut self) -> Result<(u64, u32), ClientError> {
        match self.call(&Request::OpenSession)? {
            Response::SessionOpened { session, dim } => Ok((session, dim)),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    /// One k-NN round under the session's current learned parameters.
    pub fn knn(&mut self, session: u64, k: u32, query: &[f64]) -> Result<KnnReply, ClientError> {
        let req = Request::Knn {
            session,
            k,
            query: query.to_vec(),
        };
        match self.call(&req)? {
            resp @ Response::KnnResult { .. } => Ok(knn_reply(resp)),
            other => Err(unexpected("KnnResult", &other)),
        }
    }

    /// One multi-example k-NN round: ship a [`QuerySpec`]'s anchor,
    /// example sets, and Rocchio coefficients as a `KnnV2` frame; the
    /// server lowers it to the derived anchor before admission, so the
    /// reply is bit-identical to [`Self::knn`] with that anchor.
    /// Requires a prior [`Self::hello`] that negotiated version ≥ 2 —
    /// otherwise the server refuses with `BadRequest`. The spec's
    /// per-spec `k`, when set, overrides the `k` argument; its weights
    /// and precision pin do not travel on this frame (sessions own the
    /// learned weights, and serving precision is a server-side policy).
    pub fn knn_spec(
        &mut self,
        session: u64,
        k: u32,
        spec: &QuerySpec,
    ) -> Result<KnnReply, ClientError> {
        self.knn_spec_inner(session, k, spec, false)
    }

    /// [`Self::knn_spec`] with the v3 trace bit set: the reply carries
    /// a stage-level [`TraceReport`] in [`KnnReply::trace`] — queue and
    /// scan (or downstream round-trip) time per shard, batch fill,
    /// hedge and fast-degrade attribution, and the gather/merge split.
    /// Requires a prior [`Self::hello`] that negotiated version ≥ 3; on
    /// an older negotiation the server ignores the bit and the reply
    /// comes back untraced (`trace: None`), answer unchanged.
    pub fn knn_spec_traced(
        &mut self,
        session: u64,
        k: u32,
        spec: &QuerySpec,
    ) -> Result<KnnReply, ClientError> {
        self.knn_spec_inner(session, k, spec, true)
    }

    fn knn_spec_inner(
        &mut self,
        session: u64,
        k: u32,
        spec: &QuerySpec,
        trace: bool,
    ) -> Result<KnnReply, ClientError> {
        let rocchio = spec.rocchio();
        let req = Request::KnnV2 {
            session,
            k: spec.k().map(|n| n as u32).unwrap_or(k),
            alpha: rocchio.alpha,
            beta: rocchio.beta,
            gamma: rocchio.gamma,
            clamp: spec.clamps_to_zero(),
            trace,
            anchor: spec.anchor().to_vec(),
            positives: spec.positives().to_vec(),
            negatives: spec.negatives().to_vec(),
        };
        match self.call(&req)? {
            resp @ Response::KnnResult { .. } => Ok(knn_reply(resp)),
            other => Err(unexpected("KnnResult", &other)),
        }
    }

    /// Drain up to `max` reports (`0` = all) from the server's
    /// slow-query trace ring, oldest first. The drain is destructive:
    /// consecutive calls return disjoint traces. Requires a negotiated
    /// version ≥ 3 (send [`Self::hello`] first).
    pub fn get_traces(&mut self, max: u32) -> Result<Vec<TraceReport>, ClientError> {
        match self.call(&Request::GetTraces { max })? {
            Response::TraceList { traces } => Ok(traces),
            other => Err(unexpected("TraceList", &other)),
        }
    }

    /// Sessionless shard-local k-best under an explicit metric — the
    /// frame a router scatters to its downstream shard servers. Returns
    /// `(finished, entries)`: the shard's exact local k-best, entries
    /// ascending by `(key, index)` with globally-offset indices, keys in
    /// selection space unless `finished`.
    pub fn shard_knn(
        &mut self,
        k: u32,
        seed: f64,
        point: &[f64],
        weights: &[f64],
    ) -> Result<(bool, Vec<(f64, u32)>), ClientError> {
        let req = Request::ShardKnn {
            k,
            seed,
            point: point.to_vec(),
            weights: weights.to_vec(),
        };
        match self.call(&req)? {
            Response::ShardPartial { finished, entries } => Ok((finished, entries)),
            other => Err(unexpected("ShardPartial", &other)),
        }
    }

    /// Probe the served slice: `(rows, global row offset, dim)`.
    pub fn shard_info(&mut self) -> Result<(u64, u64, u32), ClientError> {
        match self.call(&Request::ShardInfo)? {
            Response::ShardInfoResult { rows, offset, dim } => Ok((rows, offset, dim)),
            other => Err(unexpected("ShardInfoResult", &other)),
        }
    }

    /// Fetch the server's serialized learned module
    /// (`FeedbackBypass::to_bytes` image).
    pub fn snapshot_module(&mut self) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::SnapshotModule)? {
            Response::ModuleImage { image } => Ok(image),
            other => Err(unexpected("ModuleImage", &other)),
        }
    }

    /// Replace the server's learned module with a serialized image —
    /// the push half of router→shard module replication.
    pub fn restore_module(&mut self, image: &[u8]) -> Result<(), ClientError> {
        let req = Request::RestoreModule {
            image: image.to_vec(),
        };
        match self.call(&req)? {
            Response::ModuleRestored => Ok(()),
            other => Err(unexpected("ModuleRestored", &other)),
        }
    }

    /// Judge the session's last un-judged round.
    pub fn feedback(
        &mut self,
        session: u64,
        relevant: &[u32],
    ) -> Result<FeedbackReply, ClientError> {
        self.send_feedback(session, relevant)?;
        self.recv_feedback()
    }

    /// Fire the `Feedback` frame without waiting for its ack — the
    /// pipelined half of [`Self::feedback`]. A closed-loop client can
    /// overlap the ack's round trip with its own think-time: send the
    /// judgment, think, then [`Self::recv_feedback`] the ack that
    /// arrived meanwhile. Exactly one `recv_feedback` must follow each
    /// `send_feedback` before any other request on this connection.
    pub fn send_feedback(&mut self, session: u64, relevant: &[u32]) -> Result<(), ClientError> {
        let req = Request::Feedback {
            session,
            relevant: relevant.to_vec(),
        };
        write_frame(&mut self.writer, &req.encode())?;
        Ok(())
    }

    /// Collect the ack of a prior [`Self::send_feedback`].
    pub fn recv_feedback(&mut self) -> Result<FeedbackReply, ClientError> {
        match self.recv()? {
            Response::FeedbackAck {
                done,
                converged,
                cycles,
            } => Ok(FeedbackReply {
                done,
                converged,
                cycles,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected("FeedbackAck", &other)),
        }
    }

    /// Fetch the server's metrics snapshot. Against a router the
    /// snapshot also carries one [`StatsSnapshot::health`] row per
    /// downstream shard — breaker state plus ejection/re-admission/
    /// probe-failure/fast-degrade counters; a flat shard server reports
    /// no rows.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::SnapshotStats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Drop a session.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::Close { session })? {
            Response::Closed => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }
}

/// Fold a `KnnResult` into the client-facing reply (the one place the
/// flag bits are interpreted).
///
/// # Panics
///
/// Panics if `resp` is not a `KnnResult`; callers match first.
fn knn_reply(resp: Response) -> KnnReply {
    let Response::KnnResult {
        flags,
        cycles,
        missing_shards,
        trace,
        neighbors,
    } = resp
    else {
        unreachable!("knn_reply called on a non-KnnResult");
    };
    KnnReply {
        neighbors,
        done: flags & KNN_DONE != 0,
        converged: flags & KNN_CONVERGED != 0,
        degraded: flags & KNN_DEGRADED != 0,
        missing_shards,
        cycles,
        trace,
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
