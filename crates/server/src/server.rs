//! The TCP front-end: accept loop, per-connection threads, server-side
//! session state, and the graceful-shutdown handle.
//!
//! Each connection gets one thread running a read→handle→reply loop.
//! `Knn` requests park on the micro-batcher and wake with their slice of
//! a coalesced pass; everything else is answered inline. Session state
//! (current query anchor, learned parameters, last un-judged results)
//! lives server-side in a [`SessionStore`] keyed by session id, so the
//! full interactive feedback loop runs over the wire with the same
//! [`fbp_feedback::FeedbackStepper`] transition the in-process serving
//! path executes. Sessions are **connection-scoped**: only the
//! connection that opened a session may use or close it (ids are
//! sequential, so they must not be capabilities), and they are dropped
//! when it disconnects.
//!
//! Besides the interactive session surface, every server also answers
//! the **router downstream surface** (`ShardKnn` / `ShardInfo` /
//! `SnapshotModule` / `RestoreModule` — see [`crate::protocol`]): with
//! [`ServerConfig::row_offset`] set, the served collection acts as one
//! slice of a larger router-fronted deployment, answering sessionless
//! shard-local k-bests with globally-offset indices.

use crate::batcher::{run_shard_dispatcher, Batcher, EnqueueError, Gather};
use crate::metrics::Metrics;
use crate::protocol::{
    error_code_for, read_frame, write_frame, DecodeError, ErrorCode, FrameError, Request, Response,
    DEFAULT_MAX_FRAME_LEN, KNN_TRACED, PROTOCOL_VERSION,
};
use crate::sessions::{err, ExampleSets, SessionStore};
use crate::trace::{RequestTrace, TraceRing};
use fbp_vecdb::{
    combine_partials, Collection, Neighbor, PartitionConfig, PartitionedCollection, ScanMode,
    ShardPartial, ShardedCollection, ShardedScan, WeightedEuclidean,
};
use feedbackbypass::{
    FeedbackBypass, FeedbackConfig, KnnRequest, QuerySpec, RocchioWeights, ShardedBypass,
    SharedBypass,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most requests one coalesced pass serves. `1` disables batching
    /// (every request runs its own pass — the baseline configuration the
    /// serving bench compares against).
    pub max_batch: usize,
    /// Fill level at which the dispatcher stops waiting for more
    /// arrivals and goes work-conserving (it still drains up to
    /// [`ServerConfig::max_batch`] at dispatch). Below it, collection is
    /// bounded by `max_wait` / `idle_gap`.
    pub target_fill: usize,
    /// Longest the dispatcher holds a batch open waiting for it to fill,
    /// measured from the oldest queued request.
    pub max_wait: Duration,
    /// Arrival-burst cutoff: once no new request lands for this long,
    /// the batch dispatches early (think-time traffic arrives in bursts;
    /// a quiet gap means waiting further buys latency, not fill).
    pub idle_gap: Duration,
    /// Admission bound on **in-flight requests**: a `Knn` counts
    /// against this from admission until its gathered reply fires
    /// (including while it is mid-scan), and one admitted request
    /// occupies a slot in every shard's queue. Requests beyond it
    /// answer [`ErrorCode::Busy`] before touching any queue, so a
    /// request is either scattered to all shards or refused atomically.
    pub queue_capacity: usize,
    /// Largest accepted frame payload.
    pub max_frame_len: u32,
    /// Scan execution mode for the coalesced passes. Precision follows
    /// [`SharedBypass::effective_precision`]: mirrored collections are
    /// served with the f32-rescore path automatically.
    pub scan_mode: ScanMode,
    /// Collection shards (1 = flat serving). With `S > 1` the served
    /// collection splits into `S` contiguous row shards at startup,
    /// each with its **own micro-batcher and dispatcher thread** riding
    /// the same `target_fill`/`max_wait`/`idle_gap` policy; every `Knn`
    /// request scatters to all `S` queues and its reply is gathered
    /// from the per-shard k-bests — bit-identical to flat serving, but
    /// the scan bandwidth of a round scales with the shard count on a
    /// multi-core host. Keep `S ≤ cores / CPU-per-pass`; each shard
    /// pass also gets an even share of the machine for its own
    /// parallelism.
    pub shards: usize,
    /// Global index of this server's first row, added to every entry a
    /// `ShardKnn` reply carries. A standalone server leaves it `0`; a
    /// router-fronted shard server serving rows `[offset, offset+len)`
    /// of the full collection sets it so the router's gathered indices
    /// address the full key space.
    pub row_offset: usize,
    /// Opt-in partition pruning: when set, every shard's rows are
    /// clustered into a [`PartitionedCollection`] layout once at
    /// startup ([`ShardedCollection::build_partitions`]) and all shard
    /// passes run through the partition-pruning scan — skipping
    /// partitions whose sound lower bound exceeds the running k-th key
    /// and counting the skips in
    /// [`StatsSnapshot::scan_partitions_pruned`](crate::protocol::StatsSnapshot).
    /// Answers are bit-identical to unpartitioned serving (pruning is
    /// answer-transparent); only the rows visited change. `None` (the
    /// default) serves flat.
    pub partitions: Option<PartitionConfig>,
    /// Feedback transition configuration (`k` is per-request on the
    /// wire; `max_cycles` caps each session's loop server-side).
    pub feedback: FeedbackConfig,
    /// Read-timeout slice connection threads park in between frames —
    /// the shutdown-poll granularity, not a client-visible timeout.
    pub read_timeout: Duration,
    /// Write timeout on every reply. The dispatcher writes `Knn` replies
    /// itself, so a peer that stops draining its socket could otherwise
    /// stall every session behind one blocked `write`; on timeout the
    /// reply fails, the offending connection is shut down, and serving
    /// continues.
    pub write_timeout: Duration,
    /// Traced replies at or above this wall time are kept in the
    /// bounded slow-query ring `GetTraces` drains (zero keeps every
    /// traced reply — handy in tests and drills). Only requests that
    /// *asked* for a trace are candidates; the untraced path records
    /// nothing.
    pub slow_trace_threshold: Duration,
}

/// Capacity of the slow-query trace ring (reports, oldest evicted
/// first). Bounded so an undrained server holds a fixed few KiB of
/// trace state no matter how long it runs.
const TRACE_RING_CAP: usize = 64;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch: 16,
            target_fill: 4,
            max_wait: Duration::from_millis(2),
            idle_gap: Duration::from_micros(300),
            queue_capacity: 4096,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            scan_mode: ScanMode::Batched,
            shards: 1,
            row_offset: 0,
            partitions: None,
            feedback: FeedbackConfig::default(),
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_secs(1),
            slow_trace_threshold: Duration::from_millis(5),
        }
    }
}

/// Everything the server threads share.
struct Shared {
    store: SessionStore,
    cfg: ServerConfig,
    /// One micro-batcher per shard; every admitted `Knn` is scattered
    /// into all of them.
    batchers: Vec<Arc<Batcher<Arc<Gather>>>>,
    /// The internal shard split (`ShardKnn` scans it inline).
    sharded_coll: Arc<ShardedCollection>,
    /// Per-shard partition layouts, built once at startup when
    /// [`ServerConfig::partitions`] opted in (`parts[i]` reorders shard
    /// `i`'s rows partition-contiguously; answers stay identical).
    partitions: Option<Arc<Vec<PartitionedCollection>>>,
    sharded_bypass: ShardedBypass,
    /// Admission bound: requests mid-scatter/gather. Enforcing the
    /// queue capacity here (instead of per batcher) keeps a request's
    /// scatter atomic — it is either admitted to every shard queue or
    /// refused outright with `Busy`.
    inflight: AtomicUsize,
    metrics: Arc<Metrics>,
    next_conn: AtomicU64,
    /// Trace-id source for traced requests (ids are per-server unique,
    /// never reused).
    next_trace: AtomicU64,
    /// Slow-query trace ring, drained by `GetTraces`.
    traces: TraceRing,
    shutdown: AtomicBool,
}

/// Handle to a running server: address, live stats, graceful shutdown.
///
/// Dropping the handle shuts the server down (and joins every thread),
/// so tests and examples cannot leak listeners; call
/// [`ServerHandle::shutdown`] for the explicit form.
///
/// ```
/// use fbp_server::{serve, ServerConfig};
/// use fbp_vecdb::CollectionBuilder;
/// use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
/// use std::sync::Arc;
///
/// let mut b = CollectionBuilder::new();
/// b.push_unlabelled(&[0.5, 0.5]).unwrap();
/// let bypass = SharedBypass::new(
///     FeedbackBypass::for_histograms(2, BypassConfig::default()).unwrap(),
/// );
/// // Two shards: two micro-batchers, two dispatcher threads, replies
/// // gathered — results identical to `shards: 1`.
/// let cfg = ServerConfig { shards: 2, ..Default::default() };
/// let handle = serve("127.0.0.1:0", Arc::new(b.build()), bypass, cfg).unwrap();
/// assert!(handle.local_addr().port() != 0, "ephemeral port was bound");
/// let stats = handle.stats();
/// assert_eq!(stats.shards, 2);
/// assert_eq!(stats.sessions_open, 0);
/// handle.shutdown(); // joins the accept loop and both dispatchers
/// ```
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatchers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// In-process metrics snapshot (same numbers the wire
    /// `SnapshotStats` reports).
    pub fn stats(&self) -> crate::protocol::StatsSnapshot {
        self.shared.metrics.snapshot(self.shared.store.count())
    }

    /// Graceful shutdown: stop accepting, unpark every thread, drain the
    /// batcher, join everything. Returns once the last thread exited.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for batcher in &self.shared.batchers {
            batcher.shutdown();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // After the accept thread exits no new connection threads are
        // spawned; connection threads notice the flag within a
        // read-timeout slice.
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for h in conns {
            let _ = h.join();
        }
        // The shard dispatchers go last: each drains its remaining
        // queue (best-effort completions to whatever sockets still
        // live) before reporting end-of-work.
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.dispatchers.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Bind `addr` and start serving `coll` (searches) and `bypass`
/// (predictions, learned-parameter inserts) with the given
/// configuration. Returns once the listener is accepting.
pub fn serve(
    addr: impl ToSocketAddrs,
    coll: Arc<Collection>,
    bypass: SharedBypass,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shards = cfg.shards.max(1);
    // The shard split happens once at startup: each shard copies its
    // rows (and f32 mirror) into its own contiguous buffers, so the
    // per-shard dispatchers stream disjoint memory.
    let sharded_coll = Arc::new(ShardedCollection::split(&coll, shards));
    // Partition layouts (opt-in) are likewise a startup cost: each
    // shard's rows are clustered and reordered once, and every pass
    // after that prunes against the same layout.
    let partitions: Option<Arc<Vec<PartitionedCollection>>> = cfg
        .partitions
        .as_ref()
        .map(|p| Arc::new(sharded_coll.build_partitions(p)));
    let sharded_bypass = ShardedBypass::from_shared(bypass.clone());
    let batchers: Vec<Arc<Batcher<Arc<Gather>>>> = (0..shards)
        .map(|_| {
            Arc::new(Batcher::new(
                cfg.max_batch,
                cfg.target_fill,
                cfg.max_wait,
                cfg.idle_gap,
            ))
        })
        .collect();
    let metrics = Arc::new(Metrics::new(shards as u64));
    let shared = Arc::new(Shared {
        store: SessionStore::new(
            Arc::clone(&coll),
            bypass.clone(),
            cfg.feedback.clone(),
            Arc::clone(&metrics),
        ),
        cfg: cfg.clone(),
        batchers: batchers.clone(),
        sharded_coll: Arc::clone(&sharded_coll),
        partitions: partitions.clone(),
        sharded_bypass: sharded_bypass.clone(),
        inflight: AtomicUsize::new(0),
        metrics: Arc::clone(&metrics),
        next_conn: AtomicU64::new(1),
        next_trace: AtomicU64::new(1),
        traces: TraceRing::new(TRACE_RING_CAP, cfg.slow_trace_threshold),
        shutdown: AtomicBool::new(false),
    });

    let dispatchers: Vec<JoinHandle<()>> = batchers
        .iter()
        .enumerate()
        .map(|(shard, batcher)| {
            std::thread::spawn({
                let batcher = Arc::clone(batcher);
                let coll = Arc::clone(&sharded_coll);
                let partitions = partitions.clone();
                let bypass = sharded_bypass.clone();
                let metrics = Arc::clone(&metrics);
                let scan_mode = cfg.scan_mode;
                move || {
                    run_shard_dispatcher(
                        shard, batcher, coll, partitions, bypass, scan_mode, metrics,
                    )
                }
            })
        })
        .collect();

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = std::thread::spawn({
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => {
                        // Persistent accept failures (EMFILE under fd
                        // exhaustion) must not busy-spin the core.
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || handle_connection(stream, &shared));
                let mut conns = conns.lock().expect("conns lock");
                // Reap finished connection threads as we go so a
                // long-lived server doesn't accumulate one JoinHandle
                // per connection ever accepted.
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
        }
    });

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        dispatchers,
        conns,
    })
}

/// Read→handle→reply loop for one connection. Frame-layer failures end
/// the connection; well-framed protocol errors are answered and the
/// connection lives on. Sessions this connection opened die with it.
///
/// The socket is split: this thread owns the read side; the write side
/// sits behind a mutex shared with the dispatcher, which writes `Knn`
/// replies directly from the pass (each reply frame is one `write_all`
/// under the lock, so frames never interleave). A client must therefore
/// keep at most one `Knn` in flight per connection before reading its
/// reply — which a strict request/response client does by construction.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    // Bounded reply writes: SO_SNDTIMEO is socket-wide, so the clone the
    // dispatcher writes through inherits it — a peer that stops reading
    // can stall a reply for at most this long before the write fails and
    // the connection is shut down.
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let writer: Arc<Mutex<TcpStream>> = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Buffered reads: header + body of a frame usually arrive together,
    // so one syscall serves both.
    let mut reader = io::BufReader::with_capacity(16 * 1024, stream);
    let mut owned_sessions: Vec<u64> = Vec::new();
    // Every connection starts at protocol v1; a `Hello` exchange can
    // raise it (to at most [`PROTOCOL_VERSION`]) for the connection's
    // remaining lifetime. v2-only opcodes are refused below the
    // negotiated version, so v1 traffic stays byte-for-byte unchanged.
    let mut version: u8 = 1;
    loop {
        let mut keep_waiting = || !shared.shutdown.load(Ordering::SeqCst);
        match read_frame(&mut reader, shared.cfg.max_frame_len, &mut keep_waiting) {
            Ok(None) => break, // clean close or shutdown
            Ok(Some(payload)) => {
                let response = match Request::decode(&payload) {
                    Ok(req) => handle_request(
                        req,
                        shared,
                        &writer,
                        conn_id,
                        &mut owned_sessions,
                        &mut version,
                    ),
                    Err(e) => {
                        // The length prefix framed this payload, so the
                        // stream is still in sync: answer and continue.
                        shared.metrics.record_protocol_error();
                        let code = match e {
                            DecodeError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
                            _ => ErrorCode::BadFrame,
                        };
                        Some(Response::Error {
                            code,
                            message: e.to_string(),
                        })
                    }
                };
                // `None` means a Knn was enqueued — the dispatcher's
                // completion writes that reply.
                if let Some(response) = response {
                    if write_response(&writer, &response).is_err() {
                        break; // client gone mid-reply
                    }
                }
            }
            Err(FrameError::Oversized { len, max }) => {
                // The oversized body was never read, so the stream can't
                // be resynchronized: report, then drop the connection.
                shared.metrics.record_protocol_error();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!("frame of {len} bytes exceeds the {max}-byte maximum"),
                };
                let _ = write_response(&writer, &resp);
                break;
            }
            Err(FrameError::Io(e)) => {
                // Truncated frame / reset: nothing to answer.
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    shared.metrics.record_protocol_error();
                }
                break;
            }
        }
    }
    shared.store.drop_owned(&owned_sessions);
}

/// One reply frame under the connection's write lock.
fn write_response(writer: &Mutex<TcpStream>, response: &Response) -> io::Result<()> {
    let mut w = writer.lock().expect("writer lock");
    write_frame(&mut *w, &response.encode())
}

/// Serve one decoded request; `None` means the reply was deferred to the
/// dispatcher (an enqueued `Knn`).
fn handle_request(
    req: Request,
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u64,
    owned: &mut Vec<u64>,
    version: &mut u8,
) -> Option<Response> {
    match req {
        Request::Hello { version: client } => Some(if client == 0 {
            shared.metrics.record_protocol_error();
            err(ErrorCode::BadRequest, "protocol version 0 is not valid")
        } else {
            *version = client.min(PROTOCOL_VERSION);
            Response::HelloAck { version: *version }
        }),
        Request::OpenSession => {
            let id = shared.store.open(conn_id);
            owned.push(id);
            Some(Response::SessionOpened {
                session: id,
                dim: shared.store.coll().dim() as u32,
            })
        }
        Request::Knn { session, k, query } => handle_knn(
            shared,
            writer,
            conn_id,
            session,
            k,
            query,
            ExampleSets::default(),
            false,
        ),
        Request::KnnV2 {
            session,
            k,
            alpha,
            beta,
            gamma,
            clamp,
            trace,
            anchor,
            positives,
            negatives,
        } => {
            if *version < 2 {
                shared.metrics.record_protocol_error();
                return Some(err(
                    ErrorCode::BadRequest,
                    "KnnV2 requires a negotiated protocol version >= 2 (send Hello first)",
                ));
            }
            let spec = match QuerySpec::builder(anchor)
                .positives(positives)
                .negatives(negatives)
                .rocchio(RocchioWeights::new(alpha, beta, gamma))
                .clamp_to_zero(clamp)
                .build()
            {
                Ok(spec) => spec,
                Err(e) => {
                    shared.metrics.record_protocol_error();
                    return Some(err(error_code_for(&e), e.to_string()));
                }
            };
            // Lower once, before admission: everything downstream — the
            // session registry, the micro-batchers, the shard scatter —
            // sees a plain point query on the derived anchor, exactly
            // as if the client had sent v1 `Knn` with that point.
            let examples = ExampleSets {
                positives: spec.positives().to_vec(),
                negatives: spec.negatives().to_vec(),
            };
            let derived = spec.lower().into_request().point;
            // The trace bit is honored only at a negotiated v3+; on an
            // older negotiation it is ignored (not an error), so a v3
            // encoder talking through a v2 negotiation degrades to an
            // ordinary untraced reply.
            let traced = trace && *version >= 3;
            handle_knn(
                shared, writer, conn_id, session, k, derived, examples, traced,
            )
        }
        Request::Feedback { session, relevant } => {
            Some(shared.store.feedback(conn_id, session, relevant))
        }
        Request::SnapshotStats => Some(Response::Stats(Box::new(
            shared.metrics.snapshot(shared.store.count()),
        ))),
        Request::GetTraces { max } => {
            if *version < 3 {
                shared.metrics.record_protocol_error();
                return Some(err(
                    ErrorCode::BadRequest,
                    "GetTraces requires a negotiated protocol version >= 3 (send Hello first)",
                ));
            }
            Some(Response::TraceList {
                traces: shared.traces.drain(max),
            })
        }
        Request::Close { session } => {
            let removed = shared.store.close(session, conn_id);
            owned.retain(|&id| id != session);
            Some(if removed {
                Response::Closed
            } else {
                err(ErrorCode::UnknownSession, format!("session {session}"))
            })
        }
        Request::ShardKnn {
            k,
            seed,
            point,
            weights,
        } => Some(handle_shard_knn(shared, k, seed, point, weights)),
        Request::ShardInfo => Some(Response::ShardInfoResult {
            rows: shared.store.coll().len() as u64,
            offset: shared.cfg.row_offset as u64,
            dim: shared.store.coll().dim() as u32,
        }),
        Request::SnapshotModule => Some(Response::ModuleImage {
            image: shared.store.bypass().to_bytes(),
        }),
        Request::RestoreModule { image } => Some(handle_restore_module(shared, &image)),
    }
}

/// `Knn` (and lowered `KnnV2`): resolve the session's search
/// parameters, admit the request, and scatter a gather cell into every
/// shard's micro-batcher; the shard dispatcher delivering the last
/// partial merges and finishes the reply (post-pass bookkeeping + the
/// socket write). `query` is the (possibly derived) anchor point and
/// `examples` the spec's example sets (empty for v1). With `traced`
/// set, a [`RequestTrace`] rides the gather and the reply carries the
/// stage-timing trailer — everything else about the reply is
/// bit-identical to the untraced answer. Returns `None` when the reply
/// was deferred to the dispatcher, `Some(error)` otherwise.
#[allow(clippy::too_many_arguments)]
fn handle_knn(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u64,
    session: u64,
    k: u32,
    query: Vec<f64>,
    examples: ExampleSets,
    traced: bool,
) -> Option<Response> {
    let dim = shared.store.coll().dim();
    if query.len() != dim {
        shared.metrics.record_protocol_error();
        return Some(err(
            ErrorCode::DimMismatch,
            format!("expected {dim}, got {}", query.len()),
        ));
    }
    // `k` can never exceed the collection, so clamp instead of letting a
    // forged request size a gigantic k-best heap.
    let k = (k as usize).min(shared.store.coll().len());

    let (point, weights) = match shared.store.resolve_knn(conn_id, session, query, examples) {
        Ok(params) => params,
        Err(resp) => return Some(resp),
    };
    let req = KnnRequest {
        point,
        weights,
        k: Some(k),
        precision: None,
    };
    // Build the request's metric exactly once, at admission — every
    // shard pass and the final merge share it, instead of each shard
    // dispatch rebuilding it per pass.
    let metric = match req.metric(dim) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.record_protocol_error();
            return Some(err(ErrorCode::BadRequest, e.to_string()));
        }
    };

    // Admission: the queue bound applies to whole requests — a request
    // either scatters to every shard queue or is refused up front, so
    // no gather can ever be left half-scattered by backpressure.
    if shared.inflight.fetch_add(1, Ordering::AcqRel) >= shared.cfg.queue_capacity {
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        return Some(err(ErrorCode::Busy, "batch queue full"));
    }
    shared.metrics.record_request();

    // Admission is t0: the trace's clock starts the moment the request
    // enters the scatter path, so every stage offset shares one origin.
    let req_trace =
        traced.then(|| RequestTrace::new(shared.next_trace.fetch_add(1, Ordering::Relaxed)));

    let completion = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(writer);
        let req_trace = req_trace.clone();
        Box::new(move |outcome: Result<Vec<Neighbor>, String>| {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            let response = match outcome {
                Ok(neighbors) => {
                    let (mut flags, cycles) = shared.store.finish_knn(session, &neighbors);
                    // Fold the trace last, right before encode, so the
                    // merge window covers the session bookkeeping too.
                    // Error replies never carry a trailer.
                    let trace = req_trace.as_ref().map(|t| {
                        let report = t.finish();
                        shared.traces.record(&report);
                        Box::new(report)
                    });
                    if trace.is_some() {
                        flags |= KNN_TRACED;
                    }
                    Response::KnnResult {
                        flags,
                        cycles,
                        missing_shards: Vec::new(),
                        trace,
                        neighbors,
                    }
                }
                Err(msg) => err(ErrorCode::Internal, msg),
            };
            // A failed (or timed-out) write is a vanished or stalled
            // client: shut the socket down so its connection thread's
            // read errors out and reaps the sessions — the dispatcher
            // must never be wedged by one bad peer.
            if write_response(&writer, &response).is_err() {
                let w = writer.lock().expect("writer lock");
                let _ = w.shutdown(std::net::Shutdown::Both);
            }
        })
    };
    let gather = Gather::new(req, metric, k, shared.batchers.len(), req_trace, completion);
    for (shard, batcher) in shared.batchers.iter().enumerate() {
        if let Err(EnqueueError::ShuttingDown) = batcher.enqueue(Arc::clone(&gather)) {
            // Shutdown raced the scatter: deliver this shard's slot as
            // an error so the gather still resolves exactly once (the
            // reply becomes an `Internal` error frame).
            gather.complete_shard(shard, Err("server shutting down".into()));
        }
    }
    None
}

/// `ShardKnn`: a sessionless shard-local k-best under an explicit
/// metric — the frame a router scatters. The scan honors the caller's
/// cross-shard early-abandon `seed` (tightened further across the
/// internal shard split), the internal per-shard partials fold into one
/// via [`combine_partials`] (staying in selection space, so the
/// router's gather merges them exactly like in-process partials), and
/// every entry's index is offset by [`ServerConfig::row_offset`].
fn handle_shard_knn(
    shared: &Shared,
    k: u32,
    seed: f64,
    point: Vec<f64>,
    weights: Vec<f64>,
) -> Response {
    let dim = shared.store.coll().dim();
    if point.len() != dim {
        shared.metrics.record_protocol_error();
        return err(
            ErrorCode::DimMismatch,
            format!("expected {dim}, got {}", point.len()),
        );
    }
    // Empty weights mean uniform by protocol; anything else must match
    // the dimensionality and be a valid metric — a router relays exact
    // learned weights, so there is no silent uniform fallback here.
    let weights = if weights.is_empty() {
        vec![1.0; dim]
    } else {
        weights
    };
    if weights.len() != dim {
        shared.metrics.record_protocol_error();
        return err(
            ErrorCode::DimMismatch,
            format!("expected {dim} weights, got {}", weights.len()),
        );
    }
    let metric = match WeightedEuclidean::new(weights) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.record_protocol_error();
            return err(ErrorCode::BadRequest, format!("shard metric: {e}"));
        }
    };
    let k = (k as usize).min(shared.store.coll().len());
    // A NaN seed would poison every key comparison; treat it as
    // unseeded.
    let mut cap = if seed.is_nan() { f64::INFINITY } else { seed };
    let scan = ShardedScan::with_mode(&shared.sharded_coll, shared.cfg.scan_mode)
        .with_scan_stats(shared.metrics.scan_stats());
    let scan = match &shared.partitions {
        Some(parts) => scan.with_partitions(parts),
        None => scan,
    };
    let mut parts: Vec<ShardPartial> = Vec::with_capacity(shared.sharded_coll.shards().len());
    for s in 0..shared.sharded_coll.shards().len() {
        let part = shared
            .sharded_bypass
            .scan_shard_prepared(
                &scan,
                s,
                &[point.as_slice()],
                &[&metric],
                &[k],
                Some(&[cap]),
            )
            .remove(0);
        // Serial internal shards: each finished shard's k-th key
        // tightens the next one's bound (answer-preserving, like the
        // dispatcher's cross-shard seeds).
        if let Some(b) = part.bound_key(k) {
            cap = cap.min(b);
        }
        parts.push(part);
    }
    let combined = combine_partials(parts.iter(), k);
    let offset = shared.cfg.row_offset as u32;
    let entries: Vec<(f64, u32)> = combined
        .entries()
        .iter()
        .map(|&(key, idx)| (key, idx + offset))
        .collect();
    Response::ShardPartial {
        finished: combined.is_finished(),
        entries,
    }
}

/// `RestoreModule`: deserialize and install a replacement learned
/// module — the receive half of router→shard module replication.
fn handle_restore_module(shared: &Shared, image: &[u8]) -> Response {
    let module = match FeedbackBypass::from_bytes(image) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.record_protocol_error();
            return err(ErrorCode::BadRequest, format!("module image: {e}"));
        }
    };
    let dim = shared.store.coll().dim();
    if module.feature_dim() != dim {
        shared.metrics.record_protocol_error();
        return err(
            ErrorCode::DimMismatch,
            format!(
                "module is {}-dimensional, serving {dim}",
                module.feature_dim()
            ),
        );
    }
    shared.store.bypass().replace(module);
    Response::ModuleRestored
}
