//! Deterministic fault injection for the router's downstream calls.
//!
//! A [`FaultPlan`] wraps the router's downstream connections with
//! scripted wire damage — delays, dropped or truncated replies, sockets
//! cut mid-request, black holes — so the fault tests and the smoke
//! example can prove every failure mode resolves to a **documented
//! outcome** (a retry, a hedge, a degraded answer, or a typed error;
//! never a hang) without real network chaos.
//!
//! Decisions are **deterministic**: whether rule `r` fires for call
//! `c` on shard `s` depends only on `(plan seed, s, c)` via a
//! splitmix64 hash, so a failing run replays exactly from its seed.
//! Wire-damage faults apply to scatter (`ShardKnn`) calls only —
//! startup probes and module-replication control calls bypass the
//! plan, since they model operator actions, not serving traffic. The
//! one exception is a scripted [`FaultMode::Down`] outage: a dead host
//! refuses **every** call class, so plans containing one are consulted
//! for the router's control-plane calls too (sharing the per-shard
//! call counter), which makes the outage → ejection → restart →
//! re-admission lifecycle scriptable end to end.

use std::time::Duration;

/// What the fault does to the call it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Stall the call this long before the request is written — a
    /// straggling shard. The call still completes if the shard deadline
    /// has not passed; otherwise it times out.
    Delay(Duration),
    /// Write the request, then drop the connection without reading the
    /// reply — the router sees an I/O failure and retries.
    DropReply,
    /// Read the reply off the wire, then discard it and surface a
    /// truncated-stream error — a shard that died mid-answer.
    TruncateReply,
    /// Write only the first `n` bytes of the request frame, then close
    /// the socket — real wire damage that also exercises the
    /// downstream server's truncated-frame handling.
    CloseAtByte(usize),
    /// Neither write nor read; hold the call until its deadline — the
    /// pure-timeout failure mode.
    BlackHole,
    /// The downstream host is **gone** (crashed, restarting): every
    /// connection attempt is refused for the next `calls` calls counted
    /// from the rule's `after_calls`, after which the "restarted"
    /// server answers normally. Unlike every other mode, an outage also
    /// applies to the router's **control-plane** calls on that shard
    /// (re-admission probes, module pushes) — a dead host refuses all
    /// call classes alike — which is what lets the full
    /// outage → ejection → restart → re-admission lifecycle be scripted
    /// deterministically in call-space.
    Down {
        /// Outage length, in per-shard calls (scatter + control).
        calls: u64,
    },
}

/// One scripted fault: where it applies, when, how often, what it does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Downstream shard index this rule targets (`None` = every shard).
    pub shard: Option<usize>,
    /// Skip the shard's first `after_calls` calls before the rule can
    /// fire (lets a workload warm up healthy).
    pub after_calls: u64,
    /// Fire on at most the next `n` eligible calls after `after_calls`
    /// (`None` = no limit).
    pub call_limit: Option<u64>,
    /// Probability the rule fires on an eligible call, in `[0, 1]`
    /// (`1.0` = always; evaluated deterministically from the plan
    /// seed).
    pub probability: f64,
    /// The injected fault.
    pub mode: FaultMode,
}

impl FaultRule {
    /// A rule that always fires for `shard`, from its first call on.
    pub fn always(shard: usize, mode: FaultMode) -> Self {
        FaultRule {
            shard: Some(shard),
            after_calls: 0,
            call_limit: None,
            probability: 1.0,
            mode,
        }
    }
}

/// A deterministic script of downstream faults (see the module docs).
/// First matching rule wins per call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Empty plan with the given determinism seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule (builder-style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Decide the fate of shard `shard`'s call number `call` (0-based,
    /// counted per shard across all pooled connections): the first
    /// matching rule's mode, or `None` for a clean call.
    pub fn decide(&self, shard: usize, call: u64) -> Option<FaultMode> {
        for (i, rule) in self.rules.iter().enumerate() {
            if let Some(s) = rule.shard {
                if s != shard {
                    continue;
                }
            }
            if call < rule.after_calls {
                continue;
            }
            if let FaultMode::Down { calls } = rule.mode {
                // An outage bounds itself in call-space: past it the
                // host has "restarted" and the rule goes quiet.
                if call - rule.after_calls >= calls {
                    continue;
                }
            }
            if let Some(limit) = rule.call_limit {
                if call - rule.after_calls >= limit {
                    continue;
                }
            }
            if rule.probability < 1.0 {
                // Deterministic coin flip: hash (seed, shard, call,
                // rule index) to a unit f64.
                let h = splitmix64(
                    self.seed
                        ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ call.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                        ^ (i as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
                );
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                if unit >= rule.probability {
                    continue;
                }
            }
            return Some(rule.mode);
        }
        None
    }

    /// Whether any rule scripts a [`FaultMode::Down`] outage. Only such
    /// plans are consulted for control-plane calls (probes, module
    /// pushes), so wire-damage scripts keep their exact scatter call
    /// indices.
    pub fn has_down(&self) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r.mode, FaultMode::Down { .. }))
    }
}

/// splitmix64 finalizer — a strong 64-bit mix, cheap and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_rule_fires_only_on_its_shard() {
        let plan = FaultPlan::new(7).rule(FaultRule::always(1, FaultMode::BlackHole));
        assert_eq!(plan.decide(1, 0), Some(FaultMode::BlackHole));
        assert_eq!(plan.decide(1, 99), Some(FaultMode::BlackHole));
        assert_eq!(plan.decide(0, 0), None);
        assert_eq!(plan.decide(2, 5), None);
    }

    #[test]
    fn call_window_bounds_the_rule() {
        let plan = FaultPlan::new(7).rule(FaultRule {
            shard: Some(0),
            after_calls: 2,
            call_limit: Some(3),
            probability: 1.0,
            mode: FaultMode::DropReply,
        });
        let fired: Vec<u64> = (0..8).filter(|&c| plan.decide(0, c).is_some()).collect();
        assert_eq!(fired, vec![2, 3, 4]);
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(42).rule(FaultRule {
            shard: None,
            after_calls: 0,
            call_limit: None,
            probability: 0.3,
            mode: FaultMode::TruncateReply,
        });
        let fired = |shard| {
            (0..1000)
                .filter(|&c| plan.decide(shard, c).is_some())
                .count()
        };
        // Same inputs, same decisions.
        assert_eq!(fired(0), fired(0));
        // ~300 of 1000 (generous tolerance; the point is calibration,
        // not exactness).
        let n = fired(0);
        assert!((150..=450).contains(&n), "p=0.3 fired {n}/1000");
        // A different shard draws a different (but still deterministic)
        // subset.
        assert_ne!(
            (0..1000).map(|c| plan.decide(0, c)).collect::<Vec<_>>(),
            (0..1000).map(|c| plan.decide(1, c)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn down_outage_bounds_itself_in_call_space() {
        let plan = FaultPlan::new(13).rule(FaultRule {
            shard: Some(1),
            after_calls: 2,
            call_limit: None,
            probability: 1.0,
            mode: FaultMode::Down { calls: 3 },
        });
        let fired: Vec<u64> = (0..10).filter(|&c| plan.decide(1, c).is_some()).collect();
        assert_eq!(fired, vec![2, 3, 4], "outage is exactly `calls` long");
        assert!(plan.has_down());
        assert!(!FaultPlan::new(0)
            .rule(FaultRule::always(0, FaultMode::BlackHole))
            .has_down());
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::always(0, FaultMode::BlackHole))
            .rule(FaultRule::always(0, FaultMode::DropReply));
        assert_eq!(plan.decide(0, 0), Some(FaultMode::BlackHole));
    }
}
