//! Server-side request tracing: the per-request span collector behind
//! the protocol-v3 [`KNN_TRACED`](crate::protocol::KNN_TRACED) trailer,
//! and the bounded slow-query ring `GetTraces` drains.
//!
//! A traced request carries one [`RequestTrace`] from admission to
//! reply encode. Every stage records **offsets from one monotonic
//! clock** (the trace's `t0`, stamped at admission), which is what
//! makes the report self-consistent by construction: the gather time is
//! stamped when the last shard slot resolves, the wall time when the
//! report is finished, and the merge time is their difference — so
//! `wall_ns = gather_ns + merge_ns` holds exactly, and every span's
//! `queue_ns + busy_ns` is clamped into the gather window.
//!
//! The collector is built for a cold path that must not perturb the hot
//! one: untraced requests carry a `None` and pay a single branch per
//! stage; traced requests pay one short mutex lock per shard span (the
//! lock is per-request, so it is effectively uncontended — only the
//! hedge sweeper can race a delivering worker).

use crate::protocol::{ShardSpan, TraceReport};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Spans and flag bits collected for one traced request.
struct TraceInner {
    spans: Vec<ShardSpan>,
    /// Flag bits raised for a shard whose span has not landed yet (the
    /// hedge sweeper flags a straggler *before* its winning leg records
    /// the span); merged into the span on arrival.
    pending: Vec<(u32, u8)>,
}

/// One traced request's collector: admission clock, per-shard spans,
/// and the gather timestamp, folded into a
/// [`TraceReport`] by [`RequestTrace::finish`].
pub(crate) struct RequestTrace {
    id: u64,
    t0: Instant,
    /// Admission → last shard slot resolved, in nanoseconds; 0 until
    /// [`RequestTrace::note_gathered`] stamps it.
    gathered_ns: AtomicU64,
    inner: Mutex<TraceInner>,
}

impl RequestTrace {
    /// Start tracing a request admitted **now**.
    pub(crate) fn new(id: u64) -> Arc<Self> {
        Arc::new(RequestTrace {
            id,
            t0: Instant::now(),
            gathered_ns: AtomicU64::new(0),
            inner: Mutex::new(TraceInner {
                spans: Vec::new(),
                pending: Vec::new(),
            }),
        })
    }

    /// The admission instant every stage offset is measured from.
    pub(crate) fn t0(&self) -> Instant {
        self.t0
    }

    /// Record one shard's span, merging any flag bits raised for the
    /// shard before the span landed. First span per shard wins:
    /// duplicate recordings (a hedge loser's timeout racing the
    /// winner's delivery, a backstop racing a worker) are dropped, so a
    /// report never carries two spans for one shard.
    pub(crate) fn add_span(&self, mut span: ShardSpan) {
        let mut g = self.inner.lock().expect("trace lock");
        if g.spans.iter().any(|sp| sp.shard == span.shard) {
            return;
        }
        if let Some(pos) = g.pending.iter().position(|(s, _)| *s == span.shard) {
            span.flags |= g.pending.remove(pos).1;
        }
        g.spans.push(span);
    }

    /// OR `flags` into `shard`'s span — or stash them if the span has
    /// not landed yet (the sweeper marking a hedge fired races the
    /// winning leg's delivery).
    pub(crate) fn flag_shard(&self, shard: u32, flags: u8) {
        let mut g = self.inner.lock().expect("trace lock");
        if let Some(sp) = g.spans.iter_mut().find(|sp| sp.shard == shard) {
            sp.flags |= flags;
        } else if let Some(p) = g.pending.iter_mut().find(|(s, _)| *s == shard) {
            p.1 |= flags;
        } else {
            g.pending.push((shard, flags));
        }
    }

    /// Stamp the gather point: the last shard slot just resolved.
    pub(crate) fn note_gathered(&self) {
        self.gathered_ns
            .store(self.t0.elapsed().as_nanos() as u64, Ordering::Release);
    }

    /// Fold the collected spans into the wire report, called at reply
    /// encode. `wall_ns = gather_ns + merge_ns` holds exactly (both
    /// terms derive from one reading of the clock), and every span is
    /// clamped into the gather window so `queue_ns + busy_ns ≤
    /// gather_ns` survives clock granularity.
    pub(crate) fn finish(&self) -> TraceReport {
        let wall_ns = self.t0.elapsed().as_nanos() as u64;
        let gather_ns = self.gathered_ns.load(Ordering::Acquire).min(wall_ns);
        let merge_ns = wall_ns - gather_ns;
        let mut g = self.inner.lock().expect("trace lock");
        let mut spans = std::mem::take(&mut g.spans);
        for sp in &mut spans {
            sp.queue_ns = sp.queue_ns.min(gather_ns);
            sp.busy_ns = sp.busy_ns.min(gather_ns - sp.queue_ns);
        }
        spans.sort_by_key(|sp| sp.shard);
        TraceReport {
            trace_id: self.id,
            wall_ns,
            gather_ns,
            merge_ns,
            spans,
        }
    }
}

/// Bounded ring of recent **slow** traces — the server-side buffer
/// `GetTraces` drains (destructively, oldest first). Only traced
/// replies whose wall time reaches the threshold are kept; a threshold
/// of zero keeps every traced reply (useful in tests and drills).
pub(crate) struct TraceRing {
    cap: usize,
    threshold_ns: u64,
    ring: Mutex<VecDeque<TraceReport>>,
}

impl TraceRing {
    /// Ring keeping at most `cap` reports at or above `threshold`.
    pub(crate) fn new(cap: usize, threshold: Duration) -> Self {
        TraceRing {
            cap: cap.max(1),
            threshold_ns: threshold.as_nanos() as u64,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Offer one finished report; kept only if it meets the slow
    /// threshold, evicting the oldest once the ring is full.
    pub(crate) fn record(&self, report: &TraceReport) {
        if report.wall_ns < self.threshold_ns {
            return;
        }
        let mut g = self.ring.lock().expect("trace ring lock");
        if g.len() == self.cap {
            g.pop_front();
        }
        g.push_back(report.clone());
    }

    /// Drain up to `max` reports, oldest first (`0` = all).
    pub(crate) fn drain(&self, max: u32) -> Vec<TraceReport> {
        let mut g = self.ring.lock().expect("trace ring lock");
        let take = if max == 0 {
            g.len()
        } else {
            g.len().min(max as usize)
        };
        g.drain(..take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{SPAN_HEDGE_FIRED, SPAN_HEDGE_WON};

    #[test]
    fn finish_is_self_consistent_by_construction() {
        let t = RequestTrace::new(7);
        t.add_span(ShardSpan {
            shard: 1,
            queue_ns: 10,
            busy_ns: u64::MAX, // absurd: must be clamped into the window
            batch_fill: 3,
            flags: 0,
        });
        t.add_span(ShardSpan {
            shard: 0,
            queue_ns: 5,
            busy_ns: 20,
            batch_fill: 3,
            flags: 0,
        });
        std::thread::sleep(Duration::from_millis(1));
        t.note_gathered();
        let r = t.finish();
        assert_eq!(r.trace_id, 7);
        assert_eq!(r.wall_ns, r.gather_ns + r.merge_ns);
        assert!(r.gather_ns > 0);
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].shard, 0, "spans sorted by shard");
        for sp in &r.spans {
            assert!(sp.queue_ns + sp.busy_ns <= r.gather_ns);
        }
    }

    #[test]
    fn flags_raised_before_the_span_merge_into_it() {
        let t = RequestTrace::new(1);
        // The sweeper fires a hedge before any leg delivered the span.
        t.flag_shard(2, SPAN_HEDGE_FIRED);
        t.add_span(ShardSpan {
            shard: 2,
            queue_ns: 1,
            busy_ns: 1,
            batch_fill: 0,
            flags: SPAN_HEDGE_WON,
        });
        // And flags raised after the span land directly on it.
        t.flag_shard(2, 0b1000);
        t.note_gathered();
        let r = t.finish();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].flags, SPAN_HEDGE_FIRED | SPAN_HEDGE_WON | 0b1000);
    }

    #[test]
    fn ring_keeps_only_slow_reports_bounded_and_drains_oldest_first() {
        let ring = TraceRing::new(2, Duration::from_nanos(100));
        let fast = TraceReport {
            trace_id: 0,
            wall_ns: 50,
            ..Default::default()
        };
        ring.record(&fast);
        assert!(ring.drain(0).is_empty(), "below-threshold report dropped");
        for id in 1..=3u64 {
            ring.record(&TraceReport {
                trace_id: id,
                wall_ns: 200,
                ..Default::default()
            });
        }
        // Cap 2: report 1 was evicted; drain is destructive and
        // oldest-first.
        let drained = ring.drain(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].trace_id, 2);
        let rest = ring.drain(0);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].trace_id, 3);
        assert!(ring.drain(0).is_empty());
    }
}
