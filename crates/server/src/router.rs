//! The shard-router serving tier: a front-end that speaks the same
//! client protocol as a flat server upstream, and scatters each `Knn`
//! as sessionless `ShardKnn` frames to **remote shard servers**
//! downstream, gathering their partials with the same key-space merge
//! the in-process sharded server uses — **bit-identical** to
//! single-process `shards = N` serving while every shard is healthy.
//!
//! ## Split of responsibilities
//!
//! The router owns the **session tier**: the learned module
//! (predictions, inserts), the per-session feedback state machine, and
//! the full collection (the [`fbp_feedback::FeedbackStepper`] reads
//! judged rows' vectors). Downstream shard servers own the **scan
//! tier**: each serves one contiguous row slice with
//! [`crate::ServerConfig::row_offset`] set, so gathered indices address
//! the full key space. Startup probes every downstream (`ShardInfo`)
//! and refuses to start unless the slices tile the router's collection
//! exactly — the precondition of the bit-identity claim.
//!
//! ## Partial-failure policy
//!
//! Every downstream call is bounded by
//! [`RouterConfig::shard_timeout`]; what happens when a shard misses
//! its deadline is decided by the configured
//! [`FailurePolicy`](fbp_vecdb::FailurePolicy) — a typed
//! `ShardUnavailable` error (`Strict`), or a **degraded answer** merged
//! from the surviving shards, flagged on the wire with the missing
//! shard list (`Degraded`). There is no third outcome: no silent
//! narrowing, no hang. See `ARCHITECTURE.md`, "router tier", for the
//! full contract.
//!
//! ## Hedged retries
//!
//! With [`RouterConfig::hedge`] set, a shard that has not answered
//! within its observed p99 call latency (clamped to the configured
//! window) gets one duplicate request on another pooled connection;
//! the first answer wins and the loser is suppressed. Hedging spends
//! bounded extra downstream work to cut tail latency — it never
//! changes an answer, only when it arrives.
//!
//! ## Downstream health tracking
//!
//! Every downstream carries a circuit breaker (see [`crate::health`]):
//! call failures trip it `Healthy → Suspect → Ejected`, and an
//! **ejected** shard leaves the scatter set up front — `Degraded`
//! merges the survivors immediately with the shard in
//! `missing_shards`, `Strict` refuses fast with `ShardUnavailable`;
//! either way no request pays the shard's `shard_timeout` again. A
//! background prober re-checks ejected shards with `ShardInfo` at
//! exponentially backed-off intervals, and re-admission is earned:
//! [`crate::HealthConfig::readmit_successes`] consecutive probe
//! successes, a tiling re-validation against what startup accepted,
//! and a fresh push of the learned module — only then does the shard
//! take traffic again. The same prober also re-replicates the module
//! to the healthy shards whenever a session commit updates it.

use crate::health::HealthConfig;
use crate::metrics::Metrics;
use crate::pool::{control_call, Downstream, Job, PoolConfig};
use crate::protocol::{
    error_code_for, read_frame, write_frame, DecodeError, DownstreamHealth, ErrorCode, FrameError,
    Request, Response, ShardSpan, DEFAULT_MAX_FRAME_LEN, KNN_DEGRADED, KNN_TRACED,
    PROTOCOL_VERSION, SPAN_FAILED, SPAN_FAST_DEGRADED, SPAN_HEDGE_FIRED,
};
use crate::sessions::{err, ExampleSets, SessionStore};
use crate::trace::{RequestTrace, TraceRing};
use fbp_vecdb::{
    merge_partials_policy, Collection, DegradedGather, FailurePolicy, ShardPartial,
    WeightedEuclidean,
};
use feedbackbypass::{
    FeedbackBypass, FeedbackConfig, KnnRequest, QuerySpec, RocchioWeights, SharedBypass,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::faults::{FaultMode, FaultPlan};

/// Hedged-retry tuning: the hedge delay is the downstream's observed
/// p99 call latency, clamped into `[min_delay, max_delay]` (and
/// `max_delay` alone until a latency sample exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Never hedge sooner than this (guards cold p99 estimates).
    pub min_delay: Duration,
    /// Never wait longer than this before hedging a silent shard.
    pub max_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            min_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Budget for one downstream scatter call, connect + retries
    /// included; a shard silent past it is treated as failed and the
    /// [`RouterConfig::policy`] decides the reply.
    pub shard_timeout: Duration,
    /// Bound on each downstream TCP connect attempt.
    pub connect_timeout: Duration,
    /// First reconnect backoff; doubles per consecutive connect
    /// failure.
    pub backoff_base: Duration,
    /// Reconnect backoff clamp.
    pub backoff_max: Duration,
    /// Pooled connections per downstream (each is one worker thread);
    /// keep ≥ 2 so a hedge can overtake a stuck primary.
    pub conns_per_downstream: usize,
    /// Hedged-retry policy (`None` disables hedging).
    pub hedge: Option<HedgeConfig>,
    /// The documented partial-failure contract. Defaults to
    /// [`FailurePolicy::Strict`]: degradation is opt-in, never a
    /// surprise.
    pub policy: FailurePolicy,
    /// Admission bound on in-flight upstream `Knn` requests; beyond it
    /// requests answer [`ErrorCode::Busy`].
    pub queue_capacity: usize,
    /// Largest accepted frame payload, upstream and downstream.
    pub max_frame_len: u32,
    /// Read-timeout slice upstream connection threads park in between
    /// frames (shutdown-poll granularity, not a client timeout).
    pub read_timeout: Duration,
    /// Write timeout on every upstream reply and downstream request.
    pub write_timeout: Duration,
    /// Feedback transition configuration for the router's session tier.
    pub feedback: FeedbackConfig,
    /// Scripted downstream faults for tests and smoke drills (`None` in
    /// production). See [`crate::faults`].
    pub faults: Option<Arc<FaultPlan>>,
    /// Circuit-breaker tuning for the per-downstream health trackers:
    /// ejection thresholds, probe cadence, re-admission quorum. See
    /// [`crate::health`].
    pub health: HealthConfig,
    /// Traced replies at or above this wall time are kept in the
    /// bounded slow-query ring `GetTraces` drains (zero keeps every
    /// traced reply). Untraced requests record nothing.
    pub slow_trace_threshold: Duration,
}

/// Capacity of the router's slow-query trace ring (reports, oldest
/// evicted first).
const TRACE_RING_CAP: usize = 64;

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shard_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_millis(200),
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(100),
            conns_per_downstream: 2,
            hedge: Some(HedgeConfig::default()),
            policy: FailurePolicy::Strict,
            queue_capacity: 4096,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_secs(1),
            feedback: FeedbackConfig::default(),
            faults: None,
            health: HealthConfig::default(),
            slow_trace_threshold: Duration::from_millis(5),
        }
    }
}

/// Reply sink for one gathered request: either the policy-approved
/// (possibly degraded) merge, or a ready-to-send error response.
pub(crate) type GatherReply = Box<dyn FnOnce(Result<DegradedGather, Response>) + Send>;

struct GatherState {
    /// Slot per downstream; `None` after delivery means the shard
    /// failed.
    partials: Vec<Option<ShardPartial>>,
    delivered: Vec<bool>,
    remaining: usize,
    reply: Option<GatherReply>,
}

/// One scattered `Knn` in flight across the downstream pools: the
/// request's resolved search parameters, its per-shard delivery slots,
/// and the shared early-abandon seed each delivered partial tightens
/// for the calls still outstanding.
pub(crate) struct RouterGather {
    k: usize,
    metric: WeightedEuclidean,
    point: Vec<f64>,
    weights: Vec<f64>,
    /// Cross-shard early-abandon bound (f64 bits; CAS-tightened). A
    /// retry or hedge serialized after another shard finished carries
    /// the tightened bound — sound because a row subset's k-th best can
    /// only be ≥ the global k-th best.
    seed: AtomicU64,
    created: Instant,
    deadline: Instant,
    /// Per-shard hedge-fired latch (a shard is hedged at most once).
    hedged: Vec<AtomicBool>,
    done: AtomicBool,
    policy: FailurePolicy,
    /// Span collector for a traced request (`None` on the untraced hot
    /// path). Observes timestamps only; it can never change an answer.
    pub(crate) trace: Option<Arc<RequestTrace>>,
    state: Mutex<GatherState>,
}

impl RouterGather {
    #[allow(clippy::too_many_arguments)] // construction site is singular; a params struct would only rename the nine fields
    pub(crate) fn new(
        k: usize,
        metric: WeightedEuclidean,
        point: Vec<f64>,
        weights: Vec<f64>,
        shards: usize,
        deadline_in: Duration,
        policy: FailurePolicy,
        trace: Option<Arc<RequestTrace>>,
        reply: GatherReply,
    ) -> Arc<Self> {
        let created = Instant::now();
        Arc::new(RouterGather {
            k,
            metric,
            point,
            weights,
            seed: AtomicU64::new(f64::INFINITY.to_bits()),
            created,
            deadline: created + deadline_in,
            hedged: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            done: AtomicBool::new(false),
            policy,
            trace,
            state: Mutex::new(GatherState {
                partials: (0..shards).map(|_| None).collect(),
                delivered: vec![false; shards],
                remaining: shards,
                reply: Some(reply),
            }),
        })
    }

    /// Absolute deadline every downstream call for this gather shares.
    pub(crate) fn deadline(&self) -> Instant {
        self.deadline
    }

    /// Whether `shard`'s slot has already been delivered (lets a hedge
    /// or straggling retry stand down without touching the wire).
    pub(crate) fn shard_resolved(&self, shard: usize) -> bool {
        self.done.load(Ordering::Acquire)
            || self.state.lock().expect("gather lock").delivered[shard]
    }

    /// The `ShardKnn` frame for this gather, carrying the seed as
    /// currently tightened — built at send time so retries and hedges
    /// prune with everything already learned.
    pub(crate) fn shard_request(&self) -> Request {
        Request::ShardKnn {
            k: self.k as u32,
            seed: f64::from_bits(self.seed.load(Ordering::Acquire)),
            point: self.point.clone(),
            weights: self.weights.clone(),
        }
    }

    /// Deliver `shard`'s outcome. Duplicate deliveries (a hedge losing
    /// to its primary, a backstop racing a worker) are dropped; returns
    /// whether this call was the one recorded. The final delivery
    /// merges under the failure policy and fires the reply.
    pub(crate) fn complete_shard(
        &self,
        shard: usize,
        outcome: Result<ShardPartial, String>,
    ) -> bool {
        let fire: Option<(GatherReply, Vec<Option<ShardPartial>>)> = {
            let mut state = self.state.lock().expect("gather lock");
            if state.delivered[shard] {
                return false;
            }
            state.delivered[shard] = true;
            state.remaining -= 1;
            if let Ok(partial) = outcome {
                if let Some(bound) = partial.bound_key(self.k) {
                    self.tighten_seed(bound);
                }
                state.partials[shard] = Some(partial);
            }
            if state.remaining == 0 {
                self.done.store(true, Ordering::Release);
                let reply = state.reply.take();
                let partials = std::mem::take(&mut state.partials);
                reply.map(|r| (r, partials))
            } else {
                None
            }
        };
        if let Some((reply, partials)) = fire {
            // The last slot just resolved: everything from here (the
            // policy merge, session bookkeeping, reply encode + write)
            // is merge time.
            if let Some(trace) = &self.trace {
                trace.note_gathered();
            }
            reply(self.merge(&partials));
        }
        true
    }

    /// Record `shard`'s span on a traced gather (no-op otherwise):
    /// `started` is when the leg's wire work began (`None` for legs
    /// that never touched the wire — fast degrades, backstops — which
    /// report zero times). Call **before** the matching
    /// [`Self::complete_shard`] so the delivery that fires the reply
    /// already sees the span; duplicate recordings for a shard (a
    /// losing leg racing the winner) are dropped by the collector.
    pub(crate) fn trace_span(&self, shard: usize, started: Option<Instant>, flags: u8) {
        if let Some(trace) = &self.trace {
            let (queue_ns, busy_ns) = match started {
                Some(s) => (
                    s.saturating_duration_since(trace.t0()).as_nanos() as u64,
                    s.elapsed().as_nanos() as u64,
                ),
                None => (0, 0),
            };
            trace.add_span(ShardSpan {
                shard: shard as u32,
                queue_ns,
                busy_ns,
                batch_fill: 0,
                flags,
            });
        }
    }

    /// CAS-tighten the shared early-abandon bound.
    fn tighten_seed(&self, bound: f64) {
        let mut current = self.seed.load(Ordering::Acquire);
        while bound < f64::from_bits(current) {
            match self.seed.compare_exchange_weak(
                current,
                bound.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
    }

    /// Fold the delivered partials under the failure policy into the
    /// reply outcome.
    fn merge(&self, partials: &[Option<ShardPartial>]) -> Result<DegradedGather, Response> {
        // Every downstream must scan in the same mode; a deployment
        // mixing selection spaces would make the merge meaningless, so
        // refuse it as a typed error instead of panicking the merge.
        let mut space: Option<bool> = None;
        for partial in partials.iter().flatten() {
            if partial.entries().is_empty() {
                continue;
            }
            match space {
                None => space = Some(partial.is_finished()),
                Some(f) if f != partial.is_finished() => {
                    return Err(err(
                        ErrorCode::Internal,
                        "downstream shards disagree on scan mode; partials are unmergeable",
                    ));
                }
                Some(_) => {}
            }
        }
        merge_partials_policy(partials, self.k, &self.metric, self.policy)
            .map_err(|ge| err(ErrorCode::ShardUnavailable, ge.to_string()))
    }
}

/// Everything the router threads share.
struct RouterShared {
    store: SessionStore,
    cfg: RouterConfig,
    downstreams: Vec<Arc<Downstream>>,
    /// Sum of the downstream row counts (== the router collection).
    total_rows: usize,
    /// In-flight upstream `Knn` requests (admission bound).
    inflight: AtomicUsize,
    metrics: Arc<Metrics>,
    degraded_replies: AtomicU64,
    /// Live gathers, swept for hedges and backstop delivery.
    gathers: Mutex<Vec<Arc<RouterGather>>>,
    next_conn: AtomicU64,
    /// Trace-id source for traced requests (per-router unique).
    next_trace: AtomicU64,
    /// Slow-query trace ring, drained by `GetTraces`.
    traces: TraceRing,
    shutdown: AtomicBool,
    /// Module epoch, bumped by the session store's commit hook on every
    /// successful learned-module insert.
    module_epoch: Arc<AtomicU64>,
    /// Last module epoch the prober finished replicating downstream;
    /// trailing [`RouterShared::module_epoch`] means a fan-out is due.
    replicated_epoch: AtomicU64,
}

impl RouterShared {
    /// Router stats: the shared serving counters plus the six
    /// router-tier fields summed over the downstream pools.
    fn stats(&self) -> crate::protocol::StatsSnapshot {
        let mut snap = self.metrics.snapshot(self.store.count());
        for ds in &self.downstreams {
            snap.downstream_timeouts += ds.stats.timeouts.load(Ordering::Relaxed);
            snap.downstream_retries += ds.stats.retries.load(Ordering::Relaxed);
            snap.downstream_reconnects += ds.stats.reconnects.load(Ordering::Relaxed);
            snap.hedges_fired += ds.stats.hedges_fired.load(Ordering::Relaxed);
            snap.hedges_won += ds.stats.hedges_won.load(Ordering::Relaxed);
        }
        snap.degraded_replies = self.degraded_replies.load(Ordering::Relaxed);
        snap.health = self
            .downstreams
            .iter()
            .map(|ds| DownstreamHealth {
                shard: ds.shard as u32,
                state: ds.health.state(),
                ejections: ds.health.ejections.load(Ordering::Relaxed),
                readmissions: ds.health.readmissions.load(Ordering::Relaxed),
                probe_failures: ds.health.probe_failures.load(Ordering::Relaxed),
                fast_degrades: ds.health.fast_degrades.load(Ordering::Relaxed),
            })
            .collect();
        snap
    }
}

/// Handle to a running router: address, live stats, module
/// replication, graceful shutdown. Dropping the handle shuts the
/// router down and joins every thread.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound upstream address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stats snapshot: the serving counters plus the router-tier
    /// robustness counters summed over the downstream pools (same
    /// numbers the wire `SnapshotStats` reports).
    pub fn stats(&self) -> crate::protocol::StatsSnapshot {
        self.shared.stats()
    }

    /// Push the router's current learned module to every downstream
    /// (`RestoreModule` on a fresh control connection each). The first
    /// failure aborts the fan-out with its shard named — module
    /// replication is an operator action, not a best-effort background
    /// drift.
    pub fn replicate_module(&self) -> io::Result<()> {
        let image = self.shared.store.bypass().to_bytes();
        for ds in &self.shared.downstreams {
            let resp = control_call(
                &ds.addr,
                &Request::RestoreModule {
                    image: image.clone(),
                },
                self.shared.cfg.connect_timeout,
                self.shared.cfg.shard_timeout,
                self.shared.cfg.max_frame_len,
            )
            .map_err(|e| {
                io::Error::new(e.kind(), format!("replicate to shard {}: {e}", ds.shard))
            })?;
            match resp {
                Response::ModuleRestored => {}
                Response::Error { code, message } => {
                    return Err(io::Error::other(format!(
                        "shard {} refused module: [{code}] {message}",
                        ds.shard
                    )));
                }
                other => {
                    return Err(io::Error::other(format!(
                        "shard {} unexpected reply to RestoreModule: {other:?}",
                        ds.shard
                    )));
                }
            }
        }
        Ok(())
    }

    /// Graceful shutdown: stop accepting, fail the in-flight gathers,
    /// drain and join every pool worker and connection thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for ds in &self.shared.downstreams {
            ds.shutdown();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for h in conns {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || self.sweeper.is_some() || self.prober.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Bind `addr` and start routing over the given downstream shard
/// servers. `coll` is the **full** collection (the router's session
/// tier reads judged rows from it); each downstream must serve one
/// contiguous slice of it with a matching
/// [`crate::ServerConfig::row_offset`]. Startup probes every
/// downstream and fails unless the slices tile `coll` exactly — all
/// downstreams must be reachable to start (a router that cannot see
/// its shards has nothing to serve).
pub fn route(
    addr: impl ToSocketAddrs,
    downstreams: &[SocketAddr],
    coll: Arc<Collection>,
    bypass: SharedBypass,
    cfg: RouterConfig,
) -> io::Result<RouterHandle> {
    if downstreams.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a router needs at least one downstream shard server",
        ));
    }
    // Probe: every shard must be reachable, dimensionally compatible,
    // and the row slices must tile the collection in order — the
    // precondition of healthy-path bit-identity with in-process
    // sharding.
    let mut expected_offset: u64 = 0;
    // The validated per-shard tiling, kept so re-admission probes can
    // re-check a restarted shard against exactly what startup accepted.
    let mut tilings: Vec<(u64, u64, u32)> = Vec::with_capacity(downstreams.len());
    for (shard, ds_addr) in downstreams.iter().enumerate() {
        let resp = control_call(
            ds_addr,
            &Request::ShardInfo,
            cfg.connect_timeout,
            cfg.shard_timeout.max(Duration::from_millis(100)),
            cfg.max_frame_len,
        )
        .map_err(|e| io::Error::new(e.kind(), format!("probe shard {shard} ({ds_addr}): {e}")))?;
        let (rows, offset, dim) = match resp {
            Response::ShardInfoResult { rows, offset, dim } => (rows, offset, dim),
            other => {
                return Err(io::Error::other(format!(
                    "shard {shard} unexpected probe reply: {other:?}"
                )));
            }
        };
        tilings.push((rows, offset, dim));
        if dim as usize != coll.dim() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard {shard} serves dim {dim}, router collection is dim {}",
                    coll.dim()
                ),
            ));
        }
        if offset != expected_offset {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard {shard} starts at row {offset}, expected {expected_offset}"),
            ));
        }
        expected_offset += rows;
    }
    if expected_offset != coll.len() as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "downstream slices cover {expected_offset} rows, router collection has {}",
                coll.len()
            ),
        ));
    }

    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let pool_cfg = PoolConfig {
        connect_timeout: cfg.connect_timeout,
        read_slice: Duration::from_millis(5),
        write_timeout: cfg.write_timeout,
        backoff_base: cfg.backoff_base,
        backoff_max: cfg.backoff_max,
        max_frame_len: cfg.max_frame_len,
        workers: cfg.conns_per_downstream.max(1),
    };
    let pools: Vec<Arc<Downstream>> = downstreams
        .iter()
        .enumerate()
        .map(|(shard, ds_addr)| {
            Downstream::new(
                shard,
                *ds_addr,
                pool_cfg.clone(),
                cfg.faults.clone(),
                cfg.health.clone(),
                tilings[shard],
            )
        })
        .collect();
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for pool in &pools {
        workers.extend(pool.spawn_workers());
    }

    let metrics = Arc::new(Metrics::new(pools.len() as u64));
    let store = SessionStore::new(
        Arc::clone(&coll),
        bypass,
        cfg.feedback.clone(),
        Arc::clone(&metrics),
    );
    // Session commits dirty the module epoch; the prober thread fans
    // the new module out to the healthy shards when it trails.
    let module_epoch = Arc::new(AtomicU64::new(0));
    store.set_commit_hook(Box::new({
        let epoch = Arc::clone(&module_epoch);
        move || {
            epoch.fetch_add(1, Ordering::Release);
        }
    }));
    let cfg_trace_threshold = cfg.slow_trace_threshold;
    let shared = Arc::new(RouterShared {
        store,
        total_rows: coll.len(),
        cfg,
        downstreams: pools,
        inflight: AtomicUsize::new(0),
        metrics,
        degraded_replies: AtomicU64::new(0),
        gathers: Mutex::new(Vec::new()),
        next_conn: AtomicU64::new(1),
        next_trace: AtomicU64::new(1),
        traces: TraceRing::new(TRACE_RING_CAP, cfg_trace_threshold),
        shutdown: AtomicBool::new(false),
        module_epoch,
        replicated_epoch: AtomicU64::new(0),
    });

    let sweeper = std::thread::spawn({
        let shared = Arc::clone(&shared);
        move || run_sweeper(&shared)
    });
    let prober = std::thread::spawn({
        let shared = Arc::clone(&shared);
        move || run_prober(&shared)
    });

    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = std::thread::spawn({
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || handle_connection(stream, &shared));
                let mut conns = conns.lock().expect("conns lock");
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
        }
    });

    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
        sweeper: Some(sweeper),
        prober: Some(prober),
        workers,
        conns,
    })
}

/// Sweeper tick interval: hedge-fire and backstop granularity.
const SWEEP_TICK: Duration = Duration::from_millis(1);

/// Periodic gather maintenance: fire hedges at straggling shards,
/// backstop-fail any slot still undelivered well past its deadline
/// (workers normally classify their own timeouts; the backstop bounds
/// even a lost job), and prune finished gathers.
fn run_sweeper(shared: &Arc<RouterShared>) {
    let grace = shared.cfg.connect_timeout + Duration::from_millis(100);
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(SWEEP_TICK);
        let live: Vec<Arc<RouterGather>> = {
            let mut gathers = shared.gathers.lock().expect("gathers lock");
            gathers.retain(|g| !g.done.load(Ordering::Acquire));
            gathers.clone()
        };
        let now = Instant::now();
        for gather in &live {
            if let Some(hedge) = &shared.cfg.hedge {
                fire_due_hedges(shared, gather, hedge, now);
            }
            if now >= gather.deadline() + grace {
                for shard in 0..shared.downstreams.len() {
                    if !gather.shard_resolved(shard) {
                        gather.trace_span(shard, None, SPAN_FAILED);
                        gather.complete_shard(
                            shard,
                            Err(format!(
                                "shard {shard} undelivered past deadline (backstop)"
                            )),
                        );
                    }
                }
            }
        }
    }
    // Shutdown: every live gather must still resolve exactly once. The
    // pools fail their queued jobs; anything left undelivered is
    // backstopped here.
    let live: Vec<Arc<RouterGather>> =
        std::mem::take(&mut *shared.gathers.lock().expect("gathers lock"));
    for gather in live {
        for shard in 0..shared.downstreams.len() {
            if !gather.shard_resolved(shard) {
                gather.complete_shard(shard, Err("router shutting down".into()));
            }
        }
    }
}

/// Prober tick interval: how often ejected downstreams are checked for
/// a due re-admission probe and a dirty module epoch for replication.
const PROBE_TICK: Duration = Duration::from_millis(2);

/// Background health maintenance: replicate a dirtied learned module to
/// the healthy downstreams, and re-probe ejected ones at their
/// backed-off schedule — the only path back into the scatter set.
fn run_prober(shared: &Arc<RouterShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(PROBE_TICK);
        replicate_if_dirty(shared);
        let now = Instant::now();
        for ds in &shared.downstreams {
            if ds.health.take_due_probe(now) {
                probe_one(shared, ds);
            }
        }
    }
}

/// One re-admission probe against an ejected downstream (the tracker
/// just moved it `Ejected → Probing`): `ShardInfo` must answer **and**
/// report exactly the tiling startup validated — a restarted shard
/// serving different rows would silently break the key-space merge.
/// When the success completes the re-admission quorum, the current
/// learned module is re-pushed before the shard takes traffic; only
/// then does it return to `Healthy`.
fn probe_one(shared: &Arc<RouterShared>, ds: &Arc<Downstream>) {
    let now = Instant::now();
    // A scripted outage refuses control calls too (a dead host refuses
    // every call class).
    if matches!(ds.control_fault(), Some(FaultMode::Down { .. })) {
        ds.health.probe_failed(now);
        return;
    }
    let cfg = &shared.cfg;
    let resp = control_call(
        &ds.addr,
        &Request::ShardInfo,
        cfg.connect_timeout,
        cfg.shard_timeout.max(Duration::from_millis(100)),
        cfg.max_frame_len,
    );
    let tiling_ok = matches!(
        resp,
        Ok(Response::ShardInfoResult { rows, offset, dim }) if (rows, offset, dim) == ds.expected
    );
    if !tiling_ok {
        ds.health.probe_failed(Instant::now());
        return;
    }
    if !ds.health.probe_succeeded(Instant::now()) {
        return; // below the re-admission quorum; the next probe continues the run
    }
    // Quorum reached: the restarted shard may hold a stale (or empty)
    // module — push the router's current snapshot before any traffic.
    let pushed = if matches!(ds.control_fault(), Some(FaultMode::Down { .. })) {
        false
    } else {
        matches!(
            control_call(
                &ds.addr,
                &Request::RestoreModule {
                    image: shared.store.bypass().to_bytes(),
                },
                cfg.connect_timeout,
                cfg.shard_timeout,
                cfg.max_frame_len,
            ),
            Ok(Response::ModuleRestored)
        )
    };
    if pushed {
        ds.health.readmit();
    } else {
        ds.health.probe_failed(Instant::now());
    }
}

/// Re-replicate the learned module to the healthy downstreams when a
/// session commit has dirtied the epoch since the last fan-out. Shards
/// out of the scatter set are skipped — re-admission pushes the module
/// anyway — and a failed push feeds the shard's health tracker instead
/// of being dropped.
fn replicate_if_dirty(shared: &Arc<RouterShared>) {
    let epoch = shared.module_epoch.load(Ordering::Acquire);
    if epoch == shared.replicated_epoch.load(Ordering::Acquire) {
        return;
    }
    let cfg = &shared.cfg;
    let image = shared.store.bypass().to_bytes();
    for ds in &shared.downstreams {
        if !ds.health.admits_scatter() {
            continue;
        }
        if matches!(ds.control_fault(), Some(FaultMode::Down { .. })) {
            ds.health.record_failure(Instant::now());
            continue;
        }
        let outcome = control_call(
            &ds.addr,
            &Request::RestoreModule {
                image: image.clone(),
            },
            cfg.connect_timeout,
            cfg.shard_timeout,
            cfg.max_frame_len,
        );
        if !matches!(outcome, Ok(Response::ModuleRestored)) {
            ds.health.record_failure(Instant::now());
        }
    }
    // Commits that landed mid-fan-out leave the epoch ahead of what was
    // read here, so the next tick replicates again.
    shared.replicated_epoch.store(epoch, Ordering::Release);
}

/// Enqueue a hedge for every shard of `gather` that is past its
/// downstream's hedge delay and still silent (at most once per shard).
fn fire_due_hedges(
    shared: &Arc<RouterShared>,
    gather: &Arc<RouterGather>,
    hedge: &HedgeConfig,
    now: Instant,
) {
    for ds in &shared.downstreams {
        let shard = ds.shard;
        if gather.hedged[shard].load(Ordering::Relaxed) || gather.shard_resolved(shard) {
            continue;
        }
        if !ds.health.admits_scatter() {
            // An ejected shard's slot was (or will be) failed instantly;
            // a hedge would only queue a job that bails.
            continue;
        }
        let delay = ds
            .stats
            .p99()
            .map(|p| p.clamp(hedge.min_delay, hedge.max_delay))
            .unwrap_or(hedge.max_delay);
        if now < gather.created + delay {
            continue;
        }
        if gather.hedged[shard].swap(true, Ordering::Relaxed) {
            continue; // another tick raced us
        }
        ds.stats.hedges_fired.fetch_add(1, Ordering::Relaxed);
        // The hedge-fired bit lands on whichever leg's span ultimately
        // resolves the shard (stashed until the span arrives).
        if let Some(trace) = &gather.trace {
            trace.flag_shard(shard as u32, SPAN_HEDGE_FIRED);
        }
        ds.enqueue(Job {
            gather: Arc::clone(gather),
            hedge: true,
        });
    }
}

/// Upstream read→handle→reply loop — the same framing discipline as the
/// flat server's (see [`crate::serve`]), with `Knn` deferred to the
/// downstream gather instead of an in-process batcher.
fn handle_connection(stream: TcpStream, shared: &Arc<RouterShared>) {
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let writer: Arc<Mutex<TcpStream>> = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = io::BufReader::with_capacity(16 * 1024, stream);
    let mut owned_sessions: Vec<u64> = Vec::new();
    // Same negotiation state as the flat server: v1 until a `Hello`
    // raises it, so v2-only opcodes are refused on un-negotiated
    // connections and v1 traffic stays byte-for-byte unchanged.
    let mut version: u8 = 1;
    loop {
        let mut keep_waiting = || !shared.shutdown.load(Ordering::SeqCst);
        match read_frame(&mut reader, shared.cfg.max_frame_len, &mut keep_waiting) {
            Ok(None) => break,
            Ok(Some(payload)) => {
                let response = match Request::decode(&payload) {
                    Ok(req) => handle_request(
                        req,
                        shared,
                        &writer,
                        conn_id,
                        &mut owned_sessions,
                        &mut version,
                    ),
                    Err(e) => {
                        shared.metrics.record_protocol_error();
                        let code = match e {
                            DecodeError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
                            _ => ErrorCode::BadFrame,
                        };
                        Some(Response::Error {
                            code,
                            message: e.to_string(),
                        })
                    }
                };
                if let Some(response) = response {
                    if write_response(&writer, &response).is_err() {
                        break;
                    }
                }
            }
            Err(FrameError::Oversized { len, max }) => {
                shared.metrics.record_protocol_error();
                let resp = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: format!("frame of {len} bytes exceeds the {max}-byte maximum"),
                };
                let _ = write_response(&writer, &resp);
                break;
            }
            Err(FrameError::Io(e)) => {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    shared.metrics.record_protocol_error();
                }
                break;
            }
        }
    }
    shared.store.drop_owned(&owned_sessions);
}

/// One reply frame under the connection's write lock.
fn write_response(writer: &Mutex<TcpStream>, response: &Response) -> io::Result<()> {
    let mut w = writer.lock().expect("writer lock");
    write_frame(&mut *w, &response.encode())
}

/// Serve one decoded upstream request; `None` means the reply was
/// deferred to the gather's final delivery.
fn handle_request(
    req: Request,
    shared: &Arc<RouterShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u64,
    owned: &mut Vec<u64>,
    version: &mut u8,
) -> Option<Response> {
    match req {
        Request::Hello { version: client } => Some(if client == 0 {
            shared.metrics.record_protocol_error();
            err(ErrorCode::BadRequest, "protocol version 0 is not valid")
        } else {
            *version = client.min(PROTOCOL_VERSION);
            Response::HelloAck { version: *version }
        }),
        Request::OpenSession => {
            let id = shared.store.open(conn_id);
            owned.push(id);
            Some(Response::SessionOpened {
                session: id,
                dim: shared.store.coll().dim() as u32,
            })
        }
        Request::Knn { session, k, query } => handle_router_knn(
            shared,
            writer,
            conn_id,
            session,
            k,
            query,
            ExampleSets::default(),
            false,
        ),
        Request::KnnV2 {
            session,
            k,
            alpha,
            beta,
            gamma,
            clamp,
            trace,
            anchor,
            positives,
            negatives,
        } => {
            if *version < 2 {
                shared.metrics.record_protocol_error();
                return Some(err(
                    ErrorCode::BadRequest,
                    "KnnV2 requires a negotiated protocol version >= 2 (send Hello first)",
                ));
            }
            let spec = match QuerySpec::builder(anchor)
                .positives(positives)
                .negatives(negatives)
                .rocchio(RocchioWeights::new(alpha, beta, gamma))
                .clamp_to_zero(clamp)
                .build()
            {
                Ok(spec) => spec,
                Err(e) => {
                    shared.metrics.record_protocol_error();
                    return Some(err(error_code_for(&e), e.to_string()));
                }
            };
            // Lower once at the router: the scatter below carries the
            // derived anchor in plain `ShardKnn` frames, so downstream
            // shard servers need zero changes for multi-example
            // queries.
            let examples = ExampleSets {
                positives: spec.positives().to_vec(),
                negatives: spec.negatives().to_vec(),
            };
            let derived = spec.lower().into_request().point;
            // Same rule as the flat server: the trace bit is honored
            // only at a negotiated v3+, ignored otherwise.
            let traced = trace && *version >= 3;
            handle_router_knn(
                shared, writer, conn_id, session, k, derived, examples, traced,
            )
        }
        Request::Feedback { session, relevant } => {
            Some(shared.store.feedback(conn_id, session, relevant))
        }
        Request::SnapshotStats => Some(Response::Stats(Box::new(shared.stats()))),
        Request::GetTraces { max } => {
            if *version < 3 {
                shared.metrics.record_protocol_error();
                return Some(err(
                    ErrorCode::BadRequest,
                    "GetTraces requires a negotiated protocol version >= 3 (send Hello first)",
                ));
            }
            Some(Response::TraceList {
                traces: shared.traces.drain(max),
            })
        }
        Request::Close { session } => {
            let removed = shared.store.close(session, conn_id);
            owned.retain(|&id| id != session);
            Some(if removed {
                Response::Closed
            } else {
                err(ErrorCode::UnknownSession, format!("session {session}"))
            })
        }
        // The router is a front-end, not a shard server: it has no
        // local rows to answer a sessionless shard-local scan over.
        Request::ShardKnn { .. } => {
            shared.metrics.record_protocol_error();
            Some(err(
                ErrorCode::BadRequest,
                "ShardKnn targets a shard server, not a router",
            ))
        }
        Request::ShardInfo => Some(Response::ShardInfoResult {
            rows: shared.total_rows as u64,
            offset: 0,
            dim: shared.store.coll().dim() as u32,
        }),
        Request::SnapshotModule => Some(Response::ModuleImage {
            image: shared.store.bypass().to_bytes(),
        }),
        Request::RestoreModule { image } => Some(handle_restore_module(shared, &image)),
    }
}

/// `Knn` (and lowered `KnnV2`) upstream: resolve the session's learned
/// parameters, admit, and scatter one `ShardKnn` job into every
/// downstream pool; the last delivered slot merges under the failure
/// policy and writes the reply (degraded answers flagged with their
/// missing shards). `query` is the (possibly derived) anchor point and
/// `examples` the spec's example sets (empty for v1). With `traced`
/// set, a [`RequestTrace`] rides the gather — per-downstream RTT spans,
/// hedge and fast-degrade attribution — and the reply carries the
/// stage-timing trailer; everything else is bit-identical.
#[allow(clippy::too_many_arguments)]
fn handle_router_knn(
    shared: &Arc<RouterShared>,
    writer: &Arc<Mutex<TcpStream>>,
    conn_id: u64,
    session: u64,
    k: u32,
    query: Vec<f64>,
    examples: ExampleSets,
    traced: bool,
) -> Option<Response> {
    let dim = shared.store.coll().dim();
    if query.len() != dim {
        shared.metrics.record_protocol_error();
        return Some(err(
            ErrorCode::DimMismatch,
            format!("expected {dim}, got {}", query.len()),
        ));
    }
    let k = (k as usize).min(shared.total_rows);
    let (point, weights) = match shared.store.resolve_knn(conn_id, session, query, examples) {
        Ok(params) => params,
        Err(resp) => return Some(resp),
    };
    let req = KnnRequest {
        point,
        weights,
        k: Some(k),
        precision: None,
    };
    // Build the metric once at admission — the downstream scatter and
    // the final merge share it (and the validation), exactly like the
    // in-process scatter path.
    let metric = match req.metric(dim) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.record_protocol_error();
            return Some(err(ErrorCode::BadRequest, e.to_string()));
        }
    };

    // Ejected shards are out of the scatter set up front (the
    // fast-degrade rule): under `Strict` the request is refused here —
    // no downstream work, no `shard_timeout` paid — and under
    // `Degraded` their slots fail instantly below so the survivors
    // merge immediately.
    let ejected: Vec<usize> = shared
        .downstreams
        .iter()
        .filter(|ds| !ds.health.admits_scatter())
        .map(|ds| ds.shard)
        .collect();
    if !ejected.is_empty() && shared.cfg.policy == FailurePolicy::Strict {
        for ds in &shared.downstreams {
            if !ds.health.admits_scatter() {
                ds.health.note_fast_degrade();
            }
        }
        return Some(err(
            ErrorCode::ShardUnavailable,
            format!("shards {ejected:?} ejected from the scatter set"),
        ));
    }

    if shared.inflight.fetch_add(1, Ordering::AcqRel) >= shared.cfg.queue_capacity {
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        return Some(err(ErrorCode::Busy, "router queue full"));
    }
    shared.metrics.record_request();

    // Admission is t0: every downstream span and the gather/merge split
    // measure offsets from this one monotonic clock.
    let req_trace =
        traced.then(|| RequestTrace::new(shared.next_trace.fetch_add(1, Ordering::Relaxed)));

    let reply: GatherReply = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(writer);
        let req_trace = req_trace.clone();
        Box::new(move |outcome: Result<DegradedGather, Response>| {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            let response = match outcome {
                Ok(gathered) => {
                    let (mut flags, cycles) = shared.store.finish_knn(session, &gathered.neighbors);
                    if gathered.is_degraded() {
                        flags |= KNN_DEGRADED;
                        shared.degraded_replies.fetch_add(1, Ordering::Relaxed);
                    }
                    // Fold the trace last, right before encode; error
                    // replies (including Strict refusals) carry none.
                    let trace = req_trace.as_ref().map(|t| {
                        let report = t.finish();
                        shared.traces.record(&report);
                        Box::new(report)
                    });
                    if trace.is_some() {
                        flags |= KNN_TRACED;
                    }
                    Response::KnnResult {
                        flags,
                        cycles,
                        missing_shards: gathered.missing_shards,
                        trace,
                        neighbors: gathered.neighbors,
                    }
                }
                Err(resp) => resp,
            };
            if write_response(&writer, &response).is_err() {
                let w = writer.lock().expect("writer lock");
                let _ = w.shutdown(std::net::Shutdown::Both);
            }
        })
    };

    let gather = RouterGather::new(
        k,
        metric,
        req.point,
        req.weights,
        shared.downstreams.len(),
        shared.cfg.shard_timeout,
        shared.cfg.policy,
        req_trace,
        reply,
    );
    shared
        .gathers
        .lock()
        .expect("gathers lock")
        .push(Arc::clone(&gather));
    for ds in &shared.downstreams {
        if ds.health.admits_scatter() {
            ds.enqueue(Job {
                gather: Arc::clone(&gather),
                hedge: false,
            });
        } else {
            // Fast degrade: the ejected shard's slot fails instantly —
            // the survivors merge as soon as they answer, with the
            // shard reported in `missing_shards`, instead of every
            // request paying the full `shard_timeout` for a shard known
            // to be dead.
            ds.health.note_fast_degrade();
            gather.trace_span(ds.shard, None, SPAN_FAST_DEGRADED | SPAN_FAILED);
            gather.complete_shard(
                ds.shard,
                Err(format!("shard {} ejected from the scatter set", ds.shard)),
            );
        }
    }
    None
}

/// `RestoreModule` upstream: install the image locally (validated),
/// then fan it out to every downstream — the router and its shards
/// serve one module.
fn handle_restore_module(shared: &Arc<RouterShared>, image: &[u8]) -> Response {
    let module = match FeedbackBypass::from_bytes(image) {
        Ok(m) => m,
        Err(e) => {
            shared.metrics.record_protocol_error();
            return err(ErrorCode::BadRequest, format!("module image: {e}"));
        }
    };
    let dim = shared.store.coll().dim();
    if module.feature_dim() != dim {
        shared.metrics.record_protocol_error();
        return err(
            ErrorCode::DimMismatch,
            format!(
                "module is {}-dimensional, serving {dim}",
                module.feature_dim()
            ),
        );
    }
    shared.store.bypass().replace(module);
    let mut failed: Vec<String> = Vec::new();
    for ds in &shared.downstreams {
        let outcome = control_call(
            &ds.addr,
            &Request::RestoreModule {
                image: image.to_vec(),
            },
            shared.cfg.connect_timeout,
            shared.cfg.shard_timeout,
            shared.cfg.max_frame_len,
        );
        match outcome {
            Ok(Response::ModuleRestored) => {}
            Ok(Response::Error { code, message }) => {
                failed.push(format!("shard {}: [{code}] {message}", ds.shard));
            }
            Ok(other) => failed.push(format!("shard {}: unexpected reply {other:?}", ds.shard)),
            Err(e) => failed.push(format!("shard {}: {e}", ds.shard)),
        }
    }
    if failed.is_empty() {
        Response::ModuleRestored
    } else {
        err(
            ErrorCode::ShardUnavailable,
            format!("module replication incomplete: {}", failed.join("; ")),
        )
    }
}
