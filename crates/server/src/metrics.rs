//! Serving metrics: cheap atomic counters on the hot path, lock-free
//! log-linear histograms ([`fbp_obs::LogHistogram`]) for every latency
//! distribution, snapshots on demand.
//!
//! Sharded accounting: a client request is counted **once**
//! ([`Metrics::record_request`], at admission), while passes are
//! counted **per shard pass** ([`Metrics::record_pass`]) — every
//! request rides exactly `shards` passes, so the mean batch fill is
//! `requests × shards / passes`, the per-shard-pass fill the batching
//! policy actually controls. Queue waits are sampled per (request,
//! shard pass) pair: the delay from admission to that shard's dispatch.
//!
//! The histograms replaced bounded mutex-guarded sample rings. The
//! trade: quantiles now cover *all* samples (no sliding window) with a
//! documented relative error ≤ [`fbp_obs::RELATIVE_ERROR_BOUND`]
//! (< 0.8%), and recording is a handful of relaxed `fetch_add`s — no
//! lock on the dispatch path, and [`DownstreamStats::p99`] (read by the
//! router's hedge sweeper every millisecond, per live gather, per
//! downstream) no longer clones and sorts a 1024-entry ring under a
//! lock per read.

use crate::protocol::StatsSnapshot;
use fbp_obs::LogHistogram;
use feedbackbypass::ScanStatsSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared metrics sink.
pub(crate) struct Metrics {
    /// Shard count the server was configured with (for fill math).
    shards: u64,
    /// Client k-NN requests admitted to the scatter stage.
    requests: AtomicU64,
    /// Per-shard scan passes issued (each request rides `shards` of
    /// them).
    passes: AtomicU64,
    /// Protocol errors answered / connections dropped for framing.
    protocol_errors: AtomicU64,
    /// Queue-wait distribution in nanoseconds (admission → dispatch).
    waits: LogHistogram,
    /// Scan-path work counters, flushed by every shard pass (the shard
    /// dispatchers attach this sink to their `ShardedScan`; a router
    /// never scans, so its sink — and the six `scan_*` wire fields —
    /// stay zero there).
    scan: ScanStatsSink,
}

impl Metrics {
    pub(crate) fn new(shards: u64) -> Self {
        Metrics {
            shards: shards.max(1),
            requests: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            waits: LogHistogram::new(),
            scan: ScanStatsSink::new(),
        }
    }

    /// The scan-path counter sink the shard dispatchers flush into.
    pub(crate) fn scan_stats(&self) -> &ScanStatsSink {
        &self.scan
    }

    /// Count one admitted client request (once, regardless of shards).
    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one per-shard pass that served `waits.len()` requests,
    /// with each request's admission→dispatch delay on this shard.
    pub(crate) fn record_pass(&self, waits: &[Duration]) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        for w in waits {
            self.waits.record_duration(*w);
        }
    }

    /// Count one protocol error (answered or connection-fatal).
    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot everything; `sessions_open` comes from the registry.
    pub(crate) fn snapshot(&self, sessions_open: u64) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let passes = self.passes.load(Ordering::Relaxed);
        let scan = self.scan.snapshot();
        StatsSnapshot {
            requests,
            passes,
            shards: self.shards,
            mean_batch_fill: if passes > 0 {
                (requests * self.shards) as f64 / passes as f64
            } else {
                0.0
            },
            queue_wait_p50_us: self.waits.quantile_us(0.50),
            queue_wait_p99_us: self.waits.quantile_us(0.99),
            sessions_open,
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            scan_rows_visited: scan.rows_visited,
            scan_blocks_abandoned: scan.blocks_abandoned,
            scan_candidates_filtered: scan.candidates_filtered,
            scan_candidates_rescored: scan.candidates_rescored,
            scan_seed_prunes: scan.seed_prunes,
            scan_partitions_pruned: scan.partitions_pruned,
            // Router-tier counters stay zero on a plain shard server;
            // the router overwrites them from its downstream pools.
            ..Default::default()
        }
    }
}

/// Robustness counters for one router downstream, shared by every
/// pooled connection worker talking to that shard server. The router's
/// stats snapshot sums these across downstreams into the six router
/// fields of [`StatsSnapshot`]; the fault tests assert them non-zero.
/// These count per-*call* outcomes only — the circuit-breaker
/// lifecycle counters (ejections, re-admissions, probe failures, fast
/// degrades) live in each downstream's
/// [`HealthTracker`](crate::health::HealthTracker) and surface as the
/// per-shard [`StatsSnapshot::health`] rows.
#[derive(Default)]
pub(crate) struct DownstreamStats {
    /// Calls abandoned because the shard deadline passed.
    pub(crate) timeouts: AtomicU64,
    /// Call attempts retried after an I/O failure mid-call.
    pub(crate) retries: AtomicU64,
    /// Connections (re-)established after a failure (the very first
    /// connect of a worker is not counted; every later one is).
    pub(crate) reconnects: AtomicU64,
    /// Hedge requests fired at this downstream while it straggled.
    pub(crate) hedges_fired: AtomicU64,
    /// Hedge requests whose answer beat the primary's.
    pub(crate) hedges_won: AtomicU64,
    /// Successful-call latency distribution (nanoseconds), the p99
    /// source for the hedge delay.
    lat: LogHistogram,
}

impl DownstreamStats {
    /// Record one successful call's request→reply latency.
    pub(crate) fn record_latency(&self, lat: Duration) {
        self.lat.record_duration(lat);
    }

    /// 99th-percentile call latency (`None` until a sample exists).
    ///
    /// A lock-free histogram walk: the hedge sweeper calls this every
    /// tick for every straggling shard of every live gather, and the
    /// previous implementation cloned and sorted the whole sample ring
    /// under the recording lock each time — contending with the pool
    /// workers recording completions. Now neither side blocks the
    /// other, at the cost of the histogram's < 0.8% relative error.
    pub(crate) fn p99(&self) -> Option<Duration> {
        self.lat.quantile(0.99).map(Duration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_obs::RELATIVE_ERROR_BOUND;

    #[test]
    fn snapshot_reports_fill_and_percentiles() {
        let m = Metrics::new(1);
        for _ in 0..4 {
            m.record_request();
        }
        m.record_pass(&[Duration::from_micros(100); 3]);
        m.record_pass(&[Duration::from_micros(900)]);
        m.record_protocol_error();
        let s = m.snapshot(2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.passes, 2);
        assert_eq!(s.shards, 1);
        assert!((s.mean_batch_fill - 2.0).abs() < 1e-12);
        // Histogram quantiles report the containing bucket's upper
        // edge: never below the exact value, above it by at most the
        // documented relative-error bound.
        assert!(s.queue_wait_p50_us >= 100.0);
        assert!(s.queue_wait_p50_us <= 100.0 * (1.0 + RELATIVE_ERROR_BOUND));
        assert!(s.queue_wait_p99_us >= 900.0);
        assert!(s.queue_wait_p99_us <= 900.0 * (1.0 + RELATIVE_ERROR_BOUND));
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.protocol_errors, 1);
    }

    #[test]
    fn sharded_fill_counts_per_shard_passes() {
        // 4 requests over 2 shards = 8 request-shard dispatches; served
        // in 4 shard passes → mean per-shard fill 2.
        let m = Metrics::new(2);
        for _ in 0..4 {
            m.record_request();
        }
        for _ in 0..4 {
            m.record_pass(&[Duration::from_micros(50); 2]);
        }
        let s = m.snapshot(0);
        assert_eq!(s.requests, 4);
        assert_eq!(s.passes, 4);
        assert_eq!(s.shards, 2);
        assert!((s.mean_batch_fill - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new(1).snapshot(0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_batch_fill, 0.0);
        assert_eq!(s.queue_wait_p50_us, 0.0);
    }

    #[test]
    fn downstream_p99_tracks_latencies_within_bound() {
        let d = DownstreamStats::default();
        assert_eq!(d.p99(), None);
        // 100 fast + 10 slow: nearest rank round(109 × 0.99) = 108
        // lands inside the slow tail, so p99 must report ≈ 5 ms.
        for _ in 0..100 {
            d.record_latency(Duration::from_micros(200));
        }
        for _ in 0..10 {
            d.record_latency(Duration::from_millis(5));
        }
        let p99 = d.p99().expect("samples recorded").as_nanos() as f64;
        let exact = Duration::from_millis(5).as_nanos() as f64;
        assert!(p99 >= exact);
        assert!(p99 <= exact * (1.0 + RELATIVE_ERROR_BOUND));
    }
}
