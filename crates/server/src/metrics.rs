//! Serving metrics: cheap atomic counters on the hot path, a bounded
//! wait-time ring for queue-delay percentiles, snapshots on demand.
//!
//! Sharded accounting: a client request is counted **once**
//! ([`Metrics::record_request`], at admission), while passes are
//! counted **per shard pass** ([`Metrics::record_pass`]) — every
//! request rides exactly `shards` passes, so the mean batch fill is
//! `requests × shards / passes`, the per-shard-pass fill the batching
//! policy actually controls. Queue waits are sampled per (request,
//! shard pass) pair: the delay from admission to that shard's dispatch.

use crate::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Queue-wait samples retained for percentile estimation. A ring this
/// size covers the last ~16k dispatches — recent enough to reflect the
/// current load, small enough that a snapshot sort is trivial.
const WAIT_RING: usize = 16 * 1024;

/// Nearest-rank percentile of ascending-sorted nanosecond samples, in
/// microseconds (0 when empty). One definition shared by the server's
/// queue-wait stats and the load generator's latency stats, so the two
/// sides of a report always mean the same thing by "p50"/"p99".
pub(crate) fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Shared metrics sink.
pub(crate) struct Metrics {
    /// Shard count the server was configured with (for fill math).
    shards: u64,
    /// Client k-NN requests admitted to the scatter stage.
    requests: AtomicU64,
    /// Per-shard scan passes issued (each request rides `shards` of
    /// them).
    passes: AtomicU64,
    /// Protocol errors answered / connections dropped for framing.
    protocol_errors: AtomicU64,
    /// Ring of recent queue waits in nanoseconds.
    waits: Mutex<WaitRing>,
}

struct WaitRing {
    buf: Vec<u64>,
    next: usize,
}

impl Metrics {
    pub(crate) fn new(shards: u64) -> Self {
        Metrics {
            shards: shards.max(1),
            requests: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            waits: Mutex::new(WaitRing {
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Count one admitted client request (once, regardless of shards).
    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one per-shard pass that served `waits.len()` requests,
    /// with each request's admission→dispatch delay on this shard.
    pub(crate) fn record_pass(&self, waits: &[Duration]) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.waits.lock().expect("metrics lock");
        for w in waits {
            let ns = w.as_nanos().min(u64::MAX as u128) as u64;
            if ring.buf.len() < WAIT_RING {
                ring.buf.push(ns);
            } else {
                let slot = ring.next;
                ring.buf[slot] = ns;
            }
            ring.next = (ring.next + 1) % WAIT_RING;
        }
    }

    /// Count one protocol error (answered or connection-fatal).
    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot everything; `sessions_open` comes from the registry.
    pub(crate) fn snapshot(&self, sessions_open: u64) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let passes = self.passes.load(Ordering::Relaxed);
        let mut waits = self.waits.lock().expect("metrics lock").buf.clone();
        waits.sort_unstable();
        StatsSnapshot {
            requests,
            passes,
            shards: self.shards,
            mean_batch_fill: if passes > 0 {
                (requests * self.shards) as f64 / passes as f64
            } else {
                0.0
            },
            queue_wait_p50_us: percentile_us(&waits, 0.50),
            queue_wait_p99_us: percentile_us(&waits, 0.99),
            sessions_open,
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            // Router-tier counters stay zero on a plain shard server;
            // the router overwrites them from its downstream pools.
            ..Default::default()
        }
    }
}

/// Robustness counters for one router downstream, shared by every
/// pooled connection worker talking to that shard server. The router's
/// stats snapshot sums these across downstreams into the six router
/// fields of [`StatsSnapshot`]; the fault tests assert them non-zero.
/// These count per-*call* outcomes only — the circuit-breaker
/// lifecycle counters (ejections, re-admissions, probe failures, fast
/// degrades) live in each downstream's
/// [`HealthTracker`](crate::health::HealthTracker) and surface as the
/// per-shard [`StatsSnapshot::health`] rows.
#[derive(Default)]
pub(crate) struct DownstreamStats {
    /// Calls abandoned because the shard deadline passed.
    pub(crate) timeouts: AtomicU64,
    /// Call attempts retried after an I/O failure mid-call.
    pub(crate) retries: AtomicU64,
    /// Connections (re-)established after a failure (the very first
    /// connect of a worker is not counted; every later one is).
    pub(crate) reconnects: AtomicU64,
    /// Hedge requests fired at this downstream while it straggled.
    pub(crate) hedges_fired: AtomicU64,
    /// Hedge requests whose answer beat the primary's.
    pub(crate) hedges_won: AtomicU64,
    /// Ring of recent successful-call latencies (nanoseconds), the
    /// p99 source for the hedge delay.
    lat: Mutex<LatRing>,
}

#[derive(Default)]
struct LatRing {
    buf: Vec<u64>,
    next: usize,
}

/// Latency samples kept per downstream — enough for a stable p99 at
/// serving rates, cheap to sort on each hedge-delay refresh.
const LAT_RING: usize = 1024;

impl DownstreamStats {
    /// Record one successful call's request→reply latency.
    pub(crate) fn record_latency(&self, lat: Duration) {
        let ns = lat.as_nanos().min(u64::MAX as u128) as u64;
        let mut ring = self.lat.lock().expect("latency lock");
        if ring.buf.len() < LAT_RING {
            ring.buf.push(ns);
        } else {
            let slot = ring.next;
            ring.buf[slot] = ns;
        }
        ring.next = (ring.next + 1) % LAT_RING;
    }

    /// 99th-percentile call latency over the ring (`None` until a
    /// sample exists).
    pub(crate) fn p99(&self) -> Option<Duration> {
        let mut samples = self.lat.lock().expect("latency lock").buf.clone();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let idx = ((samples.len() - 1) as f64 * 0.99).round() as usize;
        Some(Duration::from_nanos(samples[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_fill_and_percentiles() {
        let m = Metrics::new(1);
        for _ in 0..4 {
            m.record_request();
        }
        m.record_pass(&[Duration::from_micros(100); 3]);
        m.record_pass(&[Duration::from_micros(900)]);
        m.record_protocol_error();
        let s = m.snapshot(2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.passes, 2);
        assert_eq!(s.shards, 1);
        assert!((s.mean_batch_fill - 2.0).abs() < 1e-12);
        assert!((s.queue_wait_p50_us - 100.0).abs() < 1.0);
        assert!((s.queue_wait_p99_us - 900.0).abs() < 1.0);
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.protocol_errors, 1);
    }

    #[test]
    fn sharded_fill_counts_per_shard_passes() {
        // 4 requests over 2 shards = 8 request-shard dispatches; served
        // in 4 shard passes → mean per-shard fill 2.
        let m = Metrics::new(2);
        for _ in 0..4 {
            m.record_request();
        }
        for _ in 0..4 {
            m.record_pass(&[Duration::from_micros(50); 2]);
        }
        let s = m.snapshot(0);
        assert_eq!(s.requests, 4);
        assert_eq!(s.passes, 4);
        assert_eq!(s.shards, 2);
        assert!((s.mean_batch_fill - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new(1).snapshot(0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_batch_fill, 0.0);
        assert_eq!(s.queue_wait_p50_us, 0.0);
    }
}
