//! Serving metrics: cheap atomic counters on the hot path, a bounded
//! wait-time ring for queue-delay percentiles, snapshots on demand.

use crate::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Queue-wait samples retained for percentile estimation. A ring this
/// size covers the last ~16k requests — recent enough to reflect the
/// current load, small enough that a snapshot sort is trivial.
const WAIT_RING: usize = 16 * 1024;

/// Nearest-rank percentile of ascending-sorted nanosecond samples, in
/// microseconds (0 when empty). One definition shared by the server's
/// queue-wait stats and the load generator's latency stats, so the two
/// sides of a report always mean the same thing by "p50"/"p99".
pub(crate) fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Shared metrics sink.
pub(crate) struct Metrics {
    /// Requests dispatched through the batcher.
    requests: AtomicU64,
    /// Coalesced passes issued.
    passes: AtomicU64,
    /// Protocol errors answered / connections dropped for framing.
    protocol_errors: AtomicU64,
    /// Ring of recent queue waits in nanoseconds.
    waits: Mutex<WaitRing>,
}

struct WaitRing {
    buf: Vec<u64>,
    next: usize,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            waits: Mutex::new(WaitRing {
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Record one coalesced pass that served `waits.len()` requests,
    /// with each request's enqueue→dispatch delay.
    pub(crate) fn record_pass(&self, waits: &[Duration]) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        self.requests
            .fetch_add(waits.len() as u64, Ordering::Relaxed);
        let mut ring = self.waits.lock().expect("metrics lock");
        for w in waits {
            let ns = w.as_nanos().min(u64::MAX as u128) as u64;
            if ring.buf.len() < WAIT_RING {
                ring.buf.push(ns);
            } else {
                let slot = ring.next;
                ring.buf[slot] = ns;
            }
            ring.next = (ring.next + 1) % WAIT_RING;
        }
    }

    /// Count one protocol error (answered or connection-fatal).
    pub(crate) fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot everything; `sessions_open` comes from the registry.
    pub(crate) fn snapshot(&self, sessions_open: u64) -> StatsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let passes = self.passes.load(Ordering::Relaxed);
        let mut waits = self.waits.lock().expect("metrics lock").buf.clone();
        waits.sort_unstable();
        StatsSnapshot {
            requests,
            passes,
            mean_batch_fill: if passes > 0 {
                requests as f64 / passes as f64
            } else {
                0.0
            },
            queue_wait_p50_us: percentile_us(&waits, 0.50),
            queue_wait_p99_us: percentile_us(&waits, 0.99),
            sessions_open,
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_fill_and_percentiles() {
        let m = Metrics::new();
        m.record_pass(&[Duration::from_micros(100); 3]);
        m.record_pass(&[Duration::from_micros(900)]);
        m.record_protocol_error();
        let s = m.snapshot(2);
        assert_eq!(s.requests, 4);
        assert_eq!(s.passes, 2);
        assert!((s.mean_batch_fill - 2.0).abs() < 1e-12);
        assert!((s.queue_wait_p50_us - 100.0).abs() < 1.0);
        assert!((s.queue_wait_p99_us - 900.0).abs() < 1.0);
        assert_eq!(s.sessions_open, 2);
        assert_eq!(s.protocol_errors, 1);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot(0);
        assert_eq!(s.requests, 0);
        assert_eq!(s.mean_batch_fill, 0.0);
        assert_eq!(s.queue_wait_p50_us, 0.0);
    }
}
