//! Bit-identical wire serving: results served over loopback TCP — under
//! any batch mix the micro-batcher happens to form — must equal the
//! in-process answers exactly, distances included.
//!
//! Two pins:
//!
//! * concurrent sessions hammering `Knn` (no feedback) must each get
//!   exactly what a per-query [`LinearScan`] answers, regardless of how
//!   their requests coalesced;
//! * a full interactive feedback loop over the wire must reproduce the
//!   in-process concurrent-sessions scenario (`fbp_eval::sessions`)
//!   record-for-record: same cycles, same convergence, same final
//!   precision — the server runs the identical `FeedbackStepper`
//!   transition against the identical shared module state.

use fbp_eval::sessions::{run_sessions, ServingMode, SessionsOptions};
use fbp_eval::stream::query_order;
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_server::{serve, Client, ServerConfig};
use fbp_vecdb::{
    Collection, CollectionBuilder, KnnEngine, LinearScan, ScanMode, WeightedEuclidean,
};
use feedbackbypass::{BypassConfig, FeedbackBypass, FeedbackConfig, SharedBypass};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn clustered_collection(n: usize, dim: usize) -> Collection {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..n {
        let v: Vec<f64> = (0..dim).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn shared_module(dim: usize) -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_histograms(dim, BypassConfig::default()).unwrap())
}

/// Concurrent burst traffic: every reply must equal the per-query
/// LinearScan answer bit-for-bit, whatever batches formed — and with
/// everyone bursting through a wide `max_wait`, batches MUST form.
#[test]
fn concurrent_batch_mix_matches_linear_scan() {
    const DIM: usize = 16;
    const THREADS: usize = 8;
    const QUERIES_PER_THREAD: usize = 12;
    let coll = Arc::new(clustered_collection(1500, DIM));
    let cfg = ServerConfig {
        max_batch: THREADS,
        max_wait: Duration::from_millis(500),
        ..Default::default()
    };
    let handle = serve("127.0.0.1:0", Arc::clone(&coll), shared_module(DIM), cfg).unwrap();
    let addr = handle.local_addr();

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let coll = Arc::clone(&coll);
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (session, dim) = client.open_session().unwrap();
                assert_eq!(dim as usize, DIM);
                let single = LinearScan::with_mode(&coll, ScanMode::Batched);
                // Everyone fires the first round together so the batcher
                // has real mixes to form; later rounds drift naturally.
                barrier.wait();
                for i in 0..QUERIES_PER_THREAD {
                    let q: Vec<f64> = (0..DIM)
                        .map(|d| (((t * 37 + i * 13 + d * 7) as f64) * 0.29).sin().abs())
                        .collect();
                    let k = [1u32, 7, 50][i % 3];
                    let reply = client.knn(session, k, &q).unwrap();
                    // Out-of-domain queries search under the uniform
                    // metric — the documented fallback.
                    let w = WeightedEuclidean::new(vec![1.0; DIM]).unwrap();
                    let expect = single.knn(&q, k as usize, &w);
                    assert_eq!(
                        reply.neighbors, expect,
                        "thread {t} query {i}: wire answer diverged from LinearScan"
                    );
                }
                client.close_session(session).unwrap();
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(
        stats.requests,
        (THREADS * QUERIES_PER_THREAD) as u64,
        "every request must pass through the batcher"
    );
    assert!(
        stats.mean_batch_fill > 1.0,
        "the synchronized burst must have coalesced (fill {})",
        stats.mean_batch_fill
    );
    assert_eq!(stats.protocol_errors, 0);
    handle.shutdown();
}

/// The full interactive loop over the wire reproduces the in-process
/// sessions scenario record-for-record.
#[test]
fn wire_feedback_loop_matches_in_process_sessions() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let k = 10usize;
    let queries_per_session = 8usize;
    let seed = 0xFEED;

    // In-process reference: one session, coalesced serving (with one
    // session the per-round batches are singletons, so this is also the
    // LinearScan answer — the two in-process modes are proven equal).
    let reference = run_sessions(
        &ds,
        &SessionsOptions {
            n_sessions: 1,
            queries_per_session,
            k,
            serving: ServingMode::Coalesced(ScanMode::Batched),
            seed,
            ..Default::default()
        },
    );

    // Wire run: fresh identical module, same collection, same queries in
    // the same order, judged by the same category oracle client-side.
    let coll = Arc::new(ds.collection.clone());
    let cfg = ServerConfig {
        feedback: FeedbackConfig {
            k,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(coll.dim()),
        cfg,
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();

    let order = query_order(&ds, seed);
    let mut records: Vec<(usize, bool, f64)> = Vec::new();
    for qidx in order.iter().take(queries_per_session) {
        let q = coll.vector(*qidx).to_vec();
        let category = coll.label(*qidx);
        let (cycles, converged, final_precision) = loop {
            let reply = client.knn(session, k as u32, &q).unwrap();
            let precision = reply
                .neighbors
                .iter()
                .filter(|n| coll.label(n.index as usize) == category)
                .count() as f64
                / k as f64;
            if reply.done {
                break (reply.cycles as usize, reply.converged, precision);
            }
            let relevant: Vec<u32> = reply
                .neighbors
                .iter()
                .map(|n| n.index)
                .filter(|&id| coll.label(id as usize) == category)
                .collect();
            let ack = client.feedback(session, &relevant).unwrap();
            if ack.done {
                break (ack.cycles as usize, ack.converged, precision);
            }
        };
        records.push((cycles, converged, final_precision));
    }

    let expected: Vec<(usize, bool, f64)> = reference.per_session[0]
        .iter()
        .map(|r| (r.cycles, r.converged, r.final_precision))
        .collect();
    assert_eq!(
        records, expected,
        "wire loop diverged from the in-process serving scenario"
    );
    assert_eq!(reference.searches, client.stats().unwrap().requests);
    handle.shutdown();
}

/// Sharded serving (per-shard micro-batchers + gather) answers
/// bit-identically to the flat per-query LinearScan, under concurrent
/// batch mixes, for shard counts spanning the degenerate edges (more
/// shards than queue depth, shards larger than k, empty tail shards).
#[test]
fn sharded_serving_matches_linear_scan() {
    const DIM: usize = 16;
    const THREADS: usize = 6;
    let coll = Arc::new(clustered_collection(700, DIM));
    for shards in [2usize, 3, 16] {
        let cfg = ServerConfig {
            shards,
            max_batch: THREADS,
            max_wait: Duration::from_millis(100),
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", Arc::clone(&coll), shared_module(DIM), cfg).unwrap();
        let addr = handle.local_addr();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let coll = Arc::clone(&coll);
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let (session, _) = client.open_session().unwrap();
                    let single = LinearScan::with_mode(&coll, ScanMode::Batched);
                    barrier.wait();
                    for i in 0..8 {
                        let q: Vec<f64> = (0..DIM)
                            .map(|d| (((t * 41 + i * 17 + d * 5) as f64) * 0.31).sin().abs())
                            .collect();
                        let k = [1u32, 7, 50][i % 3];
                        let reply = client.knn(session, k, &q).unwrap();
                        let w = WeightedEuclidean::new(vec![1.0; DIM]).unwrap();
                        assert_eq!(
                            reply.neighbors,
                            single.knn(&q, k as usize, &w),
                            "shards={shards} thread {t} query {i}: sharded wire answer diverged"
                        );
                    }
                    client.close_session(session).unwrap();
                });
            }
        });
        // The stats surface reports the shard topology, and every
        // request rode exactly one pass per shard.
        let stats = handle.stats();
        assert_eq!(stats.shards, shards as u64);
        assert_eq!(stats.requests, (THREADS * 8) as u64);
        assert!(
            stats.passes >= shards as u64,
            "shards={shards}: every shard must have dispatched at least once"
        );
        assert_eq!(stats.protocol_errors, 0);
        handle.shutdown();
    }
}

/// k edge cases ride the same coalesced path.
#[test]
fn k_edges_over_the_wire() {
    const DIM: usize = 8;
    let coll = Arc::new(clustered_collection(60, DIM));
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(DIM),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();
    let q = vec![0.5; DIM];
    // k = 0 → empty; k far beyond the collection → clamped to len.
    assert!(client.knn(session, 0, &q).unwrap().neighbors.is_empty());
    let all = client.knn(session, u32::MAX, &q).unwrap();
    assert_eq!(all.neighbors.len(), 60);
    handle.shutdown();
}
