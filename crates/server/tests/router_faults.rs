//! The router tier's two headline claims, pinned over real loopback
//! sockets:
//!
//! * **healthy path** — a router scattering to three remote shard
//!   servers answers bit-identically to one in-process server running
//!   `shards = 3`, through full interactive feedback loops;
//! * **partial failure** — under injected downstream faults every
//!   request resolves to one of the documented outcomes (a healed
//!   retry, a hedged answer, a degraded merge equal to the
//!   surviving-shard oracle, or a typed `ShardUnavailable` error),
//!   always within a bounded time, with the robustness counters
//!   recording what happened.

use fbp_server::{
    route, serve, Client, ClientError, ErrorCode, FailurePolicy, FaultMode, FaultPlan, FaultRule,
    HealthConfig, HealthState, HedgeConfig, RouterConfig, RouterHandle, ServerConfig, ServerHandle,
};
use fbp_vecdb::{
    Collection, CollectionBuilder, KnnEngine, LinearScan, Neighbor, ScanMode, WeightedEuclidean,
};
use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 6;
const N: usize = 600;
const SHARDS: usize = 3;

fn collection() -> Collection {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..N {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn shared_module() -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap())
}

/// Row range shard `i` serves — the same split formula
/// `ShardedCollection::split` uses, so the router-fronted deployment
/// and the in-process `shards = SHARDS` server partition identically.
fn shard_range(len: usize, i: usize) -> (usize, usize) {
    (i * len / SHARDS, (i + 1) * len / SHARDS)
}

/// Start one shard server per slice, each with its global `row_offset`.
fn start_shards(coll: &Arc<Collection>) -> (Vec<ServerHandle>, Vec<SocketAddr>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..SHARDS {
        let (start, end) = shard_range(coll.len(), i);
        let slice = Arc::new(coll.slice_rows(start, end));
        let cfg = ServerConfig {
            row_offset: start,
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", slice, shared_module(), cfg).unwrap();
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    (handles, addrs)
}

fn start_router(
    addrs: &[SocketAddr],
    coll: &Arc<Collection>,
    bypass: SharedBypass,
    policy: FailurePolicy,
    shard_timeout: Duration,
    faults: Option<FaultPlan>,
) -> RouterHandle {
    let cfg = RouterConfig {
        shard_timeout,
        policy,
        hedge: Some(HedgeConfig::default()),
        faults: faults.map(Arc::new),
        ..Default::default()
    };
    route("127.0.0.1:0", addrs, Arc::clone(coll), bypass, cfg).unwrap()
}

/// Poll `cond` against the router's stats until it holds or `budget`
/// runs out; returns whether it held.
fn wait_for(
    router: &RouterHandle,
    budget: Duration,
    cond: impl Fn(&fbp_server::StatsSnapshot) -> bool,
) -> bool {
    let deadline = Instant::now() + budget;
    loop {
        if cond(&router.stats()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn query(i: usize) -> Vec<f64> {
    (0..DIM)
        .map(|d| (((i * 31 + d * 7) as f64) * 0.37).sin().abs())
        .collect()
}

/// A normalized (sums-to-one) query — the shape a histogram-domain
/// module accepts as an insert anchor.
fn hist(i: usize) -> Vec<f64> {
    let mut v = query(i);
    let sum: f64 = v.iter().sum();
    for x in &mut v {
        *x /= sum;
    }
    v
}

/// Exact k-NN over the union of the surviving shards' rows: per-slice
/// linear scans with globally-offset indices, merged ascending
/// `(dist, index)` — the answer a degraded gather must equal.
fn surviving_oracle(coll: &Collection, surviving: &[usize], q: &[f64], k: usize) -> Vec<Neighbor> {
    let metric = WeightedEuclidean::new(vec![1.0; DIM]).unwrap();
    let mut merged: Vec<Neighbor> = Vec::new();
    for &s in surviving {
        let (start, end) = shard_range(coll.len(), s);
        let slice = coll.slice_rows(start, end);
        let scan = LinearScan::with_mode(&slice, ScanMode::Batched);
        for n in scan.knn(q, k, &metric) {
            merged.push(Neighbor {
                index: n.index + start as u32,
                dist: n.dist,
            });
        }
    }
    merged.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .unwrap()
            .then(a.index.cmp(&b.index))
    });
    merged.truncate(k);
    merged
}

fn assert_neighbors_identical(got: &[Neighbor], want: &[Neighbor], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: neighbor count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.index, w.index, "{ctx}: index");
        assert_eq!(
            g.dist.to_bits(),
            w.dist.to_bits(),
            "{ctx}: distance bits for row {}",
            g.index
        );
    }
}

/// Healthy-path pin: a router over three remote shard servers is
/// bit-identical to one in-process server with `shards = 3`, through
/// fresh queries and full feedback loops (same flags, cycles,
/// neighbors, and feedback acks round for round).
#[test]
fn healthy_router_matches_in_process_sharded_serving() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let router = start_router(
        &addrs,
        &coll,
        shared_module(),
        FailurePolicy::Strict,
        Duration::from_secs(2),
        None,
    );
    let flat = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig {
            shards: SHARDS,
            ..Default::default()
        },
    )
    .unwrap();

    let mut via_router = Client::connect(router.local_addr()).unwrap();
    let mut via_flat = Client::connect(flat.local_addr()).unwrap();
    let (rs, rdim) = via_router.open_session().unwrap();
    let (fs, fdim) = via_flat.open_session().unwrap();
    assert_eq!(rdim, fdim);

    for i in 0..6 {
        let q = query(i);
        let k = 10u32;
        // Interactive loop: search, judge, repeat until the session
        // reports the query done — both deployments must walk the exact
        // same trajectory.
        for round in 0..8 {
            let a = via_router.knn(rs, k, &q).unwrap();
            let b = via_flat.knn(fs, k, &q).unwrap();
            assert_neighbors_identical(&a.neighbors, &b.neighbors, &format!("q{i} round {round}"));
            assert_eq!(a.done, b.done, "q{i} round {round}: done");
            assert_eq!(a.converged, b.converged, "q{i} round {round}: converged");
            assert_eq!(a.cycles, b.cycles, "q{i} round {round}: cycles");
            assert!(!a.degraded, "healthy router must never degrade");
            assert!(a.missing_shards.is_empty());
            if a.done {
                break;
            }
            // Judge a deterministic subset of the current results.
            let relevant: Vec<u32> = a
                .neighbors
                .iter()
                .filter(|n| n.index % 3 == 0)
                .map(|n| n.index)
                .collect();
            let fa = via_router.feedback(rs, &relevant).unwrap();
            let fb = via_flat.feedback(fs, &relevant).unwrap();
            assert_eq!(fa.done, fb.done, "q{i} round {round}: feedback done");
            assert_eq!(fa.converged, fb.converged);
            assert_eq!(fa.cycles, fb.cycles);
            if fa.done {
                break;
            }
        }
    }
    let stats = router.stats();
    assert_eq!(stats.shards, SHARDS as u64);
    assert!(stats.requests > 0);
    assert_eq!(stats.degraded_replies, 0);
    router.shutdown();
    flat.shutdown();
}

/// A black-holed shard under `Degraded { min_shards: 1 }`: the reply is
/// flagged degraded, names the missing shard, equals the
/// surviving-shard oracle exactly, arrives within a small multiple of
/// the shard timeout, and the timeout / degraded counters record it.
#[test]
fn degraded_reply_matches_surviving_shard_oracle() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let timeout = Duration::from_millis(200);
    let plan = FaultPlan::new(11).rule(FaultRule::always(1, FaultMode::BlackHole));
    let router = start_router(
        &addrs,
        &coll,
        shared_module(),
        FailurePolicy::Degraded { min_shards: 1 },
        timeout,
        Some(plan),
    );

    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();
    let q = query(3);
    let started = Instant::now();
    let reply = client.knn(session, 10, &q).unwrap();
    let elapsed = started.elapsed();
    assert!(reply.degraded, "shard 1 was black-holed");
    assert_eq!(reply.missing_shards, vec![1]);
    let oracle = surviving_oracle(&coll, &[0, 2], &q, 10);
    assert_neighbors_identical(&reply.neighbors, &oracle, "degraded merge");
    assert!(
        elapsed < timeout * 5,
        "degraded reply took {elapsed:?} against a {timeout:?} shard timeout"
    );

    let stats = router.stats();
    assert!(stats.downstream_timeouts >= 1, "timeouts: {stats:?}");
    assert_eq!(stats.degraded_replies, 1, "degraded replies: {stats:?}");
    router.shutdown();
}

/// The same black hole under `Strict`: a typed `ShardUnavailable`
/// error, still bounded in time — never a hang, never a silently
/// narrowed answer.
#[test]
fn strict_policy_refuses_with_typed_error() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let timeout = Duration::from_millis(200);
    let plan = FaultPlan::new(5).rule(FaultRule::always(2, FaultMode::BlackHole));
    let router = start_router(
        &addrs,
        &coll,
        shared_module(),
        FailurePolicy::Strict,
        timeout,
        Some(plan),
    );

    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();
    let started = Instant::now();
    let outcome = client.knn(session, 10, &query(0));
    let elapsed = started.elapsed();
    match outcome {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::ShardUnavailable);
            assert!(message.contains("[2]"), "error names the shard: {message}");
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert!(elapsed < timeout * 5, "strict refusal took {elapsed:?}");
    router.shutdown();
}

/// One-shot wire damage (dropped reply, truncated reply, socket cut
/// mid-request) heals by retry: the answer is full, undegraded, equal
/// to the healthy oracle, and the retry counter shows the recovery.
#[test]
fn wire_faults_heal_by_retry() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let q = query(7);
    let oracle = surviving_oracle(&coll, &[0, 1, 2], &q, 10);
    for mode in [
        FaultMode::DropReply,
        FaultMode::TruncateReply,
        FaultMode::CloseAtByte(9),
    ] {
        let plan = FaultPlan::new(3).rule(FaultRule {
            shard: Some(1),
            after_calls: 0,
            call_limit: Some(1),
            probability: 1.0,
            mode,
        });
        let router = start_router(
            &addrs,
            &coll,
            shared_module(),
            FailurePolicy::Strict,
            Duration::from_secs(2),
            Some(plan),
        );
        let mut client = Client::connect(router.local_addr()).unwrap();
        let (session, _) = client.open_session().unwrap();
        let reply = client.knn(session, 10, &q).unwrap();
        assert!(!reply.degraded, "{mode:?} must heal by retry, not degrade");
        assert_neighbors_identical(&reply.neighbors, &oracle, &format!("{mode:?}"));
        let stats = router.stats();
        assert!(
            stats.downstream_retries + stats.downstream_reconnects >= 1,
            "{mode:?} left no robustness trace: {stats:?}"
        );
        router.shutdown();
    }
}

/// A straggling shard (delayed well past the hedge window) is overtaken
/// by a hedged duplicate: the reply is full and fast, and the hedge
/// counters record a fired and a won hedge.
#[test]
fn hedge_overtakes_straggler() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let delay = Duration::from_millis(400);
    let plan = FaultPlan::new(9).rule(FaultRule {
        shard: Some(0),
        after_calls: 0,
        call_limit: Some(1),
        probability: 1.0,
        mode: FaultMode::Delay(delay),
    });
    let cfg = RouterConfig {
        shard_timeout: Duration::from_secs(2),
        policy: FailurePolicy::Strict,
        hedge: Some(HedgeConfig {
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(10),
        }),
        faults: Some(Arc::new(plan)),
        ..Default::default()
    };
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(&coll),
        shared_module(),
        cfg,
    )
    .unwrap();

    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();
    let q = query(5);
    let started = Instant::now();
    let reply = client.knn(session, 10, &q).unwrap();
    let elapsed = started.elapsed();
    assert!(!reply.degraded, "the hedge answers in full");
    let oracle = surviving_oracle(&coll, &[0, 1, 2], &q, 10);
    assert_neighbors_identical(&reply.neighbors, &oracle, "hedged reply");
    assert!(
        elapsed < delay,
        "hedge should beat the {delay:?} straggler, took {elapsed:?}"
    );
    let stats = router.stats();
    assert!(stats.hedges_fired >= 1, "hedges fired: {stats:?}");
    assert!(stats.hedges_won >= 1, "hedges won: {stats:?}");
    router.shutdown();
}

/// Module replication: learned state inserted at the router fans out to
/// every shard (`replicate_module`), and a wire `RestoreModule` at the
/// router installs + replicates in one step — afterwards router and
/// shards all serve the same module image.
#[test]
fn module_replication_reaches_every_shard() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let bypass = shared_module();
    let router = start_router(
        &addrs,
        &coll,
        bypass.clone(),
        FailurePolicy::Strict,
        Duration::from_secs(2),
        None,
    );

    // Teach the router's module something, then push it down.
    let anchor = hist(1);
    let point = hist(2);
    let weights = vec![1.0; DIM];
    bypass.insert(&anchor, &point, &weights).unwrap();
    router.replicate_module().unwrap();

    let mut via_router = Client::connect(router.local_addr()).unwrap();
    let router_image = via_router.snapshot_module().unwrap();
    for addr in &addrs {
        let mut shard_client = Client::connect(*addr).unwrap();
        assert_eq!(
            shard_client.snapshot_module().unwrap(),
            router_image,
            "shard at {addr} diverged from the router module"
        );
    }

    // Wire path: restoring a fresh module at the router replicates it
    // in the same request.
    let fresh = shared_module();
    fresh.insert(&hist(3), &hist(4), &weights).unwrap();
    let fresh_image = fresh.to_bytes();
    via_router.restore_module(&fresh_image).unwrap();
    let installed = via_router.snapshot_module().unwrap();
    for addr in &addrs {
        let mut shard_client = Client::connect(*addr).unwrap();
        assert_eq!(
            shard_client.snapshot_module().unwrap(),
            installed,
            "wire restore did not replicate to {addr}"
        );
    }
    router.shutdown();
}

/// The acceptance pin for circuit-breaking ejection: with one shard
/// black-holed under `Degraded { min_shards: 1 }`, the first couple of
/// requests pay the shard timeout, the breaker trips, and steady-state
/// latency drops back within 2× the healthy-cluster worst case — every
/// post-ejection reply still degraded, naming the shard, and equal to
/// the surviving-shard oracle.
#[test]
fn ejection_restores_near_healthy_latency_under_a_black_holed_shard() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let timeout = Duration::from_millis(200);
    const WARMUP: u64 = 8;
    let plan = FaultPlan::new(17).rule(FaultRule {
        shard: Some(1),
        after_calls: WARMUP,
        call_limit: None,
        probability: 1.0,
        mode: FaultMode::BlackHole,
    });
    let cfg = RouterConfig {
        shard_timeout: timeout,
        policy: FailurePolicy::Degraded { min_shards: 1 },
        // No hedging: hedge legs would consume fault-plan call indices
        // and blur the scripted healthy/black-holed boundary.
        hedge: None,
        faults: Some(Arc::new(plan)),
        health: HealthConfig {
            consecutive_failures: 2,
            // Keep the shard out for the whole test: a probe would
            // succeed (the host is alive, only its scatter calls are
            // black-holed) and re-admit it into the next black hole.
            probe_interval: Duration::from_secs(60),
            ..Default::default()
        },
        ..Default::default()
    };
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(&coll),
        shared_module(),
        cfg,
    )
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();

    // Phase 1 — healthy cluster: measure the worst healthy latency.
    let mut healthy_max = Duration::ZERO;
    for i in 0..WARMUP as usize {
        let started = Instant::now();
        let reply = client.knn(session, 10, &query(i)).unwrap();
        healthy_max = healthy_max.max(started.elapsed());
        assert!(!reply.degraded, "warm-up request {i} must be healthy");
    }

    // Phase 2 — the black hole starts: exactly two requests pay the
    // shard timeout before the consecutive-failure trip ejects shard 1.
    for i in 0..2 {
        let reply = client.knn(session, 10, &query(100 + i)).unwrap();
        assert!(reply.degraded, "black-holed request {i} degrades");
        assert_eq!(reply.missing_shards, vec![1]);
    }
    assert!(
        wait_for(&router, Duration::from_secs(2), |s| s.ejections() >= 1),
        "the breaker never tripped: {:?}",
        router.stats()
    );

    // Phase 3 — steady state: no request pays the shard timeout again.
    // The 2× bound is the acceptance criterion; the floor keeps a
    // microsecond-fast healthy baseline from turning scheduler noise
    // into flakes.
    let budget = 2 * healthy_max.max(Duration::from_millis(25));
    for i in 0..10 {
        let q = query(200 + i);
        let started = Instant::now();
        let reply = client.knn(session, 10, &q).unwrap();
        let elapsed = started.elapsed();
        assert!(
            elapsed < budget,
            "post-ejection request {i} took {elapsed:?}, budget {budget:?} \
             (healthy max {healthy_max:?})"
        );
        assert!(reply.degraded, "ejected shard still reported");
        assert_eq!(reply.missing_shards, vec![1]);
        let oracle = surviving_oracle(&coll, &[0, 2], &q, 10);
        assert_neighbors_identical(&reply.neighbors, &oracle, &format!("fast-degrade {i}"));
    }

    let stats = router.stats();
    assert_eq!(stats.ejections(), 1, "exactly one trip: {stats:?}");
    assert!(stats.fast_degrades() >= 10, "fast degrades: {stats:?}");
    let row = stats.health.iter().find(|h| h.shard == 1).unwrap();
    assert_eq!(row.state, HealthState::Ejected);
    assert!(
        stats
            .health
            .iter()
            .filter(|h| h.shard != 1)
            .all(|h| h.state == HealthState::Healthy),
        "survivors stay healthy: {stats:?}"
    );
    router.shutdown();
}

/// `Strict` under ejection: once the breaker trips, requests are
/// refused **up front** with the typed `ShardUnavailable` error — no
/// downstream work, no shard timeout paid.
#[test]
fn strict_refuses_fast_once_ejected() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let timeout = Duration::from_millis(200);
    let plan = FaultPlan::new(29).rule(FaultRule::always(2, FaultMode::BlackHole));
    let cfg = RouterConfig {
        shard_timeout: timeout,
        policy: FailurePolicy::Strict,
        hedge: None,
        faults: Some(Arc::new(plan)),
        health: HealthConfig {
            consecutive_failures: 1,
            probe_interval: Duration::from_secs(60),
            ..Default::default()
        },
        ..Default::default()
    };
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(&coll),
        shared_module(),
        cfg,
    )
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();

    // First request pays the timeout and trips the breaker.
    match client.knn(session, 10, &query(0)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShardUnavailable),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    assert!(
        wait_for(&router, Duration::from_secs(2), |s| s.ejections() >= 1),
        "breaker never tripped: {:?}",
        router.stats()
    );

    // Every later request is refused up front, far under the timeout.
    for i in 0..5 {
        let started = Instant::now();
        let outcome = client.knn(session, 10, &query(1 + i));
        let elapsed = started.elapsed();
        match outcome {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::ShardUnavailable);
                assert!(message.contains("[2]"), "error names the shard: {message}");
                assert!(message.contains("ejected"), "fast path message: {message}");
            }
            other => panic!("expected fast ShardUnavailable, got {other:?}"),
        }
        assert!(
            elapsed < timeout / 2,
            "fast refusal {i} took {elapsed:?} against a {timeout:?} timeout"
        );
    }
    assert!(router.stats().fast_degrades() >= 5);
    router.shutdown();
}

/// The full scripted lifecycle the `Down` fault mode exists for:
/// outage → ejection → backed-off probing (refused while down) →
/// restart → probe quorum → module re-push → re-admission — ending with
/// replies bit-identical to the healthy all-shards oracle and the
/// re-admitted shard serving the router's current module snapshot.
#[test]
fn outage_ejection_restart_readmission_round_trip() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let bypass = shared_module();
    let timeout = Duration::from_millis(100);
    // Calls 0-1 healthy; calls 2-7 refused (the outage); calls 8+ serve
    // again (the "restart"). Scatter and control calls share the
    // counter, so the ejection's probes burn through the outage window
    // deterministically.
    let plan = FaultPlan::new(23).rule(FaultRule {
        shard: Some(1),
        after_calls: 2,
        call_limit: None,
        probability: 1.0,
        mode: FaultMode::Down { calls: 6 },
    });
    let cfg = RouterConfig {
        shard_timeout: timeout,
        policy: FailurePolicy::Degraded { min_shards: 1 },
        hedge: None,
        faults: Some(Arc::new(plan)),
        health: HealthConfig {
            consecutive_failures: 2,
            // Disable the rate trip so ejection happens on exactly the
            // scripted consecutive run.
            failure_rate: 1.1,
            probe_interval: Duration::from_millis(20),
            probe_backoff_max: Duration::from_millis(100),
            readmit_successes: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(&coll),
        bypass.clone(),
        cfg,
    )
    .unwrap();
    let mut client = Client::connect(router.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();

    // Healthy prelude (shard-1 calls 0 and 1).
    for i in 0..2 {
        let reply = client.knn(session, 10, &query(i)).unwrap();
        assert!(!reply.degraded, "prelude request {i}");
    }
    // Teach the router's module something while shard 1 is about to
    // die: re-admission must deliver exactly this snapshot.
    bypass.insert(&hist(1), &hist(2), &[1.0; DIM]).unwrap();

    // Outage: two refused calls trip the breaker.
    for i in 0..2 {
        let reply = client.knn(session, 10, &query(50 + i)).unwrap();
        assert!(reply.degraded, "outage request {i} degrades");
        assert_eq!(reply.missing_shards, vec![1]);
    }

    // The prober now burns through the outage window (each refused
    // probe backs off and counts), sees the restarted shard, earns the
    // quorum, re-validates tiling, re-pushes the module, and re-admits.
    assert!(
        wait_for(&router, Duration::from_secs(15), |s| {
            s.health
                .iter()
                .any(|h| h.shard == 1 && h.readmissions >= 1 && h.state == HealthState::Healthy)
        }),
        "shard 1 never re-admitted: {:?}",
        router.stats()
    );

    // Post-restart: replies are full and bit-identical to the healthy
    // all-shards oracle again.
    for i in 0..3 {
        let q = query(80 + i);
        let reply = client.knn(session, 10, &q).unwrap();
        assert!(!reply.degraded, "post-readmission request {i}");
        assert!(reply.missing_shards.is_empty());
        let oracle = surviving_oracle(&coll, &[0, 1, 2], &q, 10);
        assert_neighbors_identical(&reply.neighbors, &oracle, &format!("post-readmission {i}"));
    }

    // The re-admitted shard serves the router's current module
    // snapshot — a restarted (possibly wiped) shard must never serve
    // stale learned state.
    let router_image = Client::connect(router.local_addr())
        .unwrap()
        .snapshot_module()
        .unwrap();
    let shard_image = Client::connect(addrs[1])
        .unwrap()
        .snapshot_module()
        .unwrap();
    assert_eq!(
        shard_image, router_image,
        "re-admission must re-push the learned module"
    );

    let stats = router.stats();
    assert!(stats.ejections() >= 1, "ejections: {stats:?}");
    assert!(stats.readmissions() >= 1, "readmissions: {stats:?}");
    assert!(
        stats.probe_failures() >= 1,
        "refused probes must be counted: {stats:?}"
    );
    router.shutdown();
}

/// Satellite: the learned module now replicates on session commit — a
/// feedback loop that converges at the router reaches every shard
/// without an explicit `replicate_module` call.
#[test]
fn session_commit_replicates_module_automatically() {
    let coll = Arc::new(collection());
    let (_shards, addrs) = start_shards(&coll);
    let router = start_router(
        &addrs,
        &coll,
        shared_module(),
        FailurePolicy::Strict,
        Duration::from_secs(2),
        None,
    );
    let mut client = Client::connect(router.local_addr()).unwrap();
    let initial_image = client.snapshot_module().unwrap();
    let (session, _) = client.open_session().unwrap();

    // Drive one interactive query to completion. The anchor is a
    // normalized histogram, so the commit's module insert is in-domain.
    let q = hist(5);
    let mut committed = false;
    for _ in 0..20 {
        let reply = client.knn(session, 10, &q).unwrap();
        if reply.done {
            committed = reply.cycles > 0;
            break;
        }
        let relevant: Vec<u32> = reply
            .neighbors
            .iter()
            .filter(|n| n.index % 3 == 0)
            .map(|n| n.index)
            .collect();
        let fa = client.feedback(session, &relevant).unwrap();
        if fa.done {
            committed = fa.cycles > 0;
            break;
        }
    }
    assert!(committed, "the query must finish with feedback cycles run");

    let router_image = client.snapshot_module().unwrap();
    assert_ne!(
        router_image, initial_image,
        "the commit must have changed the router's module"
    );
    // No replicate_module call: the commit hook + prober fan the new
    // module out on their own.
    let deadline = Instant::now() + Duration::from_secs(5);
    for addr in &addrs {
        let mut shard_client = Client::connect(*addr).unwrap();
        loop {
            if shard_client.snapshot_module().unwrap() == router_image {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "shard at {addr} never received the committed module"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    router.shutdown();
}
