//! Wire-level pin of partition-pruned serving: deployments that opt
//! into [`ServerConfig::partitions`] must answer **bit-identically** to
//! their unpartitioned twins over real loopback sockets — through the
//! in-process sharded server and through a router scattering to three
//! partition-enabled shard servers — under a concurrent mix of batched
//! k-NN requests, while the `scan_partitions_pruned` counter in the
//! wire [`StatsSnapshot`](fbp_server::StatsSnapshot) proves the pruning
//! actually engaged (sub-linear scans, identical answers).

use fbp_server::{route, serve, Client, FailurePolicy, RouterConfig, ServerConfig, ServerHandle};
use fbp_vecdb::{Collection, CollectionBuilder, PartitionConfig};
use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 6;
const N: usize = 600;
const SHARDS: usize = 3;
const CLUSTERS: usize = 8;

/// Clustered rows so the partition bounds actually separate regions:
/// tight scatter around well-spread centers.
fn clustered_collection() -> Collection {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for r in 0..N {
        let c = r % CLUSTERS;
        let v: Vec<f64> = (0..DIM)
            .map(|i| ((c * 37 + i * 11) as f64 * 0.73).sin() * 5.0 + (next() - 0.5) * 0.3)
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn shared_module() -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap())
}

/// Queries pinned near cluster centers (pruning-friendly), varied per
/// caller so concurrent clients exercise a mixed batch.
fn query(i: usize) -> Vec<f64> {
    let c = i % CLUSTERS;
    (0..DIM)
        .map(|d| {
            ((c * 37 + d * 11) as f64 * 0.73).sin() * 5.0 + ((i * 13 + d) as f64 * 0.29).sin() * 0.2
        })
        .collect()
}

fn partition_cfg() -> PartitionConfig {
    PartitionConfig::with_partitions(16)
}

/// Drive `rounds` fresh-session searches against two deployments from
/// several concurrent client threads, asserting every reply pair is
/// bit-identical (indices and distance bits).
fn assert_concurrent_wire_identical(a: SocketAddr, b: SocketAddr, threads: usize, rounds: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut ca = Client::connect(a).unwrap();
                let mut cb = Client::connect(b).unwrap();
                let (sa, _) = ca.open_session().unwrap();
                let (sb, _) = cb.open_session().unwrap();
                for i in 0..rounds {
                    let q = query(t * rounds + i);
                    let k = [1u32, 5, 17][i % 3];
                    let ra = ca.knn(sa, k, &q).unwrap();
                    let rb = cb.knn(sb, k, &q).unwrap();
                    assert_eq!(
                        ra.neighbors.len(),
                        rb.neighbors.len(),
                        "t{t} i{i}: result count"
                    );
                    for (x, y) in ra.neighbors.iter().zip(rb.neighbors.iter()) {
                        assert_eq!(x.index, y.index, "t{t} i{i}: index");
                        assert_eq!(
                            x.dist.to_bits(),
                            y.dist.to_bits(),
                            "t{t} i{i}: distance bits for row {}",
                            x.index
                        );
                    }
                    assert!(!ra.degraded && !rb.degraded, "t{t} i{i}: degraded");
                }
            });
        }
    });
}

/// In-process sharded server with partitions vs its unpartitioned twin:
/// identical replies under a concurrent batch mix; the partitioned
/// deployment's wire stats must show partitions pruned, the twin's must
/// not.
#[test]
fn partitioned_server_wire_identical_and_prunes() {
    let coll = Arc::new(clustered_collection());
    let plain = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig {
            shards: SHARDS,
            ..Default::default()
        },
    )
    .unwrap();
    let pruned = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig {
            shards: SHARDS,
            partitions: Some(partition_cfg()),
            ..Default::default()
        },
    )
    .unwrap();

    assert_concurrent_wire_identical(plain.local_addr(), pruned.local_addr(), 4, 9);

    // The counter travels the wire: `SnapshotStats` must report it.
    let mut c = Client::connect(pruned.local_addr()).unwrap();
    let stats = c.stats().unwrap();
    assert!(
        stats.scan_partitions_pruned > 0,
        "partition-enabled serving must actually prune (stats: {stats:?})"
    );
    assert!(stats.scan_rows_visited > 0);
    let plain_stats = plain.stats();
    assert_eq!(
        plain_stats.scan_partitions_pruned, 0,
        "flat serving must never report pruned partitions"
    );
    assert!(
        stats.scan_rows_visited < plain.stats().scan_rows_visited,
        "pruned serving must visit fewer rows for the same request mix \
         ({} vs {})",
        stats.scan_rows_visited,
        plain_stats.scan_rows_visited
    );
    plain.shutdown();
    pruned.shutdown();
}

/// Router over three partition-enabled shard servers vs an
/// unpartitioned in-process oracle: identical replies under concurrent
/// clients, `scan_partitions_pruned > 0` on every shard server's wire
/// stats, zero on the router (it scans nothing).
#[test]
fn partitioned_router_matches_unpartitioned_oracle() {
    let coll = Arc::new(clustered_collection());

    // Three shard servers, each serving its contiguous slice with
    // partition pruning enabled (the same split formula the in-process
    // sharded server uses).
    let mut shard_handles: Vec<ServerHandle> = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..SHARDS {
        let (start, end) = (i * N / SHARDS, (i + 1) * N / SHARDS);
        let slice = Arc::new(coll.slice_rows(start, end));
        let cfg = ServerConfig {
            row_offset: start,
            partitions: Some(partition_cfg()),
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", slice, shared_module(), cfg).unwrap();
        addrs.push(handle.local_addr());
        shard_handles.push(handle);
    }
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(&coll),
        shared_module(),
        RouterConfig {
            shard_timeout: Duration::from_secs(2),
            policy: FailurePolicy::Strict,
            ..Default::default()
        },
    )
    .unwrap();
    let oracle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig {
            shards: SHARDS,
            ..Default::default()
        },
    )
    .unwrap();

    assert_concurrent_wire_identical(oracle.local_addr(), router.local_addr(), 4, 9);

    for (i, handle) in shard_handles.iter().enumerate() {
        let mut c = Client::connect(handle.local_addr()).unwrap();
        let stats = c.stats().unwrap();
        assert!(
            stats.scan_partitions_pruned > 0,
            "shard {i} must report pruned partitions over the wire (stats: {stats:?})"
        );
    }
    let rstats = router.stats();
    assert_eq!(
        rstats.scan_partitions_pruned, 0,
        "a router scans nothing and must report zero pruned partitions"
    );

    router.shutdown();
    oracle.shutdown();
    for h in shard_handles {
        h.shutdown();
    }
}
