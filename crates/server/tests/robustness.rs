//! Protocol robustness: malformed frames, bad requests, and abrupt
//! disconnects must surface as coded errors or dropped connections —
//! never panics, never a wedged batcher, never a leaked session.

use fbp_server::{serve, Client, ClientError, ErrorCode, ServerConfig};
use fbp_vecdb::{Collection, CollectionBuilder};
use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 6;

fn collection() -> Collection {
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for i in 0..200 {
        let v: Vec<f64> = (0..DIM)
            .map(|d| (((i * 13 + d * 7) as f64) * 0.37).sin().abs())
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn start_server(cfg: ServerConfig) -> fbp_server::ServerHandle {
    let bypass =
        SharedBypass::new(FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap());
    serve("127.0.0.1:0", Arc::new(collection()), bypass, cfg).unwrap()
}

/// The server must keep serving fresh connections after this check ran.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    let (session, dim) = client.open_session().unwrap();
    assert_eq!(dim as usize, DIM);
    let reply = client.knn(session, 3, &[0.5; DIM]).unwrap();
    assert_eq!(reply.neighbors.len(), 3);
    client.close_session(session).unwrap();
}

fn expect_server_error<T: std::fmt::Debug>(
    result: Result<T, ClientError>,
    code: ErrorCode,
) -> String {
    match result {
        Err(ClientError::Server { code: got, message }) => {
            assert_eq!(got, code, "wrong error code: {message}");
            message
        }
        other => panic!("expected server error {code:?}, got {other:?}"),
    }
}

#[test]
fn truncated_frame_drops_connection_not_server() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        // Claim 100 payload bytes, send 10, vanish.
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
    } // dropped here — server sees EOF mid-frame
    assert_still_serving(addr);
    // The drop was counted.
    let stats = handle.stats();
    assert!(stats.protocol_errors >= 1);
    handle.shutdown();
}

#[test]
fn oversized_frame_is_refused_then_connection_closed() {
    let handle = start_server(ServerConfig {
        max_frame_len: 1024,
        ..Default::default()
    });
    let addr = handle.local_addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
    // The server answers a BadFrame error, then hangs up (the unread
    // body makes the stream unrecoverable).
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(!reply.is_empty(), "expected an error frame before close");
    let payload = &reply[4..];
    match fbp_server::protocol::Response::decode(payload).unwrap() {
        fbp_server::protocol::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::BadFrame);
        }
        other => panic!("expected Error, got {other:?}"),
    }
    assert_still_serving(addr);
    handle.shutdown();
}

#[test]
fn unknown_opcode_is_answered_and_connection_survives() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    // A well-framed payload with a bogus opcode…
    raw.write_all(&1u32.to_le_bytes()).unwrap();
    raw.write_all(&[0x7F]).unwrap();
    let mut header = [0u8; 4];
    raw.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
    raw.read_exact(&mut payload).unwrap();
    match fbp_server::protocol::Response::decode(&payload).unwrap() {
        fbp_server::protocol::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownOpcode);
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // …and the same connection still works (length framing stayed in
    // sync).
    let open = fbp_server::protocol::Request::OpenSession.encode();
    raw.write_all(&(open.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&open).unwrap();
    raw.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
    raw.read_exact(&mut payload).unwrap();
    assert!(matches!(
        fbp_server::protocol::Response::decode(&payload).unwrap(),
        fbp_server::protocol::Response::SessionOpened { .. }
    ));
    handle.shutdown();
}

#[test]
fn wrong_dim_and_unknown_session_are_coded_errors() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let (session, _) = client.open_session().unwrap();

    expect_server_error(client.knn(session, 3, &[0.5; 2]), ErrorCode::DimMismatch);
    expect_server_error(
        client.knn(0xDEAD_BEEF, 3, &[0.5; DIM]),
        ErrorCode::UnknownSession,
    );
    expect_server_error(
        client.feedback(0xDEAD_BEEF, &[1, 2]),
        ErrorCode::UnknownSession,
    );
    // Feedback with nothing to judge is a BadRequest…
    expect_server_error(client.feedback(session, &[1, 2]), ErrorCode::BadRequest);
    // …and closing twice reports the second as unknown.
    client.close_session(session).unwrap();
    expect_server_error(
        client.knn(session, 3, &[0.5; DIM]),
        ErrorCode::UnknownSession,
    );
    // The connection survived every error above.
    let (session2, _) = client.open_session().unwrap();
    assert_eq!(
        client
            .knn(session2, 1, &[0.5; DIM])
            .unwrap()
            .neighbors
            .len(),
        1
    );
    handle.shutdown();
}

#[test]
fn sessions_are_connection_scoped() {
    // Session ids are sequential, so a foreign connection could guess
    // them — every access must be checked against the opening
    // connection, and a mismatch must look exactly like a missing id.
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let mut owner = Client::connect(addr).unwrap();
    let (session, _) = owner.open_session().unwrap();
    let reply = owner.knn(session, 3, &[0.5; DIM]).unwrap();
    assert_eq!(reply.neighbors.len(), 3);

    let mut intruder = Client::connect(addr).unwrap();
    expect_server_error(
        intruder.knn(session, 3, &[0.5; DIM]),
        ErrorCode::UnknownSession,
    );
    expect_server_error(intruder.feedback(session, &[1]), ErrorCode::UnknownSession);
    let closed = match intruder.close_session(session) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownSession,
            ..
        }) => false,
        other => panic!("expected UnknownSession on foreign close, got {other:?}"),
    };
    assert!(!closed);

    // The rightful owner is unaffected by the intrusion attempts.
    let reply = owner.knn(session, 5, &[0.4; DIM]).unwrap();
    assert_eq!(reply.neighbors.len(), 5);
    owner.close_session(session).unwrap();
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_poison_the_batcher() {
    // A long max_wait: the in-flight request is still queued when its
    // client vanishes, so the dispatcher must hit the dead reply channel.
    let handle = start_server(ServerConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(100),
        ..Default::default()
    });
    let addr = handle.local_addr();
    for _ in 0..4 {
        let mut raw = TcpStream::connect(addr).unwrap();
        let open = fbp_server::protocol::Request::OpenSession.encode();
        raw.write_all(&(open.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&open).unwrap();
        let mut header = [0u8; 4];
        raw.read_exact(&mut header).unwrap();
        let mut payload = vec![0u8; u32::from_le_bytes(header) as usize];
        raw.read_exact(&mut payload).unwrap();
        let session = match fbp_server::protocol::Response::decode(&payload).unwrap() {
            fbp_server::protocol::Response::SessionOpened { session, .. } => session,
            other => panic!("expected SessionOpened, got {other:?}"),
        };
        // Send a valid Knn, then vanish without reading the reply.
        let knn = fbp_server::protocol::Request::Knn {
            session,
            k: 5,
            query: vec![0.5; DIM],
        }
        .encode();
        raw.write_all(&(knn.len() as u32).to_le_bytes()).unwrap();
        raw.write_all(&knn).unwrap();
        drop(raw);
    }
    // The batcher must still serve new traffic promptly afterwards.
    assert_still_serving(addr);
    handle.shutdown();
}

#[test]
fn disconnect_drops_the_connections_sessions() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();
    let session = {
        let mut doomed = Client::connect(addr).unwrap();
        let (session, _) = doomed.open_session().unwrap();
        session
    }; // connection dropped, session should follow
    let mut client = Client::connect(addr).unwrap();
    // The reaping happens when the connection thread notices the close;
    // poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match client.knn(session, 1, &[0.5; DIM]) {
            Err(ClientError::Server {
                code: ErrorCode::UnknownSession,
                ..
            }) => break,
            Ok(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("expected the session to be dropped, got {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn shutdown_with_live_connections_and_queued_work_is_clean() {
    let handle = start_server(ServerConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(50),
        ..Default::default()
    });
    let addr = handle.local_addr();
    // Leave idle connections open; shutdown must not hang on them.
    let _idle1 = Client::connect(addr).unwrap();
    let _idle2 = TcpStream::connect(addr).unwrap();
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shutdown took {:?}",
        t0.elapsed()
    );
}
