//! The v2 query surface over real loopback sockets:
//!
//! * **Negotiation** — `Hello` settles on `min(client, server)`;
//!   `KnnV2` before a ≥ 2 handshake is refused with `BadRequest`; a
//!   negotiated connection still speaks every v1 request.
//! * **Bit-identity** — a multi-example `KnnV2` round, served by a flat
//!   server *and* by a router scattering to three remote shard servers,
//!   equals a flat in-process [`LinearScan`] against the spec's
//!   Rocchio-derived anchor, distances included. The trivial spec
//!   (anchor only) equals the plain v1 `Knn` on the same bytes.
//! * **Typed refusals** — each way a `KnnV2` spec can be malformed
//!   surfaces its own wire error code, not a shared catch-all.

use fbp_server::protocol::{read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME_LEN};
use fbp_server::{
    error_code_for, route, serve, Client, ClientError, ErrorCode, RouterConfig, ServerConfig,
    ServerHandle, PROTOCOL_VERSION,
};
use fbp_vecdb::{
    Collection, CollectionBuilder, KnnEngine, LinearScan, ScanMode, WeightedEuclidean,
};
use feedbackbypass::{
    BypassConfig, FeedbackBypass, QuerySpec, RequestError, RocchioWeights, SharedBypass,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const DIM: usize = 6;
const N: usize = 600;
const SHARDS: usize = 3;

fn collection() -> Collection {
    let mut state = 0x517C_C1B7_2722_0875_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..N {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn shared_module() -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap())
}

fn query(i: usize) -> Vec<f64> {
    (0..DIM)
        .map(|d| (((i * 31 + d * 7) as f64) * 0.37).sin().abs())
        .collect()
}

/// A spec with both example sets populated from collection rows —
/// exactly what an interactive session ships after judging a probe
/// round.
fn example_spec(coll: &Collection, i: usize) -> QuerySpec {
    let positives: Vec<Vec<f64>> = (0..3)
        .map(|j| coll.vector((i * 17 + j * 5) % coll.len()).to_vec())
        .collect();
    let negatives: Vec<Vec<f64>> = (0..2)
        .map(|j| coll.vector((i * 29 + j * 11 + 3) % coll.len()).to_vec())
        .collect();
    QuerySpec::builder(query(i))
        .positives(positives)
        .negatives(negatives)
        .rocchio(RocchioWeights::new(1.0, 0.75, 0.25))
        .clamp_to_zero(true)
        .build()
        .unwrap()
}

/// One shard server per contiguous slice (the `ShardedCollection::split`
/// formula) plus a router over them.
fn start_router(coll: &Arc<Collection>) -> (Vec<ServerHandle>, fbp_server::RouterHandle) {
    let mut handles = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..SHARDS {
        let (start, end) = (i * coll.len() / SHARDS, (i + 1) * coll.len() / SHARDS);
        let slice = Arc::new(coll.slice_rows(start, end));
        let cfg = ServerConfig {
            row_offset: start,
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", slice, shared_module(), cfg).unwrap();
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(coll),
        shared_module(),
        RouterConfig::default(),
    )
    .unwrap();
    (handles, router)
}

#[test]
fn hello_negotiates_v2_and_gates_knn_v2() {
    let coll = Arc::new(collection());
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let (session, _) = client.open_session().unwrap();

    // v2-only requests are refused until the connection negotiates.
    let spec = example_spec(&coll, 0);
    match client.knn_spec(session, 10, &spec) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("pre-hello KnnV2 must be refused, got {other:?}"),
    }

    assert_eq!(client.hello().unwrap(), PROTOCOL_VERSION);

    // Negotiated, the same request serves; v1 requests keep working on
    // the same connection.
    assert_eq!(
        client.knn_spec(session, 10, &spec).unwrap().neighbors.len(),
        10
    );
    assert_eq!(
        client.knn(session, 5, &query(1)).unwrap().neighbors.len(),
        5
    );
    client.close_session(session).unwrap();
    assert_eq!(handle.stats().protocol_errors, 1, "only the gated refusal");
    handle.shutdown();
}

#[test]
fn raw_hello_edges() {
    let coll = Arc::new(collection());
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let call = |stream: &mut TcpStream, req: &Request| -> Response {
        write_frame(stream, &req.encode()).unwrap();
        let payload = read_frame(stream, DEFAULT_MAX_FRAME_LEN, &mut || true)
            .unwrap()
            .expect("reply frame");
        Response::decode(&payload).unwrap()
    };

    // Version 0 is not a protocol.
    match call(&mut stream, &Request::Hello { version: 0 }) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("Hello(0) must be refused, got {other:?}"),
    }
    // An old client offering 1 gets 1 back, not an upgrade.
    match call(&mut stream, &Request::Hello { version: 1 }) {
        Response::HelloAck { version } => assert_eq!(version, 1),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    // A futuristic client is capped at what the server speaks.
    match call(&mut stream, &Request::Hello { version: 250 }) {
        Response::HelloAck { version } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected HelloAck, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn knn_v2_validation_errors_carry_distinct_codes() {
    let coll = Arc::new(collection());
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let call = |stream: &mut TcpStream, req: &Request| -> Response {
        write_frame(stream, &req.encode()).unwrap();
        let payload = read_frame(stream, DEFAULT_MAX_FRAME_LEN, &mut || true)
            .unwrap()
            .expect("reply frame");
        Response::decode(&payload).unwrap()
    };
    assert!(matches!(
        call(&mut stream, &Request::Hello { version: 2 }),
        Response::HelloAck { version: 2 }
    ));
    let session = match call(&mut stream, &Request::OpenSession) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected SessionOpened, got {other:?}"),
    };

    let base = |anchor: Vec<f64>| Request::KnnV2 {
        session,
        k: 5,
        alpha: 1.0,
        beta: 0.75,
        gamma: 0.25,
        clamp: false,
        trace: false,
        anchor,
        positives: Vec::new(),
        negatives: Vec::new(),
    };
    let expect_code = |resp: Response, want: ErrorCode| match resp {
        Response::Error { code, .. } => assert_eq!(code, want),
        other => panic!("expected {want}, got {other:?}"),
    };

    // A NaN anchor component.
    expect_code(
        call(&mut stream, &base(vec![f64::NAN; DIM])),
        ErrorCode::NonFiniteComponent,
    );
    // A non-finite Rocchio coefficient.
    let mut bad_alpha = base(query(0));
    if let Request::KnnV2 { alpha, .. } = &mut bad_alpha {
        *alpha = f64::INFINITY;
    }
    expect_code(call(&mut stream, &bad_alpha), ErrorCode::NonFiniteComponent);
    // An anchor of the wrong dimensionality for the served collection
    // (the frame encoding ties example lengths to the anchor's, so a
    // *mutually* inconsistent spec cannot even be expressed on the
    // wire — that defect is purely an in-process builder error).
    expect_code(
        call(&mut stream, &base(vec![0.5; DIM - 1])),
        ErrorCode::DimMismatch,
    );
    // α = 0 with no examples: nothing to derive an anchor from.
    let mut inert = base(query(2));
    if let Request::KnnV2 { alpha, .. } = &mut inert {
        *alpha = 0.0;
    }
    expect_code(call(&mut stream, &inert), ErrorCode::EmptyExampleSet);

    // The mapping covers the variants no KnnV2 frame can trigger (they
    // guard in-process batch paths), so the table stays total.
    assert_eq!(
        error_code_for(&RequestError::BadWeight {
            index: 0,
            value: -1.0
        }),
        ErrorCode::BadWeight
    );
    assert_eq!(
        error_code_for(&RequestError::PrecisionConflict),
        ErrorCode::PrecisionConflict
    );
    handle.shutdown();
}

/// Multi-example rounds over the wire — flat server and router alike —
/// are bit-identical to a flat in-process scan against the derived
/// anchor, and the trivial spec is bit-identical to the v1 `Knn`.
#[test]
fn spec_rounds_match_derived_anchor_scans_flat_and_routed() {
    let coll = Arc::new(collection());
    let flat_handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();
    let (shard_handles, router) = start_router(&coll);

    let single = LinearScan::with_mode(&coll, ScanMode::Batched);
    let uniform = WeightedEuclidean::new(vec![1.0; DIM]).unwrap();

    for (label, addr) in [
        ("flat", flat_handle.local_addr()),
        ("router", router.local_addr()),
    ] {
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(client.hello().unwrap(), PROTOCOL_VERSION);
        let (session, _) = client.open_session().unwrap();
        for i in 0..6 {
            let spec = example_spec(&coll, i);
            let k = [1usize, 7, 25][i % 3];
            let reply = client.knn_spec(session, k as u32, &spec).unwrap();
            // Out-of-domain derived anchors search under the uniform
            // metric — the same documented fallback the v1 path takes.
            let expect = single.knn(spec.lower().point(), k, &uniform);
            assert_eq!(
                reply.neighbors, expect,
                "{label} spec {i}: wire answer diverged from the derived-anchor scan"
            );
        }
        // The trivial spec IS the v1 query, across a fresh session each
        // so neither round is absorbed as a repeat of the other.
        let anchor = query(40);
        let trivial = QuerySpec::builder(anchor.clone()).build().unwrap();
        let via_spec = client.knn_spec(session, 10, &trivial).unwrap();
        let (v1_session, _) = client.open_session().unwrap();
        let via_v1 = client.knn(v1_session, 10, &anchor).unwrap();
        assert_eq!(
            via_spec.neighbors, via_v1.neighbors,
            "{label}: trivial spec must equal the plain v1 round"
        );
        client.close_session(session).unwrap();
        client.close_session(v1_session).unwrap();
    }

    router.shutdown();
    for h in shard_handles {
        h.shutdown();
    }
    flat_handle.shutdown();
}

/// A spec round is a real session round: judging it moves the stepper
/// exactly as judging the same derived anchor served via v1 would.
#[test]
fn spec_rounds_participate_in_the_feedback_loop() {
    let coll = Arc::new(collection());
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();

    let mut v2 = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(v2.hello().unwrap(), PROTOCOL_VERSION);
    let (s2, _) = v2.open_session().unwrap();
    let spec = example_spec(&coll, 3);
    let first = v2.knn_spec(s2, 10, &spec).unwrap();
    let relevant: Vec<u32> = first.neighbors.iter().take(3).map(|n| n.index).collect();
    let ack = v2.feedback(s2, &relevant).unwrap();

    // Same conversation via v1, shipping the pre-derived anchor.
    let mut v1 = Client::connect(handle.local_addr()).unwrap();
    let (s1, _) = v1.open_session().unwrap();
    let derived = spec.lower().into_request().point;
    let first_v1 = v1.knn(s1, 10, &derived).unwrap();
    assert_eq!(first.neighbors, first_v1.neighbors);
    let ack_v1 = v1.feedback(s1, &relevant).unwrap();
    assert_eq!(ack.done, ack_v1.done);
    assert_eq!(ack.converged, ack_v1.converged);
    assert_eq!(ack.cycles, ack_v1.cycles);

    // And the rounds after feedback still agree — the stepper state the
    // spec round seeded is the derived-anchor state.
    if !ack.done {
        let second = v2.knn_spec(s2, 10, &spec).unwrap();
        let second_v1 = v1.knn(s1, 10, &derived).unwrap();
        assert_eq!(second.neighbors, second_v1.neighbors);
    }
    handle.shutdown();
}
