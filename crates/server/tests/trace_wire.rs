//! Protocol v3 request tracing over real loopback sockets:
//!
//! * **Bit-identity** — a traced `KnnV2` answers exactly what the
//!   untraced one answers (neighbors, flags, cycles), through a flat
//!   sharded server *and* a router over three remote shard servers;
//!   the only difference is the trailer.
//! * **Self-consistency** — every report satisfies
//!   `wall = gather + merge`, every span fits inside the gather
//!   window, spans are sorted by shard, flat spans carry the batch
//!   fill while router spans carry zero.
//! * **Slow-query ring** — traced requests land in the ring (at a zero
//!   threshold), `GetTraces` drains destructively oldest-first, and
//!   the request is version-gated.
//! * **Attribution** — a hedged shard's span is flagged
//!   `HEDGE_FIRED | HEDGE_WON`; an ejected shard's span is flagged
//!   `FAST_DEGRADED | FAILED` with zero times.

use fbp_server::{
    route, serve, Client, ClientError, ErrorCode, FailurePolicy, FaultMode, FaultPlan, FaultRule,
    HealthConfig, HedgeConfig, RouterConfig, ServerConfig, ServerHandle, TraceReport, SPAN_FAILED,
    SPAN_FAST_DEGRADED, SPAN_HEDGE_FIRED, SPAN_HEDGE_WON,
};
use fbp_vecdb::{Collection, CollectionBuilder, Neighbor};
use feedbackbypass::{BypassConfig, FeedbackBypass, QuerySpec, RocchioWeights, SharedBypass};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: usize = 6;
const N: usize = 600;
const SHARDS: usize = 3;

fn collection() -> Collection {
    let mut state = 0xA076_1D64_78BD_642Fu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..N {
        let v: Vec<f64> = (0..DIM).map(|_| next()).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn shared_module() -> SharedBypass {
    SharedBypass::new(FeedbackBypass::for_histograms(DIM, BypassConfig::default()).unwrap())
}

fn query(i: usize) -> Vec<f64> {
    (0..DIM)
        .map(|d| (((i * 31 + d * 7) as f64) * 0.37).sin().abs())
        .collect()
}

fn spec(coll: &Collection, i: usize) -> QuerySpec {
    let positives: Vec<Vec<f64>> = (0..2)
        .map(|j| coll.vector((i * 17 + j * 5) % coll.len()).to_vec())
        .collect();
    QuerySpec::builder(query(i))
        .positives(positives)
        .rocchio(RocchioWeights::new(1.0, 0.5, 0.0))
        .build()
        .unwrap()
}

fn assert_neighbors_identical(got: &[Neighbor], want: &[Neighbor], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: neighbor count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.index, w.index, "{ctx}: index");
        assert_eq!(
            g.dist.to_bits(),
            w.dist.to_bits(),
            "{ctx}: distance bits for row {}",
            g.index
        );
    }
}

/// The stage accounting every report must satisfy by construction:
/// one wall clock split exactly into gather + merge, every span's
/// queue + busy inside the gather window, spans sorted by shard.
fn assert_self_consistent(trace: &TraceReport, ctx: &str) {
    assert_eq!(
        trace.wall_ns,
        trace.gather_ns + trace.merge_ns,
        "{ctx}: wall must equal gather + merge exactly"
    );
    for span in &trace.spans {
        assert!(
            span.queue_ns + span.busy_ns <= trace.gather_ns,
            "{ctx}: shard {} span ({} + {}) escapes the {}ns gather window",
            span.shard,
            span.queue_ns,
            span.busy_ns,
            trace.gather_ns
        );
    }
    let mut shards: Vec<u32> = trace.spans.iter().map(|s| s.shard).collect();
    let sorted = {
        let mut s = shards.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(shards, sorted, "{ctx}: spans must be sorted by shard");
    shards.dedup();
    assert_eq!(
        shards.len(),
        trace.spans.len(),
        "{ctx}: at most one span per shard"
    );
}

/// Flat sharded server: a traced round is bit-identical to the
/// untraced one, the trailer is self-consistent, one span per shard
/// carries a real batch fill, and traced requests land in the ring
/// while untraced ones never do.
#[test]
fn flat_traced_reply_is_identical_and_self_consistent() {
    let coll = Arc::new(collection());
    let cfg = ServerConfig {
        shards: SHARDS,
        slow_trace_threshold: Duration::ZERO,
        ..Default::default()
    };
    let handle = serve("127.0.0.1:0", Arc::clone(&coll), shared_module(), cfg).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert!(client.hello().unwrap() >= 3, "server must speak v3");

    // Fresh queries anchor their sessions from the same shared module,
    // so two sessions asking the same spec must answer identically.
    let (plain, _) = client.open_session().unwrap();
    let (traced, _) = client.open_session().unwrap();

    for i in 0..4 {
        let s = spec(&coll, i);
        let a = client.knn_spec(plain, 10, &s).unwrap();
        let b = client.knn_spec_traced(traced, 10, &s).unwrap();
        assert_neighbors_identical(&b.neighbors, &a.neighbors, &format!("q{i}"));
        assert_eq!(a.done, b.done, "q{i}: done");
        assert_eq!(a.converged, b.converged, "q{i}: converged");
        assert_eq!(a.cycles, b.cycles, "q{i}: cycles");
        assert!(a.trace.is_none(), "q{i}: untraced reply grew a trailer");
        let trace = b.trace.expect("traced reply must carry a trailer");
        assert_self_consistent(&trace, &format!("q{i}"));
        assert_eq!(
            trace.spans.len(),
            SHARDS,
            "q{i}: one span per shard dispatcher"
        );
        for span in &trace.spans {
            assert!(
                span.batch_fill >= 1,
                "q{i}: a flat span rode a real batch (fill {})",
                span.batch_fill
            );
            assert_eq!(span.flags, 0, "q{i}: healthy flat serving sets no flags");
        }
    }

    // Every traced request (threshold zero) is in the ring; the drain
    // is destructive and oldest-first; untraced requests never record.
    let first = client.get_traces(2).unwrap();
    assert_eq!(first.len(), 2);
    let rest = client.get_traces(0).unwrap();
    assert_eq!(rest.len(), 2, "4 traced requests total");
    let mut ids: Vec<u64> = first.iter().chain(&rest).map(|t| t.trace_id).collect();
    let sorted = {
        let mut s = ids.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(ids, sorted, "drain order is oldest first");
    ids.dedup();
    assert_eq!(ids.len(), 4, "consecutive drains are disjoint");
    assert!(
        client.get_traces(0).unwrap().is_empty(),
        "the ring was fully drained"
    );

    client.knn_spec(plain, 10, &spec(&coll, 9)).unwrap();
    assert!(
        client.get_traces(0).unwrap().is_empty(),
        "untraced requests must never record a trace"
    );

    // Scan attribution surfaces in the wire stats: every request rode
    // shard passes that streamed the whole collection at least once.
    let stats = handle.stats();
    assert!(
        stats.scan_rows_visited >= N as u64,
        "flat server streamed rows, got {}",
        stats.scan_rows_visited
    );
    handle.shutdown();
}

/// `GetTraces` (and the trace bit) are v3 surface: an un-negotiated
/// connection is refused with `BadRequest`.
#[test]
fn get_traces_requires_negotiation() {
    let coll = Arc::new(collection());
    let handle = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    match client.get_traces(0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest before Hello, got {other:?}"),
    }
    handle.shutdown();
}

/// One shard server per contiguous slice plus a router over them.
fn start_cluster(
    coll: &Arc<Collection>,
    cfg: RouterConfig,
) -> (Vec<ServerHandle>, fbp_server::RouterHandle) {
    let mut handles = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    for i in 0..SHARDS {
        let (start, end) = (i * coll.len() / SHARDS, (i + 1) * coll.len() / SHARDS);
        let slice = Arc::new(coll.slice_rows(start, end));
        let shard_cfg = ServerConfig {
            row_offset: start,
            ..Default::default()
        };
        let handle = serve("127.0.0.1:0", slice, shared_module(), shard_cfg).unwrap();
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    let router = route(
        "127.0.0.1:0",
        &addrs,
        Arc::clone(coll),
        shared_module(),
        cfg,
    )
    .unwrap();
    (handles, router)
}

/// Router tier: traced ≡ untraced bit-identity against the flat
/// in-process `shards = 3` oracle, self-consistent trailers whose
/// spans carry downstream round trips (fill 0), and a working ring.
#[test]
fn router_traced_reply_is_identical_and_self_consistent() {
    let coll = Arc::new(collection());
    let (_shards, router) = start_cluster(
        &coll,
        RouterConfig {
            slow_trace_threshold: Duration::ZERO,
            ..Default::default()
        },
    );
    let flat = serve(
        "127.0.0.1:0",
        Arc::clone(&coll),
        shared_module(),
        ServerConfig {
            shards: SHARDS,
            ..Default::default()
        },
    )
    .unwrap();

    let mut via_router = Client::connect(router.local_addr()).unwrap();
    let mut via_flat = Client::connect(flat.local_addr()).unwrap();
    assert!(via_router.hello().unwrap() >= 3);
    assert!(via_flat.hello().unwrap() >= 3);
    let (rs, _) = via_router.open_session().unwrap();
    let (fs, _) = via_flat.open_session().unwrap();

    for i in 0..4 {
        let s = spec(&coll, i);
        let a = via_flat.knn_spec(fs, 10, &s).unwrap();
        let b = via_router.knn_spec_traced(rs, 10, &s).unwrap();
        assert_neighbors_identical(
            &b.neighbors,
            &a.neighbors,
            &format!("q{i}: traced router vs flat"),
        );
        assert_eq!(a.done, b.done, "q{i}: done");
        assert_eq!(a.cycles, b.cycles, "q{i}: cycles");
        assert!(!b.degraded, "q{i}: healthy cluster");
        let trace = b.trace.expect("traced router reply must carry a trailer");
        assert_self_consistent(&trace, &format!("q{i}"));
        assert_eq!(trace.spans.len(), SHARDS, "q{i}: one span per downstream");
        for span in &trace.spans {
            assert_eq!(span.batch_fill, 0, "q{i}: router legs report no batch fill");
            assert_eq!(span.flags, 0, "q{i}: healthy legs set no flags");
        }
    }
    let drained = via_router.get_traces(0).unwrap();
    assert_eq!(drained.len(), 4, "every traced request landed in the ring");

    // Scan attribution lives on the tier that scans: each shard server
    // streamed its slice, while the router — which scans nothing —
    // reports every scan counter as zero.
    let rstats = router.stats();
    assert_eq!(rstats.scan_rows_visited, 0, "a router never scans");
    assert_eq!(rstats.scan_blocks_abandoned, 0);
    assert_eq!(rstats.scan_seed_prunes, 0);
    for (i, shard) in _shards.iter().enumerate() {
        assert!(
            shard.stats().scan_rows_visited > 0,
            "shard server {i} streamed its slice"
        );
    }
    router.shutdown();
    flat.shutdown();
}

/// A hedged straggler shows up in the trailer: the overtaken shard's
/// span is flagged `HEDGE_FIRED | HEDGE_WON` and the reply is still
/// full and fast.
#[test]
fn hedge_attribution_lands_in_the_span_flags() {
    let coll = Arc::new(collection());
    let delay = Duration::from_millis(400);
    let plan = FaultPlan::new(9).rule(FaultRule {
        shard: Some(0),
        after_calls: 0,
        call_limit: Some(1),
        probability: 1.0,
        mode: FaultMode::Delay(delay),
    });
    let (_shards, router) = start_cluster(
        &coll,
        RouterConfig {
            shard_timeout: Duration::from_secs(2),
            policy: FailurePolicy::Strict,
            hedge: Some(HedgeConfig {
                min_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(10),
            }),
            faults: Some(Arc::new(plan)),
            slow_trace_threshold: Duration::ZERO,
            ..Default::default()
        },
    );
    let mut client = Client::connect(router.local_addr()).unwrap();
    assert!(client.hello().unwrap() >= 3);
    let (session, _) = client.open_session().unwrap();

    let started = Instant::now();
    let reply = client
        .knn_spec_traced(session, 10, &spec(&coll, 5))
        .unwrap();
    assert!(
        started.elapsed() < delay,
        "the hedge should beat the straggler"
    );
    assert!(!reply.degraded, "the hedge answers in full");
    let trace = reply.trace.expect("traced reply");
    assert_self_consistent(&trace, "hedged");
    let span = trace
        .spans
        .iter()
        .find(|s| s.shard == 0)
        .expect("the hedged shard has a span");
    assert_ne!(span.flags & SPAN_HEDGE_FIRED, 0, "hedge fired: {span:?}");
    assert_ne!(span.flags & SPAN_HEDGE_WON, 0, "hedge won: {span:?}");
    assert_eq!(span.flags & SPAN_FAILED, 0, "the winning leg succeeded");
    router.shutdown();
}

/// After the breaker ejects a black-holed shard, a traced degraded
/// reply attributes it: the ejected shard's span is
/// `FAST_DEGRADED | FAILED` with zero times (no downstream work was
/// attempted), and the surviving spans are ordinary.
#[test]
fn fast_degrade_attribution_lands_in_the_span_flags() {
    let coll = Arc::new(collection());
    let timeout = Duration::from_millis(200);
    let plan = FaultPlan::new(17).rule(FaultRule::always(1, FaultMode::BlackHole));
    let (_shards, router) = start_cluster(
        &coll,
        RouterConfig {
            shard_timeout: timeout,
            policy: FailurePolicy::Degraded { min_shards: 1 },
            hedge: None,
            faults: Some(Arc::new(plan)),
            health: HealthConfig {
                consecutive_failures: 2,
                probe_interval: Duration::from_secs(60),
                ..Default::default()
            },
            slow_trace_threshold: Duration::ZERO,
            ..Default::default()
        },
    );
    let mut client = Client::connect(router.local_addr()).unwrap();
    assert!(client.hello().unwrap() >= 3);
    let (session, _) = client.open_session().unwrap();

    // Trip the breaker: these pay the shard timeout, and their traces
    // record the timed-out leg as a FAILED span with real elapsed time.
    for i in 0..2 {
        let reply = client
            .knn_spec_traced(session, 10, &spec(&coll, i))
            .unwrap();
        assert!(reply.degraded, "black-holed request {i} degrades");
        let trace = reply.trace.expect("traced reply");
        assert_self_consistent(&trace, &format!("timeout {i}"));
        let span = trace.spans.iter().find(|s| s.shard == 1).unwrap();
        assert_ne!(span.flags & SPAN_FAILED, 0, "timed-out leg: {span:?}");
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while router.stats().ejections() < 1 {
        assert!(Instant::now() < deadline, "breaker never tripped");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Post-ejection: the shard is skipped up front and the span says so.
    let reply = client
        .knn_spec_traced(session, 10, &spec(&coll, 7))
        .unwrap();
    assert!(reply.degraded);
    assert_eq!(reply.missing_shards, vec![1]);
    let trace = reply.trace.expect("traced reply");
    assert_self_consistent(&trace, "fast degrade");
    assert_eq!(trace.spans.len(), SHARDS, "every shard is accounted for");
    let ejected = trace.spans.iter().find(|s| s.shard == 1).unwrap();
    assert_ne!(
        ejected.flags & SPAN_FAST_DEGRADED,
        0,
        "ejected span: {ejected:?}"
    );
    assert_ne!(ejected.flags & SPAN_FAILED, 0, "ejected span: {ejected:?}");
    assert_eq!(ejected.queue_ns, 0, "no downstream work was attempted");
    assert_eq!(ejected.busy_ns, 0, "no downstream work was attempted");
    for span in trace.spans.iter().filter(|s| s.shard != 1) {
        assert_eq!(span.flags, 0, "survivors are ordinary: {span:?}");
    }
    router.shutdown();
}
