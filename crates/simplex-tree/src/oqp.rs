//! Optimal query parameters (OQPs) and their flat encoding.
//!
//! The paper's mapping `Mopt : Q → R^D × W` assigns every query point an
//! *optimal offset* `Δopt = qopt − q` and an *optimal parameter vector*
//! `Wopt` of the distance-function class (§3, Equation 3). The Simplex
//! Tree stores these per vertex as one flat `N = D + P` dimensional value
//! vector and interpolates each component independently (§4.2).

/// Shape of an OQP vector: `delta_dim` offset components followed by
/// `weight_dim` distance parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OqpLayout {
    /// Offset dimensionality (the query-domain dimensionality `D`).
    pub delta_dim: usize,
    /// Distance-parameter dimensionality `P` (e.g. one weight per feature
    /// component for weighted Euclidean).
    pub weight_dim: usize,
}

impl OqpLayout {
    /// New layout with `delta_dim + weight_dim` total components.
    pub fn new(delta_dim: usize, weight_dim: usize) -> Self {
        OqpLayout {
            delta_dim,
            weight_dim,
        }
    }

    /// Total flat length `N = D + P`.
    pub fn flat_len(&self) -> usize {
        self.delta_dim + self.weight_dim
    }
}

/// How weight components are stored in the interpolated representation.
///
/// Learned weights (`wᵢ ∝ 1/σᵢ²`) span orders of magnitude; interpolating
/// their *logarithms* keeps predictions positive and scale-balanced. The
/// paper interpolates raw values, so `Raw` is the default; `Log` is the
/// ablation knob (`ablation_weight_scale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScale {
    /// Store and interpolate weights as-is (paper behavior).
    #[default]
    Raw,
    /// Store `ln(w)`; decode with `exp` after interpolation.
    Log,
}

/// Floor applied to weights when encoding/decoding so `Log` never sees 0
/// and predictions stay strictly positive.
pub const WEIGHT_FLOOR: f64 = 1e-9;

impl WeightScale {
    /// Encode one weight for storage.
    #[inline]
    pub fn encode(&self, w: f64) -> f64 {
        let w = w.max(WEIGHT_FLOOR);
        match self {
            WeightScale::Raw => w,
            WeightScale::Log => w.ln(),
        }
    }

    /// Decode one stored value back into a weight.
    #[inline]
    pub fn decode(&self, v: f64) -> f64 {
        match self {
            WeightScale::Raw => v.max(WEIGHT_FLOOR),
            WeightScale::Log => v.exp(),
        }
    }
}

/// An optimal-query-parameter vector: offset + distance weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Oqp {
    /// Optimal query-point offset `Δopt = qopt − q`.
    pub delta: Vec<f64>,
    /// Distance-function parameters `Wopt` (positive).
    pub weights: Vec<f64>,
}

impl Oqp {
    /// The default parameters: zero offset, unit weights — i.e. "run the
    /// query as given with the default distance function".
    pub fn default_for(layout: &OqpLayout) -> Self {
        Oqp {
            delta: vec![0.0; layout.delta_dim],
            weights: vec![1.0; layout.weight_dim],
        }
    }

    /// Layout of this OQP.
    pub fn layout(&self) -> OqpLayout {
        OqpLayout::new(self.delta.len(), self.weights.len())
    }

    /// Flatten into the tree's storage encoding.
    pub fn encode(&self, scale: WeightScale) -> Vec<f64> {
        let mut flat = Vec::with_capacity(self.delta.len() + self.weights.len());
        flat.extend_from_slice(&self.delta);
        flat.extend(self.weights.iter().map(|&w| scale.encode(w)));
        flat
    }

    /// Rebuild from the flat storage encoding.
    pub fn decode(flat: &[f64], layout: &OqpLayout, scale: WeightScale) -> Self {
        assert_eq!(flat.len(), layout.flat_len(), "Oqp::decode: bad length");
        Oqp {
            delta: flat[..layout.delta_dim].to_vec(),
            weights: flat[layout.delta_dim..]
                .iter()
                .map(|&v| scale.decode(v))
                .collect(),
        }
    }

    /// Largest absolute difference over the offset block.
    pub fn max_delta_diff(&self, other: &Oqp) -> f64 {
        debug_assert_eq!(self.delta.len(), other.delta.len());
        self.delta
            .iter()
            .zip(other.delta.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Largest absolute difference over the weight block.
    pub fn max_weight_diff(&self, other: &Oqp) -> f64 {
        debug_assert_eq!(self.weights.len(), other.weights.len());
        self.weights
            .iter()
            .zip(other.weights.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// The paper's single-ε criterion: `max_i |mᵢ(q) − v̂ᵢ|` over all `N`
    /// components (offsets and weights mixed).
    pub fn max_component_diff(&self, other: &Oqp) -> f64 {
        self.max_delta_diff(other).max(self.max_weight_diff(other))
    }

    /// Normalize the weight block to geometric mean 1 (in place).
    ///
    /// Rankings are invariant under `W → c·W`, so the representation is
    /// only unique up to scale; the paper pins one weight to 1 (Example 1),
    /// we pin the geometric mean, which never divides by a vanishing
    /// weight. No-op on an empty weight block.
    pub fn normalize_weights(&mut self) {
        if self.weights.is_empty() {
            return;
        }
        let log_mean = self
            .weights
            .iter()
            .map(|&w| w.max(WEIGHT_FLOOR).ln())
            .sum::<f64>()
            / self.weights.len() as f64;
        let scale = (-log_mean).exp();
        for w in self.weights.iter_mut() {
            *w = (*w).max(WEIGHT_FLOOR) * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_identity_parameters() {
        let layout = OqpLayout::new(3, 4);
        let d = Oqp::default_for(&layout);
        assert_eq!(d.delta, vec![0.0; 3]);
        assert_eq!(d.weights, vec![1.0; 4]);
        assert_eq!(d.layout(), layout);
        assert_eq!(layout.flat_len(), 7);
    }

    #[test]
    fn encode_decode_raw_roundtrip() {
        let o = Oqp {
            delta: vec![0.1, -0.2],
            weights: vec![2.0, 0.5, 1.0],
        };
        let layout = o.layout();
        let flat = o.encode(WeightScale::Raw);
        assert_eq!(flat.len(), 5);
        let back = Oqp::decode(&flat, &layout, WeightScale::Raw);
        assert_eq!(back, o);
    }

    #[test]
    fn encode_decode_log_roundtrip() {
        let o = Oqp {
            delta: vec![0.0],
            weights: vec![10.0, 0.01],
        };
        let layout = o.layout();
        let flat = o.encode(WeightScale::Log);
        let back = Oqp::decode(&flat, &layout, WeightScale::Log);
        for (a, b) in o.weights.iter().zip(back.weights.iter()) {
            assert!((a - b).abs() < 1e-12 * a);
        }
    }

    #[test]
    fn weight_floor_applied() {
        let o = Oqp {
            delta: vec![],
            weights: vec![0.0, -5.0],
        };
        let flat = o.encode(WeightScale::Raw);
        assert!(flat.iter().all(|&w| w >= WEIGHT_FLOOR));
        let back = Oqp::decode(&flat, &OqpLayout::new(0, 2), WeightScale::Raw);
        assert!(back.weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn diffs() {
        let a = Oqp {
            delta: vec![0.0, 1.0],
            weights: vec![1.0],
        };
        let b = Oqp {
            delta: vec![0.5, 1.0],
            weights: vec![4.0],
        };
        assert_eq!(a.max_delta_diff(&b), 0.5);
        assert_eq!(a.max_weight_diff(&b), 3.0);
        assert_eq!(a.max_component_diff(&b), 3.0);
        assert_eq!(a.max_component_diff(&a), 0.0);
    }

    #[test]
    fn normalize_weights_geometric_mean_one() {
        let mut o = Oqp {
            delta: vec![],
            weights: vec![4.0, 1.0, 0.25],
        };
        o.normalize_weights();
        let gm: f64 = o.weights.iter().map(|w| w.ln()).sum::<f64>() / 3.0;
        assert!(gm.abs() < 1e-12);
        // Ratios preserved.
        assert!((o.weights[0] / o.weights[1] - 4.0).abs() < 1e-12);
        // Empty block is a no-op.
        let mut e = Oqp {
            delta: vec![1.0],
            weights: vec![],
        };
        e.normalize_weights();
        assert!(e.weights.is_empty());
    }
}
