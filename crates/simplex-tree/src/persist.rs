//! Binary persistence of Simplex Trees.
//!
//! FeedbackBypass is useful precisely because learned parameters survive
//! *across sessions*; the tree must therefore round-trip through disk.
//! The format is a little-endian, versioned memory image:
//!
//! ```text
//! magic "FBST" | version | root shape | OQP layout | config |
//! counters | vertex pool | node arena | FNV-1a-64 checksum
//! ```
//!
//! Reading validates the magic, version, checksum, then structural
//! invariants ([`crate::SimplexTree::verify_invariants`]) before handing
//! the tree back, so a corrupt or truncated image can never produce a
//! silently-wrong index.

use crate::oqp::{OqpLayout, WeightScale};
use crate::tree::{DescentRule, Node, SimplexTree, Vertex};
use crate::{Result, TreeConfig, TreeError};
use bytes::{BufMut, BytesMut};
use fbp_geometry::RootSimplex;

const MAGIC: u32 = 0x4642_5354; // "FBST"
const VERSION: u32 = 1;

/// FNV-1a 64-bit checksum.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Checked little-endian reader over a byte slice.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.data.len() {
            return Err(TreeError::Corrupt(format!(
                "truncated image: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>> {
        let raw = self.take(8 * n)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

impl SimplexTree {
    /// Serialize to a self-contained byte image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        match self.root_shape() {
            RootSimplex::Corner { dim, scale } => {
                buf.put_u8(0);
                buf.put_u32_le(*dim as u32);
                buf.put_f64_le(*scale);
            }
            RootSimplex::Custom(verts) => {
                buf.put_u8(1);
                let dim = verts.len() - 1;
                buf.put_u32_le(dim as u32);
                for v in verts {
                    for &x in v {
                        buf.put_f64_le(x);
                    }
                }
            }
        }
        buf.put_u32_le(self.layout().delta_dim as u32);
        buf.put_u32_le(self.layout().weight_dim as u32);
        let cfg = self.config();
        buf.put_f64_le(cfg.delta_eps);
        buf.put_f64_le(cfg.weight_eps);
        buf.put_f64_le(cfg.vertex_snap_tol);
        buf.put_f64_le(cfg.domain_tol);
        buf.put_u8(match cfg.weight_scale {
            WeightScale::Raw => 0,
            WeightScale::Log => 1,
        });
        buf.put_u8(match cfg.descent {
            DescentRule::MostInterior => 0,
            DescentRule::FirstContaining => 1,
        });
        buf.put_u64_le(self.stored_points());
        buf.put_u64_le(self.update_count());
        buf.put_u64_le(self.skip_count());

        buf.put_u32_le(self.vertices.len() as u32);
        for v in &self.vertices {
            buf.put_u8(v.synthetic as u8);
            for &x in v.point.iter() {
                buf.put_f64_le(x);
            }
            for &x in v.value.iter() {
                buf.put_f64_le(x);
            }
        }
        buf.put_u32_le(self.nodes.len() as u32);
        for n in &self.nodes {
            for &v in n.verts.iter() {
                buf.put_u32_le(v);
            }
            buf.put_u16_le(n.children.len() as u16);
            for &(h, id) in &n.children {
                buf.put_u16_le(h);
                buf.put_u32_le(id);
            }
            match (&n.split_mu, n.split_vertex) {
                (Some(mu), Some(sv)) => {
                    buf.put_u8(1);
                    for &x in mu.iter() {
                        buf.put_f64_le(x);
                    }
                    buf.put_u32_le(sv);
                }
                _ => buf.put_u8(0),
            }
        }
        let checksum = fnv1a(&buf);
        buf.put_u64_le(checksum);
        buf.to_vec()
    }

    /// Deserialize a byte image produced by [`Self::to_bytes`].
    ///
    /// Fails on magic/version mismatch, checksum mismatch, truncation, or
    /// any structural-invariant violation.
    pub fn from_bytes(data: &[u8]) -> Result<SimplexTree> {
        if data.len() < 16 {
            return Err(TreeError::Corrupt("image shorter than header".into()));
        }
        let (body, tail) = data.split_at(data.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a(body);
        if expected != actual {
            return Err(TreeError::Corrupt(format!(
                "checksum mismatch: stored {expected:#x}, computed {actual:#x}"
            )));
        }
        let mut r = Reader::new(body);
        if r.u32()? != MAGIC {
            return Err(TreeError::Corrupt("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(TreeError::Corrupt(format!("unsupported version {version}")));
        }
        let root_shape = match r.u8()? {
            0 => {
                let dim = r.u32()? as usize;
                let scale = r.f64()?;
                RootSimplex::Corner { dim, scale }
            }
            1 => {
                let dim = r.u32()? as usize;
                let mut verts = Vec::with_capacity(dim + 1);
                for _ in 0..=dim {
                    verts.push(r.f64s(dim)?);
                }
                RootSimplex::Custom(verts)
            }
            t => return Err(TreeError::Corrupt(format!("unknown root tag {t}"))),
        };
        let dim = root_shape.dim();
        let layout = OqpLayout::new(r.u32()? as usize, r.u32()? as usize);
        let config = TreeConfig {
            delta_eps: r.f64()?,
            weight_eps: r.f64()?,
            vertex_snap_tol: r.f64()?,
            domain_tol: r.f64()?,
            weight_scale: match r.u8()? {
                0 => WeightScale::Raw,
                1 => WeightScale::Log,
                t => return Err(TreeError::Corrupt(format!("unknown weight scale {t}"))),
            },
            descent: match r.u8()? {
                0 => DescentRule::MostInterior,
                1 => DescentRule::FirstContaining,
                t => return Err(TreeError::Corrupt(format!("unknown descent rule {t}"))),
            },
        };
        let stored_points = r.u64()?;
        let updates = r.u64()?;
        let skips = r.u64()?;

        let vcount = r.u32()? as usize;
        let mut vertices = Vec::with_capacity(vcount);
        for _ in 0..vcount {
            let synthetic = r.u8()? != 0;
            let point = r.f64s(dim)?.into_boxed_slice();
            let value = r.f64s(layout.flat_len())?.into_boxed_slice();
            vertices.push(Vertex {
                point,
                value,
                synthetic,
            });
        }
        let ncount = r.u32()? as usize;
        let mut nodes = Vec::with_capacity(ncount);
        for _ in 0..ncount {
            let mut verts = Vec::with_capacity(dim + 1);
            for _ in 0..=dim {
                verts.push(r.u32()?);
            }
            let ccount = r.u16()? as usize;
            let mut children = Vec::with_capacity(ccount);
            for _ in 0..ccount {
                let h = r.u16()?;
                let id = r.u32()?;
                children.push((h, id));
            }
            let (split_mu, split_vertex) = if r.u8()? != 0 {
                let mu = r.f64s(dim + 1)?.into_boxed_slice();
                let sv = r.u32()?;
                (Some(mu), Some(sv))
            } else {
                (None, None)
            };
            nodes.push(Node {
                verts: verts.into_boxed_slice(),
                children,
                split_mu,
                split_vertex,
            });
        }
        if r.pos != body.len() {
            return Err(TreeError::Corrupt(format!(
                "{} trailing bytes",
                body.len() - r.pos
            )));
        }
        SimplexTree::from_raw_parts(
            root_shape,
            layout,
            config,
            nodes,
            vertices,
            stored_points,
            updates,
            skips,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Oqp;

    fn sample_tree() -> SimplexTree {
        let mut tree = SimplexTree::new(
            RootSimplex::standard(3),
            OqpLayout::new(3, 4),
            TreeConfig::default(),
        )
        .unwrap();
        let points = [
            [0.2, 0.2, 0.2],
            [0.1, 0.3, 0.15],
            [0.22, 0.18, 0.21],
            [0.05, 0.05, 0.6],
        ];
        for (i, q) in points.iter().enumerate() {
            let oqp = Oqp {
                delta: vec![0.01 * i as f64, -0.02, 0.0],
                weights: vec![1.0 + i as f64, 0.5, 2.0, 1.0],
            };
            tree.insert(q, &oqp).unwrap();
        }
        tree
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample_tree();
        let bytes = tree.to_bytes();
        let back = SimplexTree::from_bytes(&bytes).unwrap();
        assert_eq!(back.dim(), tree.dim());
        assert_eq!(back.layout(), tree.layout());
        assert_eq!(back.config(), tree.config());
        assert_eq!(back.stored_points(), tree.stored_points());
        assert_eq!(back.node_count(), tree.node_count());
        assert_eq!(back.vertex_count(), tree.vertex_count());
        // Predictions agree everywhere we probe.
        for q in [[0.2, 0.2, 0.2], [0.1, 0.1, 0.1], [0.3, 0.05, 0.2]] {
            let a = tree.predict(&q).unwrap();
            let b = back.predict(&q).unwrap();
            assert!(a.oqp.max_component_diff(&b.oqp) < 1e-15);
            assert_eq!(a.nodes_visited, b.nodes_visited);
        }
    }

    #[test]
    fn empty_tree_roundtrips() {
        let tree = SimplexTree::new(
            RootSimplex::unit_cube(5),
            OqpLayout::new(5, 5),
            TreeConfig::default(),
        )
        .unwrap();
        let back = SimplexTree::from_bytes(&tree.to_bytes()).unwrap();
        assert_eq!(back.node_count(), 1);
        assert_eq!(back.root_shape(), tree.root_shape());
    }

    #[test]
    fn custom_root_roundtrips() {
        let root =
            RootSimplex::custom(vec![vec![-1.0, -1.0], vec![4.0, -1.0], vec![-1.0, 4.0]]).unwrap();
        let mut tree = SimplexTree::new(root, OqpLayout::new(2, 2), TreeConfig::default()).unwrap();
        tree.insert(
            &[1.0, 1.0],
            &Oqp {
                delta: vec![0.5, 0.5],
                weights: vec![3.0, 0.3],
            },
        )
        .unwrap();
        let back = SimplexTree::from_bytes(&tree.to_bytes()).unwrap();
        let p = back.predict(&[1.0, 1.0]).unwrap();
        assert!((p.oqp.weights[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn corruption_detected() {
        let tree = sample_tree();
        let good = tree.to_bytes();
        // Flip one byte in the middle.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            SimplexTree::from_bytes(&bad),
            Err(TreeError::Corrupt(_))
        ));
        // Truncation.
        assert!(matches!(
            SimplexTree::from_bytes(&good[..good.len() - 3]),
            Err(TreeError::Corrupt(_))
        ));
        // Empty / tiny input.
        assert!(SimplexTree::from_bytes(&[]).is_err());
        assert!(SimplexTree::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let tree = sample_tree();
        let mut img = tree.to_bytes();
        // Corrupt the magic but fix up the checksum so only the magic check
        // can catch it.
        img[0] ^= 0x01;
        let body_len = img.len() - 8;
        let sum = fnv1a(&img[..body_len]);
        img[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = SimplexTree::from_bytes(&img).unwrap_err();
        assert!(matches!(err, TreeError::Corrupt(msg) if msg.contains("magic")));
    }

    #[test]
    fn checksum_is_stable() {
        // Serialization must be deterministic (same tree → same bytes).
        let tree = sample_tree();
        assert_eq!(tree.to_bytes(), tree.to_bytes());
    }
}
