//! Tree-shape statistics (the Figure 16 instrumentation).
//!
//! The paper reports, as a function of the number of processed queries,
//! the *depth* of the Simplex Tree (maximum simplices on a root→leaf
//! path) and the *average number of simplices traversed* per lookup. The
//! former is a static property computed here; the latter is an access-path
//! property aggregated by [`TraversalStats`] from the `nodes_visited`
//! field lookups return.

use crate::tree::SimplexTree;

/// Static shape of a Simplex Tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeShape {
    /// Total simplices (inner + leaf).
    pub node_count: usize,
    /// Leaf simplices (cells of the current partition).
    pub leaf_count: usize,
    /// Stored non-synthetic query points.
    pub stored_points: u64,
    /// Maximum nodes on a root→leaf path (the paper's "depth").
    pub depth: usize,
    /// Mean over leaves of the root→leaf path length; a cheap proxy for
    /// the expected traversal cost under uniform leaf access.
    pub mean_leaf_depth: f64,
}

impl SimplexTree {
    /// Compute the static shape (O(nodes) DFS).
    pub fn shape(&self) -> TreeShape {
        let mut depth = 0usize;
        let mut leaf_count = 0usize;
        let mut leaf_depth_sum = 0usize;
        let mut stack: Vec<(u32, usize)> = vec![(self.root_id(), 1)];
        while let Some((id, d)) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.is_leaf() {
                leaf_count += 1;
                leaf_depth_sum += d;
                depth = depth.max(d);
            } else {
                for &(_, child) in &node.children {
                    stack.push((child, d + 1));
                }
            }
        }
        TreeShape {
            node_count: self.nodes.len(),
            leaf_count,
            stored_points: self.stored_points(),
            depth,
            mean_leaf_depth: if leaf_count == 0 {
                0.0
            } else {
                leaf_depth_sum as f64 / leaf_count as f64
            },
        }
    }
}

/// Aggregator for per-lookup traversal counts.
#[derive(Debug, Clone, Default)]
pub struct TraversalStats {
    lookups: u64,
    total_visited: u64,
    max_visited: usize,
}

impl TraversalStats {
    /// Fresh aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one lookup's `nodes_visited`.
    pub fn record(&mut self, nodes_visited: usize) {
        self.lookups += 1;
        self.total_visited += nodes_visited as u64;
        self.max_visited = self.max_visited.max(nodes_visited);
    }

    /// Number of recorded lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mean simplices traversed per lookup (the Fig. 16 series).
    pub fn mean_visited(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_visited as f64 / self.lookups as f64
        }
    }

    /// Worst lookup seen.
    pub fn max_visited(&self) -> usize {
        self.max_visited
    }

    /// Merge another aggregator in (parallel evaluation support).
    pub fn merge(&mut self, other: &TraversalStats) {
        self.lookups += other.lookups;
        self.total_visited += other.total_visited;
        self.max_visited = self.max_visited.max(other.max_visited);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Oqp, OqpLayout, TreeConfig};
    use fbp_geometry::RootSimplex;

    fn tree_with(points: &[[f64; 2]]) -> SimplexTree {
        let mut tree = SimplexTree::new(
            RootSimplex::standard(2),
            OqpLayout::new(2, 2),
            TreeConfig::default(),
        )
        .unwrap();
        for (i, q) in points.iter().enumerate() {
            let oqp = Oqp {
                delta: vec![0.0, 0.0],
                weights: vec![2.0 + i as f64, 1.0],
            };
            tree.insert(q, &oqp).unwrap();
        }
        tree
    }

    #[test]
    fn empty_tree_shape() {
        let tree = tree_with(&[]);
        let s = tree.shape();
        assert_eq!(s.node_count, 1);
        assert_eq!(s.leaf_count, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.stored_points, 0);
        assert_eq!(s.mean_leaf_depth, 1.0);
    }

    #[test]
    fn one_insert_shape() {
        let tree = tree_with(&[[0.2, 0.2]]);
        let s = tree.shape();
        assert_eq!(s.node_count, 4); // root + 3 children
        assert_eq!(s.leaf_count, 3);
        assert_eq!(s.depth, 2);
        assert_eq!(s.stored_points, 1);
    }

    #[test]
    fn depth_grows_with_nested_inserts() {
        // Points marching into a corner repeatedly split the same region.
        let pts: Vec<[f64; 2]> = (1..=6)
            .map(|i| {
                let t = 0.5f64.powi(i);
                [t, t]
            })
            .collect();
        let tree = tree_with(&pts);
        let s = tree.shape();
        assert!(s.depth >= 4, "depth {}", s.depth);
        assert!(s.mean_leaf_depth <= s.depth as f64);
        assert!(s.mean_leaf_depth >= 1.0);
    }

    #[test]
    fn traversal_stats_aggregate() {
        let mut t = TraversalStats::new();
        assert_eq!(t.mean_visited(), 0.0);
        t.record(1);
        t.record(3);
        t.record(5);
        assert_eq!(t.lookups(), 3);
        assert!((t.mean_visited() - 3.0).abs() < 1e-12);
        assert_eq!(t.max_visited(), 5);
        let mut u = TraversalStats::new();
        u.record(7);
        t.merge(&u);
        assert_eq!(t.lookups(), 4);
        assert_eq!(t.max_visited(), 7);
        assert!((t.mean_visited() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn traversal_consistent_with_shape() {
        let tree = tree_with(&[[0.2, 0.2], [0.21, 0.19], [0.22, 0.2], [0.5, 0.3]]);
        let shape = tree.shape();
        let mut stats = TraversalStats::new();
        for q in [[0.1, 0.1], [0.2, 0.2], [0.4, 0.4], [0.01, 0.9]] {
            let hit = tree.lookup(&q).unwrap();
            stats.record(hit.nodes_visited);
        }
        assert!(stats.max_visited() <= shape.depth);
        assert!(stats.mean_visited() >= 1.0);
    }
}
