//! # fbp-simplex-tree
//!
//! The **Simplex Tree** (paper §4): the wavelet-based index at the core of
//! FeedbackBypass.
//!
//! The tree organizes the query domain `Q ⊆ R^D` as a hierarchy of
//! simplices. The root simplex `S0` covers the whole domain; every stored
//! query point splits its enclosing leaf simplex into up to `D + 1`
//! children. Each stored vertex carries the N-dimensional vector of
//! *optimal query parameters* (OQPs) learned for it by a relevance
//! feedback loop. Three operations (Figure 8 of the paper):
//!
//! * **Lookup** — descend from the root into the child simplex containing
//!   the query point, tracking barycentric coordinates incrementally in
//!   O(D²) per level ([`tree::SimplexTree::lookup`]);
//! * **Predict** (`Mopt`) — linearly interpolate the OQPs stored at the
//!   `D + 1` vertices of the enclosing leaf — the unbalanced-Haar wavelet
//!   evaluation ([`tree::SimplexTree::predict`]);
//! * **Insert** — store a new `(query point, OQP)` pair *only if* the
//!   current prediction errs by more than a threshold ε, so storage tracks
//!   the intrinsic complexity of the optimal query mapping rather than the
//!   number of queries ([`tree::SimplexTree::insert`]).
//!
//! The tree is arena-backed (flat `Vec`s of nodes and vertices addressed
//! by `u32` ids): cache-friendly descents, no reference counting, and a
//! trivially serializable memory image ([`persist`]).
//!
//! ## Example
//!
//! ```
//! use fbp_simplex_tree::{Oqp, OqpLayout, SimplexTree, TreeConfig};
//! use fbp_geometry::RootSimplex;
//!
//! // 2-D histogram-like domain, OQPs = 2 offset dims + 2 weights.
//! let layout = OqpLayout::new(2, 2);
//! let mut tree = SimplexTree::new(
//!     RootSimplex::standard(2), layout.clone(), TreeConfig::default()).unwrap();
//!
//! // Before any feedback, predictions are the default parameters.
//! let p = tree.predict(&[0.3, 0.3]).unwrap();
//! assert_eq!(p.oqp.delta, vec![0.0, 0.0]);
//! assert_eq!(p.oqp.weights, vec![1.0, 1.0]);
//!
//! // Store the outcome of a feedback loop and ask again.
//! let learned = Oqp { delta: vec![0.05, -0.02], weights: vec![3.0, 0.5] };
//! tree.insert(&[0.3, 0.3], &learned).unwrap();
//! let p = tree.predict(&[0.3, 0.3]).unwrap();
//! assert!((p.oqp.weights[0] - 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod oqp;
pub mod persist;
pub mod stats;
pub mod tree;

pub use oqp::{Oqp, OqpLayout, WeightScale};
pub use stats::TreeShape;
pub use tree::{DescentRule, InsertOutcome, LeafHit, Prediction, SimplexTree, TreeConfig};

/// Errors from Simplex Tree operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// Query point lies outside the root simplex `S0`.
    OutOfDomain {
        /// The (negative) minimum barycentric coordinate observed.
        min_coord: f64,
    },
    /// Query/OQP dimensionality disagrees with the tree's layout.
    DimMismatch {
        /// Dimensionality the tree expected.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// Underlying geometric failure (degenerate root, ...).
    Geometry(fbp_geometry::GeometryError),
    /// Persistence: malformed or corrupt serialized image.
    Corrupt(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::OutOfDomain { min_coord } => {
                write!(f, "query point outside the root simplex (min barycentric coordinate {min_coord:.3e})")
            }
            TreeError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TreeError::Geometry(e) => write!(f, "geometry error: {e}"),
            TreeError::Corrupt(msg) => write!(f, "corrupt tree image: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<fbp_geometry::GeometryError> for TreeError {
    fn from(e: fbp_geometry::GeometryError) -> Self {
        TreeError::Geometry(e)
    }
}

/// Result alias for tree operations.
pub type Result<T> = std::result::Result<T, TreeError>;
