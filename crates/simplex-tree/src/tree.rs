//! The Simplex Tree proper: lookup, predict (`Mopt`), insert.

use crate::oqp::{Oqp, OqpLayout, WeightScale};
use crate::{Result, TreeError};
use fbp_geometry::{barycentric, split, RootSimplex};

/// Index of a node in the tree arena.
pub type NodeId = u32;
/// Index of a vertex in the vertex pool.
pub type VertexId = u32;

/// A stored vertex: a query point plus its flat-encoded OQP value.
#[derive(Debug, Clone)]
pub(crate) struct Vertex {
    pub(crate) point: Box<[f64]>,
    /// Flat `N`-dimensional OQP encoding (see [`WeightScale`]).
    pub(crate) value: Box<[f64]>,
    /// True for the synthetic corners of the root simplex `S0`; false for
    /// vertices inserted from actual feedback. Only real vertices count as
    /// "stored query points" in the paper's statistics.
    pub(crate) synthetic: bool,
}

/// A tree node = one simplex, identified by its `D + 1` vertex ids.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// `D + 1` vertex ids spanning this simplex.
    pub(crate) verts: Box<[VertexId]>,
    /// Children as `(h, node)`: child `h` replaced vertex position `h`
    /// with the split vertex. Empty = leaf. May have fewer than `D + 1`
    /// entries when the split point lay on a face (degenerate children are
    /// never created).
    pub(crate) children: Vec<(u16, NodeId)>,
    /// Barycentric coordinates of the split point w.r.t. *this* simplex
    /// (present iff inner node). Drives the O(D) descent step.
    pub(crate) split_mu: Option<Box<[f64]>>,
    /// The vertex created by the split (present iff inner node).
    pub(crate) split_vertex: Option<VertexId>,
}

impl Node {
    fn leaf(verts: Box<[VertexId]>) -> Self {
        Node {
            verts,
            children: Vec::new(),
            split_mu: None,
            split_vertex: None,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Which child a lookup descends into when several are plausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DescentRule {
    /// Descend into the child with the largest minimum barycentric
    /// coordinate (most-interior child). Deterministic on boundaries,
    /// robust to floating-point noise; the default.
    #[default]
    MostInterior,
    /// Descend into the first child whose coordinates are all ≥ −tol
    /// (the naive reading of the paper's pseudo-code, Figure 8). Falls
    /// back to the most-interior child when rounding leaves no child
    /// containing the point. Ablation: `ablation_descent`.
    FirstContaining,
}

/// Tuning knobs for the tree (paper §4.2 plus the refinements documented
/// in DESIGN.md §4).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Insert threshold ε on the offset block: skip the insert when the
    /// prediction is already within this of the converged Δ (component
    /// max). The paper's single ε corresponds to `delta_eps == weight_eps`.
    pub delta_eps: f64,
    /// Insert threshold ε on the weight block.
    pub weight_eps: f64,
    /// Barycentric tolerance under which an inserted point is treated as an
    /// already-stored vertex (OQP update instead of split).
    pub vertex_snap_tol: f64,
    /// Tolerance for "inside the root simplex" on lookups.
    pub domain_tol: f64,
    /// Storage scale for the weight block (raw per the paper, log as the
    /// stability ablation).
    pub weight_scale: WeightScale,
    /// Child-selection rule during lookups.
    pub descent: DescentRule,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            delta_eps: 1e-3,
            weight_eps: 1e-3,
            vertex_snap_tol: 1e-7,
            domain_tol: 1e-7,
            weight_scale: WeightScale::Raw,
            descent: DescentRule::MostInterior,
        }
    }
}

/// Result of a leaf lookup.
#[derive(Debug, Clone)]
pub struct LeafHit {
    /// The enclosing leaf simplex.
    pub node: NodeId,
    /// Barycentric coordinates of the query w.r.t. that leaf
    /// (length `D + 1`, sums to 1).
    pub lambda: Vec<f64>,
    /// Simplices visited root→leaf inclusive (the Fig. 16 metric).
    pub nodes_visited: usize,
}

/// Result of a prediction (`Mopt(q)`).
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted optimal query parameters.
    pub oqp: Oqp,
    /// Simplices visited to find the enclosing leaf.
    pub nodes_visited: usize,
}

/// Outcome of an insert.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The point improved the approximation: its leaf was split into this
    /// many children.
    Split {
        /// Proper (non-degenerate) children created.
        children: usize,
    },
    /// The point coincided with an already-stored vertex whose OQP was
    /// overwritten (the re-learned already-seen query).
    UpdatedVertex,
    /// Prediction was already within ε: nothing stored (paper §4.2). The
    /// observed component differences are reported for diagnostics.
    Skipped {
        /// Max |Δ component difference| between prediction and input.
        delta_diff: f64,
        /// Max |weight component difference|.
        weight_diff: f64,
    },
}

/// The Simplex Tree (see crate docs for the big picture).
#[derive(Debug, Clone)]
pub struct SimplexTree {
    dim: usize,
    layout: OqpLayout,
    config: TreeConfig,
    root_shape: RootSimplex,
    pub(crate) nodes: Vec<Node>,
    pub(crate) vertices: Vec<Vertex>,
    root: NodeId,
    stored_points: u64,
    updates: u64,
    skips: u64,
}

impl SimplexTree {
    /// Create an empty tree over the given root simplex.
    ///
    /// `layout.delta_dim` must equal the domain dimensionality: the offset
    /// lives in the same space as the query points.
    pub fn new(root_shape: RootSimplex, layout: OqpLayout, config: TreeConfig) -> Result<Self> {
        let dim = root_shape.dim();
        if layout.delta_dim != dim {
            return Err(TreeError::DimMismatch {
                expected: dim,
                got: layout.delta_dim,
            });
        }
        let default_value: Box<[f64]> = Oqp::default_for(&layout)
            .encode(config.weight_scale)
            .into_boxed_slice();
        let vertices: Vec<Vertex> = root_shape
            .vertices()
            .into_iter()
            .map(|point| Vertex {
                point: point.into_boxed_slice(),
                value: default_value.clone(),
                synthetic: true,
            })
            .collect();
        let verts: Box<[VertexId]> = (0..vertices.len() as VertexId).collect();
        let nodes = vec![Node::leaf(verts)];
        Ok(SimplexTree {
            dim,
            layout,
            config,
            root_shape,
            nodes,
            vertices,
            root: 0,
            stored_points: 0,
            updates: 0,
            skips: 0,
        })
    }

    /// Domain dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// OQP layout (N = delta + weight dims).
    pub fn layout(&self) -> &OqpLayout {
        &self.layout
    }

    /// Configuration in effect.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The root simplex shape.
    pub fn root_shape(&self) -> &RootSimplex {
        &self.root_shape
    }

    /// Number of *real* (non-synthetic) stored query points.
    pub fn stored_points(&self) -> u64 {
        self.stored_points
    }

    /// Number of in-place OQP updates (already-seen re-inserts).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Number of inserts skipped by the ε-criterion.
    pub fn skip_count(&self) -> u64 {
        self.skips
    }

    /// Total nodes (simplices) in the arena.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total vertices, including the `D + 1` synthetic root corners.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Find the leaf simplex containing `q` (paper's `Lookup`).
    ///
    /// Descends from the root choosing, at each inner node, the child with
    /// the largest minimum barycentric coordinate — the most-interior
    /// child. This resolves boundary ties deterministically (the special
    /// cases the paper's footnote 3 waves away) and is exact for interior
    /// points.
    pub fn lookup(&self, q: &[f64]) -> Result<LeafHit> {
        if q.len() != self.dim {
            return Err(TreeError::DimMismatch {
                expected: self.dim,
                got: q.len(),
            });
        }
        let mut lambda = self.root_shape.coords(q)?;
        let (_, min) = barycentric::min_coord(&lambda);
        if min < -self.config.domain_tol {
            return Err(TreeError::OutOfDomain { min_coord: min });
        }
        let mut node_id = self.root;
        let mut visited = 1usize;
        let mut next = vec![0.0; lambda.len()];
        loop {
            let node = &self.nodes[node_id as usize];
            if node.is_leaf() {
                return Ok(LeafHit {
                    node: node_id,
                    lambda,
                    nodes_visited: visited,
                });
            }
            let mu = node.split_mu.as_deref().expect("inner node has split_mu");
            let mut best: Option<(f64, u16, NodeId)> = None;
            let mut chosen: Option<(u16, NodeId)> = None;
            for &(h, child) in &node.children {
                let m = barycentric::child_min_coord(&lambda, mu, h as usize);
                if self.config.descent == DescentRule::FirstContaining
                    && m >= -self.config.domain_tol
                {
                    chosen = Some((h, child));
                    break;
                }
                if best.is_none_or(|(bm, _, _)| m > bm) {
                    best = Some((m, h, child));
                }
            }
            let (h, child) = chosen.unwrap_or_else(|| {
                let (_, h, child) = best.expect("inner node has at least one child");
                (h, child)
            });
            barycentric::child_coords_into(&lambda, mu, h as usize, &mut next);
            std::mem::swap(&mut lambda, &mut next);
            node_id = child;
            visited += 1;
        }
    }

    /// Predict the optimal query parameters for `q` (the paper's `Mopt`).
    ///
    /// Interpolates the flat OQP values stored at the enclosing leaf's
    /// vertices with the query's barycentric coordinates — the unbalanced
    /// Haar evaluation of §4.2.
    pub fn predict(&self, q: &[f64]) -> Result<Prediction> {
        let hit = self.lookup(q)?;
        let oqp = self.interpolate_at(&hit);
        Ok(Prediction {
            oqp,
            nodes_visited: hit.nodes_visited,
        })
    }

    /// Interpolate the OQP at an already-computed leaf hit.
    pub fn interpolate_at(&self, hit: &LeafHit) -> Oqp {
        let node = &self.nodes[hit.node as usize];
        let values: Vec<&[f64]> = node
            .verts
            .iter()
            .map(|&v| &*self.vertices[v as usize].value)
            .collect();
        let mut flat = vec![0.0; self.layout.flat_len()];
        barycentric::interpolate(&values, &hit.lambda, &mut flat);
        Oqp::decode(&flat, &self.layout, self.config.weight_scale)
    }

    /// Store the converged OQPs for query point `q` (paper's `Insert`).
    ///
    /// Follows Figure 8: predict first; if the prediction already matches
    /// `oqp` within the ε thresholds, store nothing. Otherwise split the
    /// enclosing leaf at `q` (or update in place when `q` is an
    /// already-stored vertex).
    pub fn insert(&mut self, q: &[f64], oqp: &Oqp) -> Result<InsertOutcome> {
        if oqp.layout() != self.layout {
            return Err(TreeError::DimMismatch {
                expected: self.layout.flat_len(),
                got: oqp.layout().flat_len(),
            });
        }
        let hit = self.lookup(q)?;
        let predicted = self.interpolate_at(&hit);
        let delta_diff = predicted.max_delta_diff(oqp);
        let weight_diff = predicted.max_weight_diff(oqp);
        if delta_diff <= self.config.delta_eps && weight_diff <= self.config.weight_eps {
            self.skips += 1;
            return Ok(InsertOutcome::Skipped {
                delta_diff,
                weight_diff,
            });
        }
        let encoded: Box<[f64]> = oqp.encode(self.config.weight_scale).into_boxed_slice();
        match split::split_children(&hit.lambda, self.config.vertex_snap_tol) {
            split::SplitOutcome::AtVertex(h) => {
                let vid = self.nodes[hit.node as usize].verts[h];
                let vert = &mut self.vertices[vid as usize];
                vert.value = encoded;
                if vert.synthetic {
                    // A feedback point landed exactly on a synthetic corner:
                    // it now carries real information.
                    vert.synthetic = false;
                    self.stored_points += 1;
                } else {
                    self.updates += 1;
                }
                Ok(InsertOutcome::UpdatedVertex)
            }
            split::SplitOutcome::Split(hs) => {
                debug_assert!(!hs.is_empty(), "lookup returned a non-containing leaf");
                let new_vid = self.vertices.len() as VertexId;
                self.vertices.push(Vertex {
                    point: q.to_vec().into_boxed_slice(),
                    value: encoded,
                    synthetic: false,
                });
                let parent_verts = self.nodes[hit.node as usize].verts.clone();
                let mut children = Vec::with_capacity(hs.len());
                for &h in &hs {
                    let mut verts = parent_verts.clone();
                    verts[h] = new_vid;
                    let child_id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::leaf(verts));
                    children.push((h as u16, child_id));
                }
                let n_children = children.len();
                let parent = &mut self.nodes[hit.node as usize];
                parent.children = children;
                parent.split_mu = Some(hit.lambda.clone().into_boxed_slice());
                parent.split_vertex = Some(new_vid);
                self.stored_points += 1;
                Ok(InsertOutcome::Split {
                    children: n_children,
                })
            }
        }
    }

    /// Exact stored OQP of the vertex nearest to `q`, if `q` coincides with
    /// a stored vertex within `tol` (∞-norm on the point coordinates).
    ///
    /// This is the *AlreadySeen* fast path: for a stored query the
    /// prediction equals the stored parameters exactly, so systems may skip
    /// interpolation altogether.
    pub fn stored_exact(&self, q: &[f64], tol: f64) -> Option<Oqp> {
        let hit = self.lookup(q).ok()?;
        let node = &self.nodes[hit.node as usize];
        for (&vid, &l) in node.verts.iter().zip(hit.lambda.iter()) {
            if l >= 1.0 - self.config.vertex_snap_tol {
                let v = &self.vertices[vid as usize];
                if !v.synthetic
                    && v.point
                        .iter()
                        .zip(q.iter())
                        .all(|(a, b)| (a - b).abs() <= tol)
                {
                    return Some(Oqp::decode(
                        &v.value,
                        &self.layout,
                        self.config.weight_scale,
                    ));
                }
            }
        }
        None
    }

    /// Check structural invariants; returns a description of the first
    /// violation. Used by tests and after deserialization.
    pub fn verify_invariants(&self) -> std::result::Result<(), String> {
        let vcount = self.vertices.len();
        let d1 = self.dim + 1;
        for v in &self.vertices {
            if v.point.len() != self.dim {
                return Err(format!(
                    "vertex point dim {} != {}",
                    v.point.len(),
                    self.dim
                ));
            }
            if v.value.len() != self.layout.flat_len() {
                return Err(format!(
                    "vertex value len {} != {}",
                    v.value.len(),
                    self.layout.flat_len()
                ));
            }
        }
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let Some(node) = self.nodes.get(id as usize) else {
                return Err(format!("dangling node id {id}"));
            };
            if std::mem::replace(&mut reachable[id as usize], true) {
                return Err(format!("node {id} reachable twice (cycle or shared child)"));
            }
            if node.verts.len() != d1 {
                return Err(format!("node {id} has {} vertices", node.verts.len()));
            }
            if node.verts.iter().any(|&v| v as usize >= vcount) {
                return Err(format!("node {id} references a dangling vertex"));
            }
            if node.is_leaf() {
                if node.split_mu.is_some() || node.split_vertex.is_some() {
                    return Err(format!("leaf {id} carries split metadata"));
                }
            } else {
                let Some(mu) = node.split_mu.as_deref() else {
                    return Err(format!("inner node {id} missing split_mu"));
                };
                if mu.len() != d1 {
                    return Err(format!("node {id} split_mu length {}", mu.len()));
                }
                let sum: f64 = mu.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(format!("node {id} split_mu sums to {sum}"));
                }
                let Some(sv) = node.split_vertex else {
                    return Err(format!("inner node {id} missing split_vertex"));
                };
                if sv as usize >= vcount {
                    return Err(format!("node {id} split_vertex dangling"));
                }
                let mut seen_h = std::collections::HashSet::new();
                for &(h, child) in &node.children {
                    if h as usize >= d1 {
                        return Err(format!("node {id} child position {h} out of range"));
                    }
                    if !seen_h.insert(h) {
                        return Err(format!("node {id} duplicate child position {h}"));
                    }
                    if mu[h as usize] <= 0.0 {
                        return Err(format!(
                            "node {id} child at position {h} has non-positive μ"
                        ));
                    }
                    let Some(cnode) = self.nodes.get(child as usize) else {
                        return Err(format!("node {id} dangling child {child}"));
                    };
                    // The child must equal the parent with vertex h replaced.
                    for (i, (&pv, &cv)) in node.verts.iter().zip(cnode.verts.iter()).enumerate() {
                        if i == h as usize {
                            if cv != sv {
                                return Err(format!(
                                    "node {id} child {child} position {h} is not the split vertex"
                                ));
                            }
                        } else if pv != cv {
                            return Err(format!("node {id} child {child} vertex {i} mismatch"));
                        }
                    }
                    stack.push(child);
                }
            }
        }
        if let Some(unreached) = reachable.iter().position(|&r| !r) {
            return Err(format!("node {unreached} unreachable from root"));
        }
        Ok(())
    }

    /// Iterate stored (non-synthetic) vertices as `(point, decoded OQP)`.
    pub fn stored_vertices(&self) -> impl Iterator<Item = (&[f64], Oqp)> + '_ {
        self.vertices.iter().filter(|v| !v.synthetic).map(|v| {
            (
                &*v.point,
                Oqp::decode(&v.value, &self.layout, self.config.weight_scale),
            )
        })
    }

    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }

    /// Internal constructor for persistence: rebuild from raw parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw_parts(
        root_shape: RootSimplex,
        layout: OqpLayout,
        config: TreeConfig,
        nodes: Vec<Node>,
        vertices: Vec<Vertex>,
        stored_points: u64,
        updates: u64,
        skips: u64,
    ) -> Result<Self> {
        let dim = root_shape.dim();
        let tree = SimplexTree {
            dim,
            layout,
            config,
            root_shape,
            nodes,
            vertices,
            root: 0,
            stored_points,
            updates,
            skips,
        };
        tree.verify_invariants().map_err(TreeError::Corrupt)?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_tree() -> SimplexTree {
        SimplexTree::new(
            RootSimplex::standard(2),
            OqpLayout::new(2, 2),
            TreeConfig::default(),
        )
        .unwrap()
    }

    fn oqp(d: [f64; 2], w: [f64; 2]) -> Oqp {
        Oqp {
            delta: d.to_vec(),
            weights: w.to_vec(),
        }
    }

    #[test]
    fn empty_tree_predicts_defaults_everywhere() {
        let tree = tri_tree();
        for q in [[0.1, 0.1], [0.5, 0.4], [0.0, 0.0], [0.98, 0.01]] {
            let p = tree.predict(&q).unwrap();
            assert_eq!(p.oqp, Oqp::default_for(tree.layout()));
            assert_eq!(p.nodes_visited, 1);
        }
    }

    #[test]
    fn out_of_domain_rejected() {
        let tree = tri_tree();
        assert!(matches!(
            tree.predict(&[0.7, 0.7]),
            Err(TreeError::OutOfDomain { .. })
        ));
        assert!(matches!(
            tree.predict(&[-0.2, 0.1]),
            Err(TreeError::OutOfDomain { .. })
        ));
        assert!(matches!(
            tree.predict(&[0.1]),
            Err(TreeError::DimMismatch { .. })
        ));
    }

    #[test]
    fn insert_then_exact_prediction_at_vertex() {
        let mut tree = tri_tree();
        let learned = oqp([0.05, -0.01], [4.0, 0.25]);
        let out = tree.insert(&[0.3, 0.3], &learned).unwrap();
        assert_eq!(out, InsertOutcome::Split { children: 3 });
        assert_eq!(tree.stored_points(), 1);
        // AlreadySeen: prediction at the stored point is exact.
        let p = tree.predict(&[0.3, 0.3]).unwrap();
        assert!(p.oqp.max_component_diff(&learned) < 1e-9);
        // stored_exact also finds it.
        let exact = tree.stored_exact(&[0.3, 0.3], 1e-12).unwrap();
        assert!(exact.max_component_diff(&learned) < 1e-12);
        assert!(tree.stored_exact(&[0.31, 0.3], 1e-12).is_none());
    }

    #[test]
    fn epsilon_criterion_skips_redundant_inserts() {
        let mut tree = tri_tree();
        let learned = oqp([0.05, -0.01], [4.0, 0.25]);
        tree.insert(&[0.3, 0.3], &learned).unwrap();
        // Re-inserting identical parameters at the same point is skipped.
        let out = tree.insert(&[0.3, 0.3], &learned).unwrap();
        assert!(matches!(out, InsertOutcome::Skipped { .. }));
        assert_eq!(tree.skip_count(), 1);
        // Inserting the default OQP anywhere in a default tree is skipped.
        let mut fresh = tri_tree();
        let out = fresh
            .insert(&[0.2, 0.2], &Oqp::default_for(fresh.layout()))
            .unwrap();
        assert!(matches!(out, InsertOutcome::Skipped { .. }));
        assert_eq!(fresh.node_count(), 1);
    }

    #[test]
    fn reinsert_at_vertex_updates_in_place() {
        let mut tree = tri_tree();
        tree.insert(&[0.3, 0.3], &oqp([0.05, 0.0], [4.0, 1.0]))
            .unwrap();
        let nodes_before = tree.node_count();
        let better = oqp([0.1, 0.1], [8.0, 0.5]);
        let out = tree.insert(&[0.3, 0.3], &better).unwrap();
        assert_eq!(out, InsertOutcome::UpdatedVertex);
        assert_eq!(tree.node_count(), nodes_before, "no new simplices");
        assert_eq!(tree.update_count(), 1);
        let p = tree.predict(&[0.3, 0.3]).unwrap();
        assert!(p.oqp.max_component_diff(&better) < 1e-9);
    }

    #[test]
    fn interpolation_blends_toward_default_at_corners() {
        let mut tree = tri_tree();
        let learned = oqp([0.0, 0.0], [9.0, 9.0]);
        tree.insert(&[0.25, 0.25], &learned).unwrap();
        // Halfway between the stored point and a default corner the
        // weights interpolate between 9 and 1.
        let p = tree.predict(&[0.125, 0.125]).unwrap();
        assert!(p.oqp.weights[0] > 1.0 && p.oqp.weights[0] < 9.0);
        // At a root corner, the default is untouched.
        let p0 = tree.predict(&[0.0, 0.0]).unwrap();
        assert!((p0.oqp.weights[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deep_descent_and_stats() {
        let mut tree = tri_tree();
        let mut cfg_points = Vec::new();
        // Insert a ladder of points, each inside the previous split.
        let mut x = 0.3;
        for i in 0..8 {
            let q = [x, 0.3];
            let o = oqp([0.01 * (i as f64 + 1.0), 0.0], [1.0 + i as f64, 1.0]);
            tree.insert(&q, &o).unwrap();
            cfg_points.push(q);
            x *= 0.6;
        }
        assert_eq!(tree.stored_points(), 8);
        tree.verify_invariants().unwrap();
        // Lookups visit more than one node now.
        let hit = tree.lookup(&[0.001, 0.29]).unwrap();
        assert!(hit.nodes_visited > 1);
        // All stored points still predict exactly.
        for (i, q) in cfg_points.iter().enumerate() {
            let p = tree.predict(q).unwrap();
            assert!(
                (p.oqp.weights[0] - (1.0 + i as f64)).abs() < 1e-6,
                "point {i}: {:?}",
                p.oqp
            );
        }
    }

    #[test]
    fn face_insert_creates_partial_split() {
        let mut tree = tri_tree();
        // Point on the hypotenuse edge (λ₀ = 0): only 2 proper children.
        let out = tree
            .insert(&[0.5, 0.5], &oqp([0.02, 0.02], [2.0, 2.0]))
            .unwrap();
        assert_eq!(out, InsertOutcome::Split { children: 2 });
        tree.verify_invariants().unwrap();
        // Lookups around the edge still work.
        for q in [[0.45, 0.45], [0.6, 0.39], [0.2, 0.75]] {
            tree.lookup(&q).unwrap();
        }
    }

    #[test]
    fn boundary_point_lookup_is_deterministic() {
        let mut tree = tri_tree();
        tree.insert(&[0.25, 0.25], &oqp([0.1, 0.0], [2.0, 1.0]))
            .unwrap();
        // The inserted point itself lies on the boundary of all three
        // children; lookup must pick exactly one and interpolation must
        // still be exact there.
        let hit1 = tree.lookup(&[0.25, 0.25]).unwrap();
        let hit2 = tree.lookup(&[0.25, 0.25]).unwrap();
        assert_eq!(hit1.node, hit2.node);
        let p = tree.predict(&[0.25, 0.25]).unwrap();
        assert!((p.oqp.delta[0] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn log_scale_weights_stay_positive() {
        let cfg = TreeConfig {
            weight_scale: WeightScale::Log,
            ..TreeConfig::default()
        };
        let mut tree =
            SimplexTree::new(RootSimplex::standard(2), OqpLayout::new(2, 2), cfg).unwrap();
        tree.insert(&[0.3, 0.3], &oqp([0.0, 0.0], [100.0, 0.01]))
            .unwrap();
        for q in [[0.1, 0.1], [0.3, 0.31], [0.29, 0.3]] {
            let p = tree.predict(&q).unwrap();
            assert!(p.oqp.weights.iter().all(|&w| w > 0.0), "{:?}", p.oqp);
        }
    }

    #[test]
    fn dim_mismatch_on_insert() {
        let mut tree = tri_tree();
        let bad = Oqp {
            delta: vec![0.0; 3],
            weights: vec![1.0; 2],
        };
        assert!(matches!(
            tree.insert(&[0.1, 0.1], &bad),
            Err(TreeError::DimMismatch { .. })
        ));
    }

    #[test]
    fn stored_points_accumulate_and_invariants_hold() {
        let mut tree = tri_tree();
        let pts = [
            [0.1, 0.2],
            [0.4, 0.1],
            [0.2, 0.5],
            [0.05, 0.05],
            [0.33, 0.33],
            [0.6, 0.2],
            [0.15, 0.7],
        ];
        for (i, q) in pts.iter().enumerate() {
            tree.insert(q, &oqp([0.01 * i as f64, 0.0], [1.0 + i as f64, 2.0]))
                .unwrap();
        }
        tree.verify_invariants().unwrap();
        assert_eq!(tree.stored_points(), pts.len() as u64);
        assert_eq!(tree.stored_vertices().count(), pts.len());
        // Every stored vertex predicts its own OQP exactly.
        let stored: Vec<(Vec<f64>, Oqp)> = tree
            .stored_vertices()
            .map(|(p, o)| (p.to_vec(), o))
            .collect();
        for (p, o) in stored {
            let pred = tree.predict(&p).unwrap();
            assert!(
                pred.oqp.max_component_diff(&o) < 1e-6,
                "at {p:?}: {:?} vs {o:?}",
                pred.oqp
            );
        }
    }
}
