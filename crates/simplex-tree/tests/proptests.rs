//! Property-based tests for the Simplex Tree.
//!
//! These check the paper-level contracts: lookups always land in a leaf
//! containing the point, predictions at stored vertices are exact
//! (AlreadySeen identity), the ε-criterion controls storage, and trees
//! survive serialization byte-for-byte semantically.

use fbp_geometry::RootSimplex;
use fbp_simplex_tree::{Oqp, OqpLayout, SimplexTree, TreeConfig, WeightScale};
use proptest::prelude::*;

const DIM: usize = 3;

/// Strategy: a point strictly inside the standard simplex in R^3.
fn interior_point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.02..1.0f64, DIM + 1).prop_map(|raw| {
        let s: f64 = raw.iter().sum();
        raw[..DIM].iter().map(|x| x / s).collect()
    })
}

fn arb_oqp() -> impl Strategy<Value = Oqp> {
    (
        prop::collection::vec(-0.2..0.2f64, DIM),
        prop::collection::vec(0.05..20.0f64, DIM),
    )
        .prop_map(|(delta, weights)| Oqp { delta, weights })
}

fn fresh_tree(scale: WeightScale) -> SimplexTree {
    let cfg = TreeConfig {
        weight_scale: scale,
        ..TreeConfig::default()
    };
    SimplexTree::new(RootSimplex::standard(DIM), OqpLayout::new(DIM, DIM), cfg).unwrap()
}

proptest! {
    #[test]
    fn lookup_always_contains_the_point(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..25),
        probes in prop::collection::vec(interior_point(), 10),
    ) {
        let mut tree = fresh_tree(WeightScale::Raw);
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        tree.verify_invariants().unwrap();
        for q in &probes {
            let hit = tree.lookup(q).unwrap();
            // Coordinates must certify containment (within tolerance) and
            // sum to one.
            let min = hit.lambda.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(min >= -1e-6, "min coord {min}");
            let sum: f64 = hit.lambda.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
            prop_assert!(hit.nodes_visited >= 1);
        }
    }

    #[test]
    fn stored_vertices_predict_exactly(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..20),
    ) {
        let mut tree = fresh_tree(WeightScale::Raw);
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        // Whatever ended up stored must be reproduced exactly (the paper's
        // AlreadySeen case). Points may have been skipped or updated, so we
        // iterate over the tree's own record of stored vertices.
        let stored: Vec<(Vec<f64>, Oqp)> = tree
            .stored_vertices()
            .map(|(p, o)| (p.to_vec(), o))
            .collect();
        prop_assert!(!stored.is_empty());
        for (p, o) in stored {
            let pred = tree.predict(&p).unwrap();
            prop_assert!(
                pred.oqp.max_component_diff(&o) < 1e-6,
                "stored {o:?}, predicted {:?}", pred.oqp
            );
        }
    }

    #[test]
    fn predictions_are_convex_combinations(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..15),
        probes in prop::collection::vec(interior_point(), 5),
    ) {
        // Interpolated weights must stay within the range spanned by the
        // stored values (plus the default 1.0 at synthetic corners).
        let mut tree = fresh_tree(WeightScale::Raw);
        let mut lo = 1.0f64;
        let mut hi = 1.0f64;
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
            for &w in &o.weights {
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        for q in &probes {
            let p = tree.predict(q).unwrap();
            for &w in &p.oqp.weights {
                prop_assert!(w >= lo - 1e-6 && w <= hi + 1e-6,
                    "weight {w} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn log_scale_always_positive(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..15),
        probes in prop::collection::vec(interior_point(), 5),
    ) {
        let mut tree = fresh_tree(WeightScale::Log);
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        for q in &probes {
            let p = tree.predict(q).unwrap();
            prop_assert!(p.oqp.weights.iter().all(|&w| w > 0.0));
        }
    }

    #[test]
    fn huge_epsilon_stores_nothing(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..15),
    ) {
        let cfg = TreeConfig {
            delta_eps: 1e9,
            weight_eps: 1e9,
            ..TreeConfig::default()
        };
        let mut tree = SimplexTree::new(
            RootSimplex::standard(DIM),
            OqpLayout::new(DIM, DIM),
            cfg,
        )
        .unwrap();
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        prop_assert_eq!(tree.stored_points(), 0);
        prop_assert_eq!(tree.node_count(), 1);
        prop_assert_eq!(tree.skip_count(), inserts.len() as u64);
    }

    #[test]
    fn persistence_roundtrip_semantics(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..20),
        probes in prop::collection::vec(interior_point(), 5),
    ) {
        let mut tree = fresh_tree(WeightScale::Raw);
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        let image = tree.to_bytes();
        let back = SimplexTree::from_bytes(&image).unwrap();
        for q in &probes {
            let a = tree.predict(q).unwrap();
            let b = back.predict(q).unwrap();
            prop_assert!(a.oqp.max_component_diff(&b.oqp) < 1e-15);
        }
        prop_assert_eq!(back.to_bytes(), image, "round-trip must be byte-stable");
    }

    #[test]
    fn shape_metrics_are_consistent(
        inserts in prop::collection::vec((interior_point(), arb_oqp()), 1..30),
    ) {
        let mut tree = fresh_tree(WeightScale::Raw);
        for (q, o) in &inserts {
            tree.insert(q, o).unwrap();
        }
        let shape = tree.shape();
        prop_assert!(shape.leaf_count <= shape.node_count);
        prop_assert!(shape.depth >= 1);
        prop_assert!(shape.mean_leaf_depth <= shape.depth as f64 + 1e-12);
        prop_assert_eq!(shape.stored_points, tree.stored_points());
        // Arena is fully reachable (no leaked nodes).
        tree.verify_invariants().unwrap();
        // Every lookup's visit count is bounded by the depth.
        let hit = tree.lookup(&[0.2, 0.2, 0.2]).unwrap();
        prop_assert!(hit.nodes_visited <= shape.depth);
    }
}
