//! Observability primitives for the serving tier.
//!
//! The one export that matters is [`LogHistogram`]: a fixed-memory,
//! lock-free, mergeable latency histogram in the HdrHistogram family.
//! It replaces the mutex-guarded sample rings the server and the load
//! generator used to keep — a ring answers "p99 of the last N samples"
//! by cloning and sorting N values under a lock, which is both a hot-
//! path contention point and a recency filter nobody asked for. The
//! histogram answers the same question over *every* sample recorded,
//! with one relaxed `fetch_add` per record and no lock anywhere.
//!
//! # Bucketing scheme
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) map to
//! buckets log-linearly: [`SUB_BUCKETS`] = 2^[`SUB_BITS`] linear
//! sub-buckets per power-of-two octave.
//!
//! - Values below [`SUB_BUCKETS`] get an exact bucket each (`v → v`).
//! - A value with most-significant bit `m ≥` [`SUB_BITS`] lands in
//!   octave `m − SUB_BITS + 1`, sub-bucket `(v >> (m − SUB_BITS)) −
//!   SUB_BUCKETS` — i.e. the octave `[2^m, 2^{m+1})` is split into
//!   `SUB_BUCKETS` equal slices.
//!
//! Every `u64` value has a bucket; the whole table is [`BUCKETS`]
//! (= 7424) `AtomicU64`s, about 58 KiB per histogram, allocated once.
//!
//! # Error bound
//!
//! A bucket in octave `m` spans `2^{m-SUB_BITS}` values starting at
//! `≥ 2^m`, so reporting any fixed point of a bucket mis-states a
//! member value by at most `width / lower_edge = 1 /` [`SUB_BUCKETS`].
//! Quantile queries report the bucket's **upper edge** (never under-
//! reports a latency), giving the documented bound
//! [`RELATIVE_ERROR_BOUND`] `= 1/128 < 0.8%` relative to the exact
//! nearest-rank sample. Values below [`SUB_BUCKETS`] are exact. The
//! proptest suite pins this bound against a literal sort.
//!
//! # Concurrency
//!
//! All mutation is `fetch_add`/`fetch_max` with `Ordering::Relaxed`:
//! recorders never synchronize with each other or with readers. A
//! reader scanning buckets concurrently with writers sees *some*
//! interleaving — counts it sums are each individually consistent, the
//! total may lag `count()` by in-flight records. That is the right
//! trade for a stats path: quantiles over millions of samples do not
//! care about a handful of stragglers, and the hot path pays nothing.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the linear sub-bucket count per octave.
pub const SUB_BITS: u32 = 7;

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count: one exact bucket per value below [`SUB_BUCKETS`],
/// then [`SUB_BUCKETS`] per octave for the remaining `64 −` [`SUB_BITS`]
/// octaves of `u64` range.
pub const BUCKETS: usize = ((64 - SUB_BITS as u64 + 1) * SUB_BUCKETS) as usize;

/// Guaranteed bound on the relative error of [`LogHistogram::quantile`]
/// versus the exact nearest-rank sample: the reported value `r` and the
/// exact value `e` always satisfy `e ≤ r ≤ e × (1 + RELATIVE_ERROR_BOUND)`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB_BUCKETS as f64;

/// Bucket index for a value. Total and monotone: `a ≤ b` implies
/// `bucket_index(a) ≤ bucket_index(b)` (pinned by proptest).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((shift as u64 + 1) * SUB_BUCKETS + ((v >> shift) - SUB_BUCKETS)) as usize
    }
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
///
/// Bucket ranges partition `u64`: bucket `i+1`'s lower edge is bucket
/// `i`'s upper edge plus one, bucket 0 starts at 0, and the last bucket
/// ends at `u64::MAX`.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_BUCKETS {
        (i, i)
    } else {
        let shift = (i / SUB_BUCKETS - 1) as u32;
        let lower = (SUB_BUCKETS + i % SUB_BUCKETS) << shift;
        // Parenthesized so the top bucket's `lower + 2^shift` cannot
        // overflow before the −1 lands (its upper edge is u64::MAX).
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// Lock-free log-linear histogram: fixed memory, relaxed-atomic
/// buckets, mergeable, quantile error ≤ [`RELATIVE_ERROR_BOUND`].
/// See the module docs for the scheme and its guarantees.
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram. Allocates the full bucket table ([`BUCKETS`]
    /// `AtomicU64`s, ~58 KiB) up front so recording never allocates.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        LogHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (one `fetch_add` per aggregate, all relaxed —
    /// safe from any thread, never blocks).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as whole nanoseconds (saturating at `u64::MAX`
    /// — ~584 years, a latency nobody is waiting out).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Largest value recorded (0 when empty). Exact, not bucketed.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (`None` when empty). Exact up to the
    /// `u64` sum wrapping, which at nanosecond scale needs ~584 years
    /// of cumulative recorded latency.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum.load(Ordering::Relaxed) as f64 / n as f64)
    }

    /// Nearest-rank `q`-quantile (`0.0 ≤ q ≤ 1.0`) of everything
    /// recorded, or `None` when empty. Reports the containing bucket's
    /// upper edge, so the result never understates the exact sample and
    /// overstates it by at most [`RELATIVE_ERROR_BOUND`]. The rank is
    /// `round((count − 1) × q)` — the same nearest-rank definition the
    /// pre-histogram sorted-ring percentile used, so reports stayed
    /// comparable across the switch.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen > rank {
                return Some(bucket_bounds(i).1.min(self.max()));
            }
        }
        // Writers may have bumped `count` before their bucket increment
        // landed; the highest non-empty bucket is the right answer.
        Some(self.max())
    }

    /// [`quantile`](Self::quantile) in microseconds, 0.0 when empty —
    /// the shape every stats report uses.
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.quantile(q).map_or(0.0, |ns| ns as f64 / 1_000.0)
    }

    /// Fold another histogram into this one bucket-wise. Merging is
    /// associative and commutative (pinned by proptest): a merged
    /// histogram answers quantiles exactly as if every constituent
    /// sample had been recorded here directly.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Per-bucket counts (index ↔ [`bucket_bounds`]); test/merge
    /// support, not a hot path.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 2, 17, 127] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(127));
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 127);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        let mut prev_upper = bucket_bounds(0).1;
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_upper + 1, "bucket {i} lower edge");
            assert!(hi >= lo);
            prev_upper = hi;
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                break;
            }
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn index_and_bounds_agree() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            255,
            256,
            1_000,
            65_535,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} [{lo},{hi}]");
        }
    }

    #[test]
    fn quantile_matches_ring_percentile_within_bound() {
        // The exact distribution the old metrics test used: 3×100µs +
        // 1×900µs queue waits.
        let h = LogHistogram::new();
        for _ in 0..3 {
            h.record_duration(Duration::from_micros(100));
        }
        h.record_duration(Duration::from_micros(900));
        let p50 = h.quantile_us(0.50);
        let p99 = h.quantile_us(0.99);
        assert!((p50 - 100.0).abs() / 100.0 <= RELATIVE_ERROR_BOUND);
        assert!((p99 - 900.0).abs() / 900.0 <= RELATIVE_ERROR_BOUND);
        assert!(p50 >= 100.0 && p99 >= 900.0, "upper-edge: never under");
    }

    #[test]
    fn merge_equals_direct_recording() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let direct = LogHistogram::new();
        for v in 0..1000u64 {
            let v = v * v;
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            direct.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), direct.count());
        assert_eq!(a.max(), direct.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 40_000);
        assert_eq!(h.max(), 39_999);
    }
}
