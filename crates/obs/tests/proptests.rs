//! Property-based pins for the histogram's three contracts: merge
//! associativity (bucket-wise and observable), bucket-bound
//! monotonicity/partitioning, and the documented quantile error bound
//! versus an exact sort.

use fbp_obs::{bucket_bounds, bucket_index, LogHistogram, BUCKETS, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> LogHistogram {
    let h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Exact nearest-rank quantile by literal sort — the oracle.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut s = samples.to_vec();
    s.sort_unstable();
    let idx = ((s.len() - 1) as f64 * q).round() as usize;
    s[idx]
}

fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix scales: exact small values, microsecond-ish, and huge —
    // latencies in nanoseconds span all of these.
    (
        prop::collection::vec(0u64..4096, 1..80),
        prop::collection::vec(1_000u64..10_000_000, 0..80),
        prop::collection::vec(0u64..u64::MAX, 0..40),
    )
        .prop_map(|(a, b, c)| a.into_iter().chain(b).chain(c).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_index_is_monotone_and_consistent(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        // Each value lies inside its own bucket's bounds.
        for v in [lo, hi] {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            let (bl, bu) = bucket_bounds(i);
            prop_assert!(bl <= v && v <= bu, "v={} bucket={} [{},{}]", v, i, bl, bu);
        }
    }

    #[test]
    fn bucket_width_respects_error_bound(v in 256u64..u64::MAX) {
        // Above the exact region, every bucket's width/lower ratio is
        // within the documented relative error bound.
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo > 0);
        prop_assert!((hi - lo) as f64 / lo as f64 <= RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        xs in samples_strategy(),
        ys in samples_strategy(),
        zs in samples_strategy(),
    ) {
        // (x ⊔ y) ⊔ z  ==  x ⊔ (y ⊔ z)  ==  record-everything-directly,
        // compared bucket-wise (the strongest observable equality).
        let left = hist_of(&xs);
        left.merge_from(&hist_of(&ys));
        left.merge_from(&hist_of(&zs));

        let yz = hist_of(&ys);
        yz.merge_from(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge_from(&yz);

        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let direct = hist_of(&all);

        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.bucket_counts(), direct.bucket_counts());
        prop_assert_eq!(left.count(), direct.count());
        prop_assert_eq!(left.max(), direct.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn quantile_error_within_documented_bound(
        samples in samples_strategy(),
        q in 0.0..=1.0f64,
    ) {
        let h = hist_of(&samples);
        let got = h.quantile(q).expect("non-empty");
        let exact = exact_quantile(&samples, q);
        // Upper-edge reporting: never under, over by ≤ the bound.
        prop_assert!(got >= exact, "got {} < exact {}", got, exact);
        let err = (got - exact) as f64;
        prop_assert!(
            err <= exact as f64 * RELATIVE_ERROR_BOUND,
            "q={}: got {}, exact {}, rel err {} > bound {}",
            q, got, exact,
            if exact > 0 { err / exact as f64 } else { err },
            RELATIVE_ERROR_BOUND
        );
    }

    #[test]
    fn count_and_extremes_are_exact(samples in samples_strategy()) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
        prop_assert_eq!(h.quantile(1.0), Some(*samples.iter().max().unwrap()));
    }
}
