//! Tests for the veil overlay (kept as an experimentation API after the
//! negative result documented in EXPERIMENTS.md).

use fbp_imagegen::painter::apply_veil;
use fbp_imagegen::{extract_histogram, HistogramConfig, Image, Rgb};
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn veil_moves_mass_into_low_saturation_row() {
    let cfg = HistogramConfig::default();
    // Fully saturated red image: all mass in bin 3 (hue 0, sat row 3).
    let mut img = Image::solid(32, 32, Rgb::new(1.0, 0.0, 0.0));
    let before = extract_histogram(&img, &cfg);
    assert!((before[3] - 1.0).abs() < 1e-12);

    let mut rng = StdRng::seed_from_u64(5);
    apply_veil(&mut img, 0.5, &mut rng);
    let after = extract_histogram(&img, &cfg);
    // Saturated-red mass shrank; low-saturation row (s_idx = 0 across all
    // hue bins) gained.
    assert!(after[3] < before[3]);
    let low_sat_mass: f64 = (0..8).map(|h| after[h * 4]).sum();
    assert!(
        low_sat_mass > 0.2,
        "veil should populate the low-saturation row: {low_sat_mass}"
    );
    // Histogram stays normalized.
    assert!((after.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn veil_fraction_zero_is_identity() {
    let mut img = Image::solid(8, 8, Rgb::new(0.0, 1.0, 0.0));
    let before = img.pixels().to_vec();
    let mut rng = StdRng::seed_from_u64(1);
    apply_veil(&mut img, 0.0, &mut rng);
    assert_eq!(img.pixels(), &before[..]);
}

#[test]
fn veil_fraction_clamped() {
    // Fractions above 1 must not panic and may repaint everything.
    let mut img = Image::solid(8, 8, Rgb::new(0.0, 0.0, 1.0));
    let mut rng = StdRng::seed_from_u64(2);
    apply_veil(&mut img, 5.0, &mut rng);
    let cfg = HistogramConfig::default();
    let h = extract_histogram(&img, &cfg);
    assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}
