//! The seven paper categories with color-coherent sub-themes.
//!
//! Hue reference: red 0°, orange 30°, yellow 60°, green 120°, cyan 180°,
//! blue 220°, purple 280°, pink 320°.
//!
//! Design constraints (see crate docs): categories deliberately *share*
//! color regions (blue skies behind birds, bridges and monuments; green
//! backdrops behind blossoms, leaves and forest mammals) so that plain
//! color search confuses them — the paper's "hard conceptual queries" —
//! while each sub-theme's object colors give the re-weighting loop
//! something to latch onto.

use crate::painter::{ColorDist, SceneSpec};

/// One color-coherent sub-theme of a category (e.g. Fish → "shark").
#[derive(Debug, Clone)]
pub struct SubTheme {
    /// Human-readable name.
    pub name: &'static str,
    /// Scene template painted for images of this sub-theme.
    pub scene: SceneSpec,
}

/// A labelled image category.
#[derive(Debug, Clone)]
pub struct CategorySpec {
    /// Category name (matches the paper's Figure 14 labels).
    pub name: &'static str,
    /// Number of images at paper scale (§5).
    pub paper_count: usize,
    /// Sub-themes; images sample one uniformly.
    pub subthemes: Vec<SubTheme>,
}

fn dist(hue: f64, hue_jitter: f64, sat: (f64, f64), val: (f64, f64)) -> ColorDist {
    ColorDist {
        hue,
        hue_jitter,
        sat,
        val,
    }
}

fn scene(background: ColorDist, objects: Vec<ColorDist>, blob_scale: f64) -> SceneSpec {
    SceneSpec {
        background,
        objects,
        blob_scale,
    }
}

/// The seven categories with the paper's exact member counts.
pub fn paper_categories() -> Vec<CategorySpec> {
    let sky = || dist(215.0, 12.0, (0.35, 0.65), (0.65, 0.95));
    let grass = || dist(115.0, 12.0, (0.45, 0.75), (0.35, 0.7));
    let gray = |v: (f64, f64)| dist(0.0, 180.0, (0.0, 0.08), v);

    vec![
        CategorySpec {
            name: "Bird",
            paper_count: 318,
            subthemes: vec![
                SubTheme {
                    name: "sky-soarer",
                    scene: scene(sky(), vec![gray((0.1, 0.35)), gray((0.75, 0.95))], 0.16),
                },
                SubTheme {
                    name: "forest-songbird",
                    scene: scene(
                        grass(),
                        vec![
                            dist(25.0, 8.0, (0.5, 0.8), (0.3, 0.55)),
                            dist(0.0, 6.0, (0.7, 1.0), (0.5, 0.8)),
                        ],
                        0.18,
                    ),
                },
                SubTheme {
                    name: "waterfowl",
                    scene: scene(
                        dist(195.0, 10.0, (0.3, 0.55), (0.5, 0.8)),
                        vec![gray((0.8, 1.0)), dist(35.0, 8.0, (0.6, 0.9), (0.6, 0.85))],
                        0.2,
                    ),
                },
                SubTheme {
                    name: "parrot",
                    scene: scene(
                        dist(120.0, 12.0, (0.45, 0.75), (0.3, 0.6)),
                        vec![
                            dist(0.0, 6.0, (0.8, 1.0), (0.6, 0.9)),
                            dist(60.0, 6.0, (0.8, 1.0), (0.7, 0.95)),
                        ],
                        0.18,
                    ),
                },
                SubTheme {
                    name: "sunset-flock",
                    scene: scene(
                        dist(28.0, 10.0, (0.55, 0.85), (0.55, 0.85)),
                        vec![gray((0.05, 0.25)), gray((0.05, 0.25))],
                        0.14,
                    ),
                },
            ],
        },
        CategorySpec {
            name: "Fish",
            paper_count: 129,
            subthemes: vec![
                SubTheme {
                    name: "shark",
                    scene: scene(
                        dist(225.0, 8.0, (0.6, 0.9), (0.35, 0.6)),
                        vec![gray((0.45, 0.7))],
                        0.28,
                    ),
                },
                SubTheme {
                    name: "tropical-yellow",
                    scene: scene(
                        dist(210.0, 10.0, (0.5, 0.8), (0.45, 0.7)),
                        vec![
                            dist(55.0, 8.0, (0.8, 1.0), (0.7, 0.95)),
                            dist(55.0, 8.0, (0.8, 1.0), (0.7, 0.95)),
                        ],
                        0.2,
                    ),
                },
                SubTheme {
                    name: "reef-gray",
                    scene: scene(
                        dist(180.0, 12.0, (0.3, 0.55), (0.4, 0.65)),
                        vec![gray((0.5, 0.75)), gray((0.3, 0.5))],
                        0.22,
                    ),
                },
                SubTheme {
                    name: "clownfish-orange",
                    scene: scene(
                        dist(195.0, 10.0, (0.45, 0.7), (0.4, 0.65)),
                        vec![
                            dist(25.0, 6.0, (0.85, 1.0), (0.7, 0.95)),
                            dist(25.0, 6.0, (0.85, 1.0), (0.7, 0.95)),
                        ],
                        0.18,
                    ),
                },
            ],
        },
        CategorySpec {
            name: "Mammal",
            paper_count: 834,
            subthemes: vec![
                SubTheme {
                    name: "savanna",
                    scene: scene(
                        dist(48.0, 10.0, (0.35, 0.6), (0.55, 0.85)),
                        vec![dist(28.0, 8.0, (0.5, 0.8), (0.35, 0.6))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "forest-brown",
                    scene: scene(
                        dist(110.0, 12.0, (0.4, 0.7), (0.3, 0.6)),
                        vec![dist(22.0, 8.0, (0.45, 0.75), (0.3, 0.55))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "arctic",
                    scene: scene(
                        gray((0.8, 1.0)),
                        vec![gray((0.55, 0.8)), gray((0.15, 0.4))],
                        0.24,
                    ),
                },
                SubTheme {
                    name: "plains-tan",
                    scene: scene(
                        dist(40.0, 8.0, (0.3, 0.55), (0.6, 0.9)),
                        vec![dist(32.0, 8.0, (0.45, 0.7), (0.45, 0.7))],
                        0.3,
                    ),
                },
                SubTheme {
                    name: "jungle-dark",
                    scene: scene(
                        dist(125.0, 10.0, (0.5, 0.8), (0.15, 0.4)),
                        vec![dist(18.0, 8.0, (0.4, 0.7), (0.2, 0.45))],
                        0.28,
                    ),
                },
                SubTheme {
                    name: "desert-red",
                    scene: scene(
                        dist(15.0, 8.0, (0.45, 0.7), (0.55, 0.85)),
                        vec![dist(35.0, 8.0, (0.35, 0.6), (0.5, 0.75))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "twilight",
                    scene: scene(
                        dist(260.0, 12.0, (0.35, 0.6), (0.25, 0.5)),
                        vec![dist(0.0, 180.0, (0.0, 0.1), (0.1, 0.3))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "riverbank",
                    scene: scene(
                        dist(170.0, 10.0, (0.35, 0.6), (0.4, 0.7)),
                        vec![dist(24.0, 8.0, (0.5, 0.75), (0.35, 0.6))],
                        0.24,
                    ),
                },
            ],
        },
        CategorySpec {
            name: "Blossom",
            paper_count: 189,
            subthemes: vec![
                SubTheme {
                    name: "red-bloom",
                    scene: scene(
                        grass(),
                        vec![
                            dist(355.0, 8.0, (0.75, 1.0), (0.55, 0.9)),
                            dist(355.0, 8.0, (0.75, 1.0), (0.55, 0.9)),
                        ],
                        0.2,
                    ),
                },
                SubTheme {
                    name: "yellow-bloom",
                    scene: scene(
                        grass(),
                        vec![dist(58.0, 8.0, (0.8, 1.0), (0.7, 0.95))],
                        0.24,
                    ),
                },
                SubTheme {
                    name: "pink-bloom",
                    scene: scene(
                        grass(),
                        vec![
                            dist(320.0, 10.0, (0.55, 0.85), (0.65, 0.95)),
                            dist(320.0, 10.0, (0.55, 0.85), (0.65, 0.95)),
                        ],
                        0.2,
                    ),
                },
                SubTheme {
                    name: "white-bloom",
                    scene: scene(grass(), vec![gray((0.85, 1.0))], 0.22),
                },
            ],
        },
        CategorySpec {
            name: "TreeLeaf",
            paper_count: 575,
            subthemes: vec![
                SubTheme {
                    name: "summer-green",
                    scene: scene(
                        dist(118.0, 10.0, (0.6, 0.9), (0.4, 0.75)),
                        vec![dist(95.0, 8.0, (0.5, 0.8), (0.5, 0.8))],
                        0.24,
                    ),
                },
                SubTheme {
                    name: "autumn",
                    scene: scene(
                        dist(32.0, 10.0, (0.6, 0.9), (0.5, 0.8)),
                        vec![
                            dist(8.0, 8.0, (0.7, 1.0), (0.45, 0.75)),
                            dist(55.0, 8.0, (0.7, 1.0), (0.6, 0.9)),
                        ],
                        0.2,
                    ),
                },
                SubTheme {
                    name: "dark-foliage",
                    scene: scene(
                        dist(135.0, 10.0, (0.55, 0.85), (0.2, 0.45)),
                        vec![dist(120.0, 8.0, (0.5, 0.8), (0.3, 0.55))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "spring-lime",
                    scene: scene(
                        dist(90.0, 10.0, (0.55, 0.85), (0.55, 0.85)),
                        vec![dist(70.0, 8.0, (0.6, 0.9), (0.6, 0.9))],
                        0.24,
                    ),
                },
                SubTheme {
                    name: "wet-leaf",
                    scene: scene(
                        dist(152.0, 10.0, (0.45, 0.75), (0.3, 0.6)),
                        vec![dist(130.0, 8.0, (0.5, 0.8), (0.35, 0.6))],
                        0.26,
                    ),
                },
                SubTheme {
                    name: "backlit",
                    scene: scene(
                        dist(75.0, 10.0, (0.5, 0.8), (0.65, 0.95)),
                        vec![dist(100.0, 8.0, (0.4, 0.7), (0.5, 0.8))],
                        0.22,
                    ),
                },
            ],
        },
        CategorySpec {
            name: "Bridge",
            paper_count: 148,
            subthemes: vec![
                SubTheme {
                    name: "steel-sky",
                    scene: scene(sky(), vec![gray((0.35, 0.6)), gray((0.35, 0.6))], 0.22),
                },
                SubTheme {
                    name: "brick",
                    scene: scene(
                        dist(210.0, 10.0, (0.3, 0.55), (0.7, 0.95)),
                        vec![
                            dist(12.0, 6.0, (0.55, 0.85), (0.35, 0.6)),
                            dist(12.0, 6.0, (0.55, 0.85), (0.35, 0.6)),
                        ],
                        0.22,
                    ),
                },
                SubTheme {
                    name: "sunset-silhouette",
                    scene: scene(
                        dist(25.0, 10.0, (0.6, 0.9), (0.6, 0.9)),
                        vec![gray((0.05, 0.25)), gray((0.05, 0.25))],
                        0.2,
                    ),
                },
            ],
        },
        CategorySpec {
            name: "Monument",
            paper_count: 298,
            subthemes: vec![
                SubTheme {
                    name: "stone-sky",
                    scene: scene(sky(), vec![gray((0.45, 0.7))], 0.3),
                },
                SubTheme {
                    name: "sandstone",
                    scene: scene(
                        dist(205.0, 10.0, (0.3, 0.55), (0.7, 0.95)),
                        vec![dist(42.0, 8.0, (0.4, 0.65), (0.55, 0.85))],
                        0.3,
                    ),
                },
                SubTheme {
                    name: "marble",
                    scene: scene(sky(), vec![gray((0.85, 1.0))], 0.28),
                },
                SubTheme {
                    name: "floodlit-night",
                    scene: scene(
                        dist(235.0, 12.0, (0.4, 0.7), (0.1, 0.3)),
                        vec![dist(45.0, 8.0, (0.5, 0.8), (0.6, 0.9))],
                        0.26,
                    ),
                },
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_match() {
        let cats = paper_categories();
        assert_eq!(cats.len(), 7);
        let by_name: std::collections::HashMap<_, _> =
            cats.iter().map(|c| (c.name, c.paper_count)).collect();
        assert_eq!(by_name["Bird"], 318);
        assert_eq!(by_name["Fish"], 129);
        assert_eq!(by_name["Mammal"], 834);
        assert_eq!(by_name["Blossom"], 189);
        assert_eq!(by_name["TreeLeaf"], 575);
        assert_eq!(by_name["Bridge"], 148);
        assert_eq!(by_name["Monument"], 298);
        let total: usize = cats.iter().map(|c| c.paper_count).sum();
        assert_eq!(total, 2491, "paper: 2,491 labelled images");
    }

    #[test]
    fn every_category_has_multiple_subthemes() {
        // Intra-category color variance is a load-bearing property.
        for c in paper_categories() {
            assert!(
                c.subthemes.len() >= 3,
                "{} has only {} sub-themes",
                c.name,
                c.subthemes.len()
            );
        }
    }

    #[test]
    fn fish_matches_figure_9_description() {
        // "only the 2nd image (shark) has a dominant blue color, whereas
        // others have strong components of yellow, gray, and orange".
        let cats = paper_categories();
        let fish = cats.iter().find(|c| c.name == "Fish").unwrap();
        let names: Vec<&str> = fish.subthemes.iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n.contains("shark")));
        assert!(names.iter().any(|n| n.contains("yellow")));
        assert!(names.iter().any(|n| n.contains("gray")));
        assert!(names.iter().any(|n| n.contains("orange")));
    }
}
