//! Procedural scene painter.
//!
//! A synthetic "photo" is a small RGB raster: a background wash in one
//! HSV region, a few elliptical object blobs in others, and per-pixel
//! jitter. That is enough structure for the HSV histogram to carry a
//! category signal while leaving plenty of intra-category variance — the
//! two dataset properties the evaluation depends on (see crate docs).

use crate::color::{Hsv, Rgb};
use rand::Rng;

/// A rectangular RGB raster.
#[derive(Debug, Clone)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Image {
    /// Solid-colored image.
    pub fn solid(width: usize, height: usize, color: Rgb) -> Self {
        Image {
            width,
            height,
            pixels: vec![color; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Set one pixel.
    pub fn set(&mut self, x: usize, y: usize, color: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = color;
    }

    /// Get one pixel.
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        self.pixels[y * self.width + x]
    }
}

/// A distribution over HSV colors: a mean color plus jitter ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColorDist {
    /// Mean hue (degrees).
    pub hue: f64,
    /// Max absolute hue jitter (degrees).
    pub hue_jitter: f64,
    /// Saturation range `[lo, hi]`.
    pub sat: (f64, f64),
    /// Value range `[lo, hi]`.
    pub val: (f64, f64),
}

impl ColorDist {
    /// Sample one color.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Rgb {
        let h = self.hue + rng.gen_range(-self.hue_jitter..=self.hue_jitter);
        let s = rng.gen_range(self.sat.0..=self.sat.1);
        let v = rng.gen_range(self.val.0..=self.val.1);
        Hsv::new(h, s, v).to_rgb()
    }
}

/// Scene description: background + object blobs.
#[derive(Debug, Clone)]
pub struct SceneSpec {
    /// Background color distribution.
    pub background: ColorDist,
    /// Object blob color distributions (each paints one blob).
    pub objects: Vec<ColorDist>,
    /// Fraction of the image diagonal used as mean blob radius.
    pub blob_scale: f64,
}

impl SceneSpec {
    /// Paint a `width × height` image of this scene.
    pub fn paint<R: Rng>(&self, width: usize, height: usize, rng: &mut R) -> Image {
        let mut img = Image::solid(width, height, Rgb::new(0.0, 0.0, 0.0));
        // Background wash: every pixel sampled independently around the
        // background color (cheap texture).
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, self.background.sample(rng));
            }
        }
        // Elliptical blobs.
        let diag = ((width * width + height * height) as f64).sqrt();
        for obj in &self.objects {
            let cx = rng.gen_range(0.0..width as f64);
            let cy = rng.gen_range(0.0..height as f64);
            let rx = (self.blob_scale * diag * rng.gen_range(0.6..1.4)).max(1.0);
            let ry = (self.blob_scale * diag * rng.gen_range(0.6..1.4)).max(1.0);
            let x_lo = (cx - rx).floor().max(0.0) as usize;
            let x_hi = ((cx + rx).ceil() as usize).min(width);
            let y_lo = (cy - ry).floor().max(0.0) as usize;
            let y_hi = ((cy + ry).ceil() as usize).min(height);
            for y in y_lo..y_hi {
                for x in x_lo..x_hi {
                    let dx = (x as f64 - cx) / rx;
                    let dy = (y as f64 - cy) / ry;
                    if dx * dx + dy * dy <= 1.0 {
                        img.set(x, y, obj.sample(rng));
                    }
                }
            }
        }
        img
    }
}

/// Overlay a desaturated "veil" on a random fraction of pixels.
///
/// Photographs carry shadows, highlights and washed-out regions whose
/// pixels land in the low-saturation histogram row regardless of motif.
/// The veil fraction varies image-to-image, so those bins are noisy for
/// *every* query — feedback learns to downweight them globally, giving
/// the optimal query mapping the smooth global component that lets
/// predictions transfer to unseen queries.
pub fn apply_veil<R: Rng>(img: &mut Image, fraction: f64, rng: &mut R) {
    let n = img.pixels.len();
    let count = ((n as f64) * fraction.clamp(0.0, 1.0)) as usize;
    for _ in 0..count {
        let idx = rng.gen_range(0..n);
        let v = rng.gen_range(0.15..0.97);
        let s = rng.gen_range(0.0..0.12);
        let h = rng.gen_range(0.0..360.0);
        img.pixels[idx] = Hsv::new(h, s, v).to_rgb();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{extract_histogram, HistogramConfig};
    use rand::{rngs::StdRng, SeedableRng};

    fn blue_bg() -> ColorDist {
        ColorDist {
            hue: 220.0,
            hue_jitter: 10.0,
            sat: (0.5, 0.8),
            val: (0.6, 0.9),
        }
    }

    fn red_obj() -> ColorDist {
        ColorDist {
            hue: 0.0,
            hue_jitter: 8.0,
            sat: (0.7, 1.0),
            val: (0.5, 0.9),
        }
    }

    #[test]
    fn image_basics() {
        let mut img = Image::solid(3, 2, Rgb::new(0.1, 0.2, 0.3));
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.pixels().len(), 6);
        img.set(2, 1, Rgb::new(1.0, 1.0, 1.0));
        assert_eq!(img.get(2, 1), Rgb::new(1.0, 1.0, 1.0));
        assert_eq!(img.get(0, 0), Rgb::new(0.1, 0.2, 0.3));
    }

    #[test]
    fn color_dist_sampling_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = blue_bg();
        for _ in 0..100 {
            let hsv = d.sample(&mut rng).to_hsv();
            // Hue within jitter of mean (mod wraparound not hit here).
            assert!((hsv.h - 220.0).abs() <= 10.0 + 1e-6, "hue {}", hsv.h);
            // Saturation/value ranges can shift slightly through the RGB
            // roundtrip, so allow slack.
            assert!(hsv.s >= 0.45 && hsv.s <= 0.85);
        }
    }

    #[test]
    fn painted_scene_is_dominated_by_background() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SceneSpec {
            background: blue_bg(),
            objects: vec![red_obj()],
            blob_scale: 0.15,
        };
        let img = spec.paint(32, 32, &mut rng);
        let hist = extract_histogram(&img, &HistogramConfig::default());
        // Blue hue bin (220° → bin 4 of 8) collects more mass than red
        // (bin 0), but red is present.
        let blue_mass: f64 = (16..20).map(|i| hist[i]).sum();
        let red_mass: f64 = (0..4).map(|i| hist[i]).sum();
        assert!(blue_mass > red_mass, "blue {blue_mass} vs red {red_mass}");
        assert!(red_mass > 0.0, "object blob must be visible");
    }

    #[test]
    fn same_spec_same_seed_is_deterministic() {
        let spec = SceneSpec {
            background: blue_bg(),
            objects: vec![red_obj(), red_obj()],
            blob_scale: 0.2,
        };
        let a = spec.paint(16, 16, &mut StdRng::seed_from_u64(7));
        let b = spec.paint(16, 16, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.pixels(), b.pixels());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = SceneSpec {
            background: blue_bg(),
            objects: vec![red_obj()],
            blob_scale: 0.2,
        };
        let a = spec.paint(16, 16, &mut StdRng::seed_from_u64(1));
        let b = spec.paint(16, 16, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.pixels(), b.pixels());
    }
}
