//! RGB ↔ HSV color types and conversions.
//!
//! The paper extracts histograms in HSV space ("from each image,
//! represented in the HSV color space, we extracted a 32-bins color
//! histogram"), so the pipeline needs real conversions, not just abstract
//! bins.

/// An RGB color with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rgb {
    /// Red.
    pub r: f64,
    /// Green.
    pub g: f64,
    /// Blue.
    pub b: f64,
}

/// An HSV color: hue in degrees `[0, 360)`, saturation and value in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hsv {
    /// Hue angle in degrees.
    pub h: f64,
    /// Saturation.
    pub s: f64,
    /// Value (brightness).
    pub v: f64,
}

impl Rgb {
    /// Construct, clamping components into `[0, 1]`.
    pub fn new(r: f64, g: f64, b: f64) -> Self {
        Rgb {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
        }
    }

    /// Convert to HSV (standard hexcone model).
    pub fn to_hsv(self) -> Hsv {
        let max = self.r.max(self.g).max(self.b);
        let min = self.r.min(self.g).min(self.b);
        let delta = max - min;
        let h = if delta == 0.0 {
            0.0
        } else if max == self.r {
            60.0 * (((self.g - self.b) / delta).rem_euclid(6.0))
        } else if max == self.g {
            60.0 * ((self.b - self.r) / delta + 2.0)
        } else {
            60.0 * ((self.r - self.g) / delta + 4.0)
        };
        let s = if max == 0.0 { 0.0 } else { delta / max };
        Hsv {
            h: h.rem_euclid(360.0),
            s,
            v: max,
        }
    }
}

impl Hsv {
    /// Construct, wrapping hue into `[0, 360)` and clamping s, v.
    pub fn new(h: f64, s: f64, v: f64) -> Self {
        Hsv {
            h: h.rem_euclid(360.0),
            s: s.clamp(0.0, 1.0),
            v: v.clamp(0.0, 1.0),
        }
    }

    /// Convert to RGB (inverse hexcone).
    pub fn to_rgb(self) -> Rgb {
        let c = self.v * self.s;
        let hp = self.h / 60.0;
        let x = c * (1.0 - (hp.rem_euclid(2.0) - 1.0).abs());
        let (r1, g1, b1) = match hp as u32 {
            0 => (c, x, 0.0),
            1 => (x, c, 0.0),
            2 => (0.0, c, x),
            3 => (0.0, x, c),
            4 => (x, 0.0, c),
            _ => (c, 0.0, x),
        };
        let m = self.v - c;
        Rgb::new(r1 + m, g1 + m, b1 + m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_hsv(rgb: Rgb, h: f64, s: f64, v: f64) {
        let hsv = rgb.to_hsv();
        assert!((hsv.h - h).abs() < 1e-9, "hue {} vs {h}", hsv.h);
        assert!((hsv.s - s).abs() < 1e-9, "sat {} vs {s}", hsv.s);
        assert!((hsv.v - v).abs() < 1e-9, "val {} vs {v}", hsv.v);
    }

    #[test]
    fn primary_colors() {
        assert_hsv(Rgb::new(1.0, 0.0, 0.0), 0.0, 1.0, 1.0);
        assert_hsv(Rgb::new(0.0, 1.0, 0.0), 120.0, 1.0, 1.0);
        assert_hsv(Rgb::new(0.0, 0.0, 1.0), 240.0, 1.0, 1.0);
        assert_hsv(Rgb::new(1.0, 1.0, 0.0), 60.0, 1.0, 1.0);
        assert_hsv(Rgb::new(0.0, 1.0, 1.0), 180.0, 1.0, 1.0);
        assert_hsv(Rgb::new(1.0, 0.0, 1.0), 300.0, 1.0, 1.0);
    }

    #[test]
    fn grays_have_zero_saturation() {
        for g in [0.0, 0.25, 0.5, 1.0] {
            let hsv = Rgb::new(g, g, g).to_hsv();
            assert_eq!(hsv.s, 0.0);
            assert_eq!(hsv.v, g);
            assert_eq!(hsv.h, 0.0);
        }
    }

    #[test]
    fn roundtrip_grid() {
        // RGB → HSV → RGB must be identity over a coarse grid.
        for ri in 0..6 {
            for gi in 0..6 {
                for bi in 0..6 {
                    let rgb = Rgb::new(ri as f64 / 5.0, gi as f64 / 5.0, bi as f64 / 5.0);
                    let back = rgb.to_hsv().to_rgb();
                    assert!(
                        (rgb.r - back.r).abs() < 1e-9
                            && (rgb.g - back.g).abs() < 1e-9
                            && (rgb.b - back.b).abs() < 1e-9,
                        "{rgb:?} -> {back:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hsv_roundtrip_saturated() {
        for hi in 0..12 {
            let hsv = Hsv::new(hi as f64 * 30.0, 0.8, 0.9);
            let back = hsv.to_rgb().to_hsv();
            assert!((hsv.h - back.h).abs() < 1e-9, "{} vs {}", hsv.h, back.h);
            assert!((hsv.s - back.s).abs() < 1e-9);
            assert!((hsv.v - back.v).abs() < 1e-9);
        }
    }

    #[test]
    fn constructors_clamp_and_wrap() {
        let rgb = Rgb::new(-0.5, 2.0, 0.5);
        assert_eq!((rgb.r, rgb.g, rgb.b), (0.0, 1.0, 0.5));
        let hsv = Hsv::new(-30.0, 1.5, -0.1);
        assert_eq!(hsv.h, 330.0);
        assert_eq!(hsv.s, 1.0);
        assert_eq!(hsv.v, 0.0);
        let wrap = Hsv::new(725.0, 0.5, 0.5);
        assert!((wrap.h - 5.0).abs() < 1e-9);
    }
}
