//! Full synthetic dataset builder (the IMSI substitute).

use crate::categories::{paper_categories, CategorySpec};
use crate::histogram::{extract_histogram, HistogramConfig};
use crate::painter::{ColorDist, SceneSpec};
use fbp_vecdb::{CategoryId, Collection, CollectionBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Dataset construction parameters.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Scale factor on the paper's member counts (1.0 = 2,491 labelled
    /// images; tests use small fractions).
    pub scale: f64,
    /// Unlabelled noise images ("images in other classes were just used to
    /// add further noise to the retrieval process", §5). 7,509 at paper
    /// scale for the ~10,000 total.
    pub noise_images: usize,
    /// Square image edge length in pixels.
    pub image_size: usize,
    /// Histogram binning (paper: 8 × 4).
    pub histogram: HistogramConfig,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl DatasetConfig {
    /// Paper-scale configuration (~10,000 images).
    pub fn paper() -> Self {
        DatasetConfig {
            scale: 1.0,
            noise_images: 7509,
            image_size: 24,
            histogram: HistogramConfig::default(),
            seed: 0xF00D,
        }
    }

    /// Small configuration for unit/integration tests (~300 images).
    pub fn small() -> Self {
        DatasetConfig {
            scale: 0.08,
            noise_images: 220,
            image_size: 16,
            histogram: HistogramConfig::default(),
            seed: 0xF00D,
        }
    }
}

/// The generated dataset: a labelled collection of histograms plus the
/// bookkeeping needed to sample queries the way the paper does.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Histogram collection (dim = `histogram.bins()`).
    pub collection: Collection,
    /// Ids of the 7 categories, in paper order.
    pub category_ids: Vec<CategoryId>,
    /// Indices of all labelled images (the query pool: the paper samples
    /// queries from the 7 categories only).
    pub labelled: Vec<usize>,
    config: DatasetConfig,
}

impl SyntheticDataset {
    /// Generate the dataset.
    pub fn generate(config: DatasetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = CollectionBuilder::new();
        let cats = paper_categories();
        let mut category_ids = Vec::with_capacity(cats.len());
        let mut labelled = Vec::new();
        for cat in &cats {
            let id = builder.category(cat.name);
            category_ids.push(id);
            let count = scaled_count(cat, config.scale);
            for _ in 0..count {
                let hist = paint_one(cat, &config, &mut rng);
                let idx = builder.push(&hist, id).expect("dims are uniform");
                labelled.push(idx);
            }
        }
        // Noise images: category-background mimics plus random palettes.
        for _ in 0..config.noise_images {
            let spec = random_scene(&mut rng, &cats);
            let img = spec.paint(config.image_size, config.image_size, &mut rng);
            let hist = extract_histogram(&img, &config.histogram);
            builder.push_unlabelled(&hist).expect("dims are uniform");
        }
        SyntheticDataset {
            collection: builder.build(),
            category_ids,
            labelled,
            config,
        }
    }

    /// Generation parameters.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Sample a random labelled image index to use as a query (the paper's
    /// protocol: queries are randomly sampled from the 7 categories).
    pub fn sample_query<R: Rng>(&self, rng: &mut R) -> usize {
        self.labelled[rng.gen_range(0..self.labelled.len())]
    }

    /// Sample a query from one specific category (Figure 14 needs
    /// per-category streams).
    pub fn sample_query_in<R: Rng>(&self, category: CategoryId, rng: &mut R) -> usize {
        let members = self.collection.category_members(category);
        members[rng.gen_range(0..members.len())]
    }
}

fn scaled_count(cat: &CategorySpec, scale: f64) -> usize {
    ((cat.paper_count as f64 * scale).round() as usize).max(cat.subthemes.len())
}

fn paint_one(cat: &CategorySpec, config: &DatasetConfig, rng: &mut StdRng) -> Vec<f64> {
    let theme = &cat.subthemes[rng.gen_range(0..cat.subthemes.len())];
    let scene = perturb_scene(&theme.scene, rng);
    let img = scene.paint(config.image_size, config.image_size, rng);
    extract_histogram(&img, &config.histogram)
}

/// Image-level exposure / white-balance / framing wobble.
///
/// Real photos of one motif differ in lighting and composition; this is
/// what makes the paper's categories "largely differ as to color content"
/// even within a coherent sub-theme. A global saturation/value shift
/// routinely moves the dominant background mass across histogram bins, so
/// plain Euclidean search reaches only the similarly-exposed fraction of
/// a category — feedback then re-weights toward the bins the reachable
/// fraction agrees on.
fn perturb_scene(s: &SceneSpec, rng: &mut StdRng) -> SceneSpec {
    let hue_shift = rng.gen_range(-10.0..10.0);
    let sat_shift = rng.gen_range(-0.38..0.38);
    let val_shift = rng.gen_range(-0.3..0.3);
    let adjust = |d: &ColorDist| ColorDist {
        hue: d.hue + hue_shift,
        hue_jitter: d.hue_jitter,
        sat: (
            (d.sat.0 + sat_shift).clamp(0.02, 0.98),
            (d.sat.1 + sat_shift).clamp(0.04, 1.0),
        ),
        val: (
            (d.val.0 + val_shift).clamp(0.08, 0.96),
            (d.val.1 + val_shift).clamp(0.1, 1.0),
        ),
    };
    // Framing: objects may be cropped out or appear twice.
    let mut objects: Vec<ColorDist> = s
        .objects
        .iter()
        .filter(|_| rng.gen_bool(0.85))
        .map(&adjust)
        .collect();
    if objects.is_empty() && !s.objects.is_empty() {
        objects.push(adjust(&s.objects[0]));
    }
    if !s.objects.is_empty() && rng.gen_bool(0.3) {
        let extra = adjust(&s.objects[rng.gen_range(0..s.objects.len())]);
        objects.push(extra);
    }
    SceneSpec {
        background: adjust(&s.background),
        objects,
        blob_scale: (s.blob_scale * rng.gen_range(0.55..1.5)).min(0.45),
    }
}

fn rand_dist(rng: &mut StdRng) -> ColorDist {
    ColorDist {
        hue: rng.gen_range(0.0..360.0),
        hue_jitter: rng.gen_range(4.0..20.0),
        sat: {
            let lo: f64 = rng.gen_range(0.0..0.7);
            (lo, (lo + rng.gen_range(0.1..0.3)).min(1.0))
        },
        val: {
            let lo: f64 = rng.gen_range(0.1..0.7);
            (lo, (lo + rng.gen_range(0.1..0.3)).min(1.0))
        },
    }
}

/// Noise scene generator.
///
/// Real photo collections share color statistics with any hand-picked
/// category subset — skies, foliage, stone — which is exactly why the
/// paper's default-parameter precision is low: the top-k fills up with
/// off-category images whose *backgrounds* match. Most noise images here
/// therefore reuse a (jittered) category background while carrying
/// different or no object colors: close to category members under the
/// default Euclidean distance, separable once re-weighting focuses on the
/// object-color bins.
fn random_scene(rng: &mut StdRng, cats: &[CategorySpec]) -> SceneSpec {
    if rng.gen_bool(0.92) {
        // Background borrowed from a random category sub-theme, with the
        // same exposure wobble category images get, but with random (or
        // no) object colors — close under the default metric, separable
        // after re-weighting.
        let cat = &cats[rng.gen_range(0..cats.len())];
        let theme = &cat.subthemes[rng.gen_range(0..cat.subthemes.len())];
        let perturbed = perturb_scene(&theme.scene, rng);
        // Objects mimic the theme's blob structure but in shifted hue
        // bins: histograms with the same background + object *shape* yet
        // the wrong signature colors — nearly indistinguishable under the
        // default metric, cleanly rejected once the signature bins carry
        // the weight.
        let objects = perturbed
            .objects
            .iter()
            .map(|o| {
                let mut shifted = *o;
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                shifted.hue += sign * rng.gen_range(50.0..140.0);
                shifted
            })
            .collect();
        SceneSpec {
            background: perturbed.background,
            objects,
            blob_scale: perturbed.blob_scale,
        }
    } else {
        let n_objects = rng.gen_range(0..=3);
        SceneSpec {
            background: rand_dist(rng),
            objects: (0..n_objects).map(|_| rand_dist(rng)).collect(),
            blob_scale: rng.gen_range(0.12..0.3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_shape() {
        let cfg = DatasetConfig::small();
        let ds = SyntheticDataset::generate(cfg.clone());
        let c = &ds.collection;
        assert_eq!(c.dim(), 32);
        assert_eq!(ds.category_ids.len(), 7);
        // Labelled + noise = total.
        assert_eq!(c.len(), ds.labelled.len() + cfg.noise_images);
        // Histograms are normalized.
        for i in 0..c.len().min(50) {
            let s: f64 = c.vector(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "image {i} sums to {s}");
            assert!(c.vector(i).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn category_proportions_tracked() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let c = &ds.collection;
        // Mammal is the biggest category, Fish the smallest — the ordering
        // must survive scaling (these drive the Figure 14 shape).
        let size = |name: &str| c.category_size(ds.category_ids[paper_index(name)]);
        assert!(size("Mammal") > size("Bird"));
        assert!(size("TreeLeaf") > size("Monument"));
        assert!(size("Fish") <= size("Bridge"));
    }

    fn paper_index(name: &str) -> usize {
        [
            "Bird", "Fish", "Mammal", "Blossom", "TreeLeaf", "Bridge", "Monument",
        ]
        .iter()
        .position(|&n| n == name)
        .unwrap()
    }

    #[test]
    fn deterministic_in_seed() {
        let a = SyntheticDataset::generate(DatasetConfig::small());
        let b = SyntheticDataset::generate(DatasetConfig::small());
        assert_eq!(a.collection.len(), b.collection.len());
        for i in (0..a.collection.len()).step_by(37) {
            assert_eq!(a.collection.vector(i), b.collection.vector(i));
        }
        let mut cfg2 = DatasetConfig::small();
        cfg2.seed = 999;
        let c = SyntheticDataset::generate(cfg2);
        assert_ne!(a.collection.vector(0), c.collection.vector(0));
    }

    #[test]
    fn query_sampling() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let q = ds.sample_query(&mut rng);
            assert_ne!(ds.collection.label(q), fbp_vecdb::collection::NO_CATEGORY);
        }
        let fish = ds.category_ids[1];
        for _ in 0..10 {
            let q = ds.sample_query_in(fish, &mut rng);
            assert_eq!(ds.collection.label(q), fish);
        }
    }

    #[test]
    fn color_search_beats_category_prior() {
        // The load-bearing dataset property: plain Euclidean color search
        // must retrieve same-category images well above the category's
        // base rate (otherwise feedback would have nothing to amplify),
        // while staying far from perfect (otherwise feedback would have
        // nothing to add). Statistical, but deterministic via the seed.
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let c = &ds.collection;
        let k = 20;
        let mut precision_sum = 0.0;
        let mut prior_sum = 0.0;
        let queries: Vec<usize> = ds.labelled.iter().step_by(17).cloned().collect();
        for &qi in &queries {
            let cat = c.label(qi);
            let q = c.vector(qi);
            // Brute-force top-k.
            let mut dists: Vec<(f64, usize)> =
                (0..c.len()).map(|i| (dist(q, c.vector(i)), i)).collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let hits = dists
                .iter()
                .take(k)
                .filter(|&&(_, i)| c.label(i) == cat)
                .count();
            precision_sum += hits as f64 / k as f64;
            prior_sum += c.category_size(cat) as f64 / c.len() as f64;
        }
        let precision = precision_sum / queries.len() as f64;
        let prior = prior_sum / queries.len() as f64;
        assert!(
            precision > 2.0 * prior,
            "color signal too weak: precision {precision:.3} vs prior {prior:.3}"
        );
        assert!(
            precision < 0.9,
            "dataset too easy: precision {precision:.3}"
        );
    }

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}
