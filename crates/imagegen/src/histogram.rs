//! HSV color-histogram extraction — the paper's exact feature pipeline:
//! "we extracted a 32-bins color histogram, by dividing the hue channel H
//! into 8 ranges and the saturation channel S into 4 ranges" (§5).

use crate::color::Rgb;
use crate::painter::Image;

/// Histogram binning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramConfig {
    /// Number of hue ranges (paper: 8).
    pub hue_bins: usize,
    /// Number of saturation ranges (paper: 4).
    pub sat_bins: usize,
}

impl Default for HistogramConfig {
    fn default() -> Self {
        HistogramConfig {
            hue_bins: 8,
            sat_bins: 4,
        }
    }
}

impl HistogramConfig {
    /// Total bins (`hue_bins × sat_bins`; 32 with the paper's defaults).
    pub fn bins(&self) -> usize {
        self.hue_bins * self.sat_bins
    }

    /// Bin index of one pixel.
    #[inline]
    pub fn bin_of(&self, px: Rgb) -> usize {
        let hsv = px.to_hsv();
        let h_idx = ((hsv.h / 360.0) * self.hue_bins as f64) as usize;
        let h_idx = h_idx.min(self.hue_bins - 1);
        let s_idx = (hsv.s * self.sat_bins as f64) as usize;
        let s_idx = s_idx.min(self.sat_bins - 1);
        h_idx * self.sat_bins + s_idx
    }
}

/// Extract the L1-normalized histogram of an image.
///
/// The sum over bins equals 1 ("the sum of the color bins is constant" —
/// Example 1 of the paper; this is what lets FeedbackBypass drop one bin
/// and work in a 31-dimensional simplex domain).
pub fn extract_histogram(img: &Image, cfg: &HistogramConfig) -> Vec<f64> {
    let mut hist = vec![0.0; cfg.bins()];
    for &px in img.pixels() {
        hist[cfg.bin_of(px)] += 1.0;
    }
    let n = img.pixels().len() as f64;
    if n > 0.0 {
        for h in hist.iter_mut() {
            *h /= n;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Hsv;

    #[test]
    fn default_is_paper_config() {
        let cfg = HistogramConfig::default();
        assert_eq!(cfg.bins(), 32);
    }

    #[test]
    fn bin_layout_hue_major() {
        let cfg = HistogramConfig::default();
        // Fully saturated red: hue bin 0, sat bin 3 → bin 3.
        assert_eq!(cfg.bin_of(Rgb::new(1.0, 0.0, 0.0)), 3);
        // Gray: sat 0 → hue bin 0, sat bin 0 → bin 0.
        assert_eq!(cfg.bin_of(Rgb::new(0.5, 0.5, 0.5)), 0);
        // Saturated green (hue 120° → bin 2 of 8): 2*4 + 3 = 11.
        assert_eq!(cfg.bin_of(Rgb::new(0.0, 1.0, 0.0)), 11);
        // Saturated blue (hue 240° → bin 5): 5*4 + 3 = 23.
        assert_eq!(cfg.bin_of(Rgb::new(0.0, 0.0, 1.0)), 23);
    }

    #[test]
    fn hue_wraparound_stays_in_range() {
        let cfg = HistogramConfig::default();
        // Hue 359.9 must land in the last hue bin, not overflow.
        let px = Hsv::new(359.9, 1.0, 1.0).to_rgb();
        let bin = cfg.bin_of(px);
        assert!(bin < 32);
        assert_eq!(bin / 4, 7);
    }

    #[test]
    fn histogram_normalized_and_concentrated() {
        let cfg = HistogramConfig::default();
        // Solid red image: all mass in one bin.
        let img = Image::solid(8, 8, Rgb::new(1.0, 0.0, 0.0));
        let h = extract_histogram(&img, &cfg);
        assert_eq!(h.len(), 32);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_color_image_splits_mass() {
        let cfg = HistogramConfig::default();
        let mut img = Image::solid(2, 2, Rgb::new(1.0, 0.0, 0.0));
        img.set(0, 0, Rgb::new(0.0, 1.0, 0.0));
        img.set(1, 0, Rgb::new(0.0, 1.0, 0.0));
        let h = extract_histogram(&img, &cfg);
        assert!((h[3] - 0.5).abs() < 1e-12);
        assert!((h[11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn custom_binning() {
        let cfg = HistogramConfig {
            hue_bins: 4,
            sat_bins: 2,
        };
        assert_eq!(cfg.bins(), 8);
        let img = Image::solid(4, 4, Rgb::new(0.0, 0.0, 1.0));
        let h = extract_histogram(&img, &cfg);
        assert_eq!(h.len(), 8);
        // Blue: hue 240 → bin 2 of 4; sat 1.0 → bin 1 of 2 → index 5.
        assert!((h[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_image_gives_zero_histogram() {
        let cfg = HistogramConfig::default();
        let img = Image::solid(0, 0, Rgb::new(0.0, 0.0, 0.0));
        let h = extract_histogram(&img, &cfg);
        assert_eq!(h.iter().sum::<f64>(), 0.0);
    }
}
