//! # fbp-imagegen
//!
//! Synthetic image substrate replacing the proprietary IMSI MasterPhotos
//! data set used by the paper (§5).
//!
//! The paper's evaluation needs ~10,000 color images in 7 labelled
//! categories (Bird 318, Fish 129, Mammal 834, Blossom 189, TreeLeaf 575,
//! Bridge 148, Monument 298) plus unlabelled noise, each reduced to a
//! 32-bin HSV color histogram (hue 8 ranges × saturation 4 ranges). Two
//! dataset properties drive every result in the paper:
//!
//! 1. **Conceptual categories.** "Within each category images largely
//!    differ as to color content" — e.g. only one of the four Fish images
//!    in Figure 9 is dominated by blue. A pure color query can therefore
//!    find only a *fraction* of a category, which is why default-parameter
//!    precision is low and feedback has room to help.
//! 2. **Sub-theme structure.** Feedback *does* help, and FeedbackBypass's
//!    interpolation works, because categories decompose into color-coherent
//!    sub-themes (sharks are blue, tropical fish are yellow...). Queries in
//!    the same sub-theme have similar optimal parameters, making the
//!    optimal query mapping `Mopt` piecewise smooth — learnable by the
//!    Simplex Tree.
//!
//! The generator reproduces both properties with procedural "images":
//! every category is a mixture of sub-themes; a sub-theme paints a small
//! RGB raster (background wash + elliptical blobs + pixel noise); the
//! histogram extractor then runs the paper's exact binning over the real
//! pixels. Everything is seeded and deterministic.

#![warn(missing_docs)]

pub mod categories;
pub mod color;
pub mod dataset;
pub mod histogram;
pub mod painter;

pub use categories::{paper_categories, CategorySpec, SubTheme};
pub use color::{Hsv, Rgb};
pub use dataset::{DatasetConfig, SyntheticDataset};
pub use histogram::{extract_histogram, HistogramConfig};
pub use painter::{Image, SceneSpec};
