//! Multi-example (Rocchio) session scenario: measure what explicit
//! positive **and negative** example judgments buy a single refinement
//! round.
//!
//! The paper's automated protocol (§5) judges every result row; this
//! scenario models the sparser interactive reality the [`QuerySpec`]
//! surface serves: a probe round is shown to the "user", a handful of
//! rows are marked relevant, a handful non-relevant, and the rest stay
//! unjudged. The marked rows become the example sets of a multi-example
//! [`QuerySpec`] — the positives feed the Rocchio β term, the negatives
//! the γ term — and the refined round searches the derived anchor.
//!
//! Per query the scenario records precision@k of the probe round, the
//! refined round, and whether the spec path stayed **bit-identical** to
//! a flat [`LinearScan`] against the manually derived anchor (the
//! serving invariant the spec lowering pins; the run asserts on it in
//! tests and surfaces it in the record for smoke drivers).
//!
//! The judgments ride [`SetOracle::with_negatives`] — the three-valued
//! regime (`Good` / `Bad` / `Neutral`) — so this scenario is also the
//! in-tree exerciser of negative-example judgments end to end: oracle →
//! example sets → γ term → derived anchor → one coalesced
//! [`SharedBypass::knn_batch`] pass over all the specs.

use crate::metrics::precision;
use crate::stream::query_order;
use fbp_feedback::{CategoryOracle, RelevanceOracle, SetOracle};
use fbp_imagegen::SyntheticDataset;
use fbp_vecdb::{
    KnnEngine, LinearScan, MultiQueryScan, Neighbor, Precision, ScanMode, WeightedEuclidean,
};
use feedbackbypass::{BypassConfig, FeedbackBypass, QuerySpec, RocchioWeights, SharedBypass};

/// Options for one multi-example scenario run.
#[derive(Debug, Clone)]
pub struct RocchioOptions {
    /// Queries evaluated (drawn from the labelled pool in seeded order).
    pub n_queries: usize,
    /// Results per search (both the probe and the refined round).
    pub k: usize,
    /// Most examples kept per set — the "user" marks at most this many
    /// rows relevant and at most this many non-relevant; everything
    /// else in the probe round stays unjudged ([`fbp_feedback::Relevance::Neutral`]).
    pub max_examples: usize,
    /// Rocchio coefficients of the derivation (α anchor, β positives,
    /// γ negatives).
    pub rocchio: RocchioWeights,
    /// Clamp negative derived components to zero (histogram domains).
    pub clamp_to_zero: bool,
    /// Shared module configuration (the scenario serves through
    /// [`SharedBypass`] like every other serving path).
    pub bypass: BypassConfig,
    /// Scan precision for the refined pass.
    pub precision: Precision,
    /// Query-sampling seed.
    pub seed: u64,
}

impl Default for RocchioOptions {
    fn default() -> Self {
        RocchioOptions {
            n_queries: 32,
            k: 50,
            max_examples: 5,
            rocchio: RocchioWeights::default(),
            clamp_to_zero: true,
            bypass: BypassConfig::default(),
            precision: Precision::F64,
            seed: 0xC0C1,
        }
    }
}

/// Everything recorded for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct RocchioRecord {
    /// Precision@k of the probe round (plain anchor, uniform metric).
    pub probe_precision: f64,
    /// Precision@k of the refined round (derived Rocchio anchor).
    pub refined_precision: f64,
    /// Positive examples the judgment yielded.
    pub positives: usize,
    /// Negative examples the judgment yielded.
    pub negatives: usize,
    /// The coalesced spec pass returned indices **and** distances
    /// bit-identical to a flat [`LinearScan`] against the derived
    /// anchor.
    pub bit_identical: bool,
}

/// Outcome of one multi-example scenario run.
#[derive(Debug, Clone)]
pub struct RocchioResult {
    /// Per-query records, in evaluation order.
    pub records: Vec<RocchioRecord>,
}

impl RocchioResult {
    /// Mean probe-round precision@k.
    pub fn mean_probe_precision(&self) -> f64 {
        mean(self.records.iter().map(|r| r.probe_precision))
    }

    /// Mean refined-round precision@k.
    pub fn mean_refined_precision(&self) -> f64 {
        mean(self.records.iter().map(|r| r.refined_precision))
    }

    /// Every refined round matched its flat derived-anchor scan
    /// bit-for-bit (the serving invariant; smoke drivers assert this).
    pub fn all_bit_identical(&self) -> bool {
        self.records.iter().all(|r| r.bit_identical)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Run the scenario: probe each query, judge its round three-valued,
/// build the multi-example specs, and serve all refined rounds in one
/// coalesced [`SharedBypass::knn_batch`] pass.
///
/// # Panics
///
/// Panics when the labelled pool holds fewer than
/// [`RocchioOptions::n_queries`] queries.
pub fn run_rocchio(ds: &SyntheticDataset, opts: &RocchioOptions) -> RocchioResult {
    let coll = &ds.collection;
    assert!(
        opts.n_queries <= ds.labelled.len(),
        "need {} labelled queries, pool has {}",
        opts.n_queries,
        ds.labelled.len()
    );
    let order = query_order(ds, opts.seed);
    let scan = LinearScan::with_mode(coll, ScanMode::Auto).with_precision(opts.precision);
    // The serving layer lowers a weightless spec to the uniform metric;
    // the flat reference scans must use the identical distance for the
    // bit-identity check to mean anything.
    let uniform = WeightedEuclidean::new(vec![1.0; coll.dim()]).expect("uniform metric");

    // Probe + judge: each query's plain round, marked up by the
    // category oracle but *capped* like a real user's patience — at most
    // `max_examples` each way, the rest unjudged.
    let mut specs: Vec<QuerySpec> = Vec::with_capacity(opts.n_queries);
    let mut probes: Vec<(f64, usize)> = Vec::with_capacity(opts.n_queries);
    for &qidx in order.iter().take(opts.n_queries) {
        let q = coll.vector(qidx).to_vec();
        let category = coll.label(qidx);
        let truth = CategoryOracle::new(coll, category);
        let probe = scan.knn(&q, opts.k, &uniform);

        let mut good: Vec<u32> = Vec::new();
        let mut bad: Vec<u32> = Vec::new();
        for n in &probe {
            if truth.judge(n.index).is_good() {
                if good.len() < opts.max_examples {
                    good.push(n.index);
                }
            } else if bad.len() < opts.max_examples {
                bad.push(n.index);
            }
        }
        // The session's judgment record is the three-valued oracle:
        // marked rows are Good/Bad, everything else Neutral. Splitting
        // the probe round through it (rather than through `truth`)
        // keeps this path honest about what the user actually said.
        let judged = SetOracle::with_negatives(good, bad);
        let mut positives: Vec<Vec<f64>> = Vec::new();
        let mut negatives: Vec<Vec<f64>> = Vec::new();
        for n in &probe {
            let r = judged.judge(n.index);
            if r.is_good() {
                positives.push(coll.vector(n.index as usize).to_vec());
            } else if r.is_bad() {
                negatives.push(coll.vector(n.index as usize).to_vec());
            }
        }

        let relevant = probe
            .iter()
            .filter(|n| truth.judge(n.index).is_good())
            .count();
        probes.push((precision(relevant, opts.k), qidx));

        specs.push(
            QuerySpec::builder(q)
                .positives(positives)
                .negatives(negatives)
                .rocchio(opts.rocchio)
                .clamp_to_zero(opts.clamp_to_zero)
                .build()
                .expect("collection vectors build a valid spec"),
        );
    }

    // Refine: every spec in one coalesced pass.
    let module =
        FeedbackBypass::for_histograms(coll.dim(), opts.bypass.clone()).expect("histogram module");
    let shared = SharedBypass::new(module);
    let mscan = MultiQueryScan::with_mode(coll, ScanMode::Auto).with_precision(opts.precision);
    let refined = shared
        .knn_batch(&mscan, &specs, opts.k)
        .expect("validated specs");

    let records = specs
        .iter()
        .zip(&refined)
        .zip(&probes)
        .map(|((spec, round), (probe_precision, qidx))| {
            let truth = CategoryOracle::new(coll, coll.label(*qidx));
            let relevant = round
                .iter()
                .filter(|n| truth.judge(n.index).is_good())
                .count();
            // The pinned invariant: the spec pass ≡ a flat scan against
            // the manually derived anchor, indices and distances alike.
            let flat: Vec<Neighbor> = scan.knn(spec.lower().point(), opts.k, &uniform);
            let bit_identical = flat == *round;
            RocchioRecord {
                probe_precision: *probe_precision,
                refined_precision: precision(relevant, opts.k),
                positives: spec.positives().len(),
                negatives: spec.negatives().len(),
                bit_identical,
            }
        })
        .collect();

    RocchioResult { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_imagegen::DatasetConfig;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetConfig::small())
    }

    #[test]
    fn rocchio_scenario_is_bit_identical_and_judges_both_ways() {
        let ds = dataset();
        let opts = RocchioOptions {
            n_queries: 12,
            k: 20,
            ..Default::default()
        };
        let result = run_rocchio(&ds, &opts);
        assert_eq!(result.records.len(), 12);
        assert!(
            result.all_bit_identical(),
            "spec serving must equal the flat derived-anchor scan"
        );
        // The capped judgment must actually exercise both example sets
        // somewhere in the run — otherwise the γ term was never tested.
        assert!(result.records.iter().any(|r| r.positives > 0));
        assert!(result.records.iter().any(|r| r.negatives > 0));
        assert!(result.mean_probe_precision() > 0.0);
        assert!(result.mean_refined_precision() > 0.0);
    }

    #[test]
    fn trivial_rocchio_spec_reduces_to_probe_round() {
        let ds = dataset();
        // α = 1 with zero examples possible? max_examples = 0 keeps the
        // sets empty, so every spec lowers to its verbatim anchor and
        // the refined round IS the probe round.
        let opts = RocchioOptions {
            n_queries: 6,
            k: 15,
            max_examples: 0,
            ..Default::default()
        };
        let result = run_rocchio(&ds, &opts);
        assert!(result.all_bit_identical());
        for r in &result.records {
            assert_eq!(r.positives, 0);
            assert_eq!(r.negatives, 0);
            assert_eq!(r.probe_precision, r.refined_precision);
        }
    }
}
