//! Concurrent-sessions serving scenario: N interactive feedback
//! sessions against one collection and one shared FeedbackBypass module.
//!
//! Interactive workloads are many-user by nature (the IDEBench framing:
//! concurrent exploratory sessions with think-time between refinements),
//! and on a memory-bandwidth-bound host the k-NN scans of those sessions
//! are the throughput ceiling. This scenario measures exactly that
//! serving question in two modes:
//!
//! * [`ServingMode::Independent`] — every session's every feedback
//!   iteration runs its own [`LinearScan`] (the one-scan-per-query
//!   baseline);
//! * [`ServingMode::Coalesced`] — the service advances all active
//!   sessions in lock-step rounds: each round coalesces the pending
//!   k-NN requests into **one** multi-query block pass
//!   ([`SharedBypass::knn_batch`]), so the collection is streamed once
//!   per round instead of once per session.
//!
//! Both modes execute the *identical* per-session feedback transition
//! ([`fbp_feedback::FeedbackStepper`], the same code the loop driver
//! runs) and the same Figure 5 protocol against the shared module:
//! predict → feedback loop → insert on convergence. With a single
//! session the two modes are bit-for-bit equivalent; with many, they
//! differ only in how session inserts interleave. The result reports
//! throughput (searches/sec) and per-search distance evaluations.

use crate::stream::query_order;
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop, FeedbackStepper, StepOutcome};
use fbp_imagegen::SyntheticDataset;
use fbp_vecdb::{
    LinearScan, MultiQueryScan, Neighbor, Precision, ResultList, ScanMode, ShardedCollection,
    ShardedScan,
};
use feedbackbypass::{BypassConfig, FeedbackBypass, KnnRequest, ShardedBypass, SharedBypass};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How the service executes its sessions' k-NN searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// One [`LinearScan`] search per session per feedback iteration.
    Independent(ScanMode),
    /// All active sessions' requests per round ride one multi-query
    /// block pass.
    Coalesced(ScanMode),
}

/// Options for one concurrent-sessions run.
#[derive(Debug, Clone)]
pub struct SessionsOptions {
    /// Number of concurrent sessions.
    pub n_sessions: usize,
    /// Queries each session processes (sessions draw disjoint slices of
    /// the labelled pool).
    pub queries_per_session: usize,
    /// Results per search.
    pub k: usize,
    /// Feedback loop configuration template (its `k` is overridden).
    pub feedback: FeedbackConfig,
    /// Shared FeedbackBypass module configuration.
    pub bypass: BypassConfig,
    /// Serving strategy under measurement.
    pub serving: ServingMode,
    /// Scan precision for the serving searches.
    /// [`Precision::F32Rescore`] engages the two-phase mirror scan when
    /// the dataset's collection carries its f32 mirror
    /// (`ds.collection.ensure_f32_mirror()`), and is a transparent f64
    /// scan otherwise — results are identical either way.
    pub precision: Precision,
    /// Collection shards for coalesced serving (1 = the flat
    /// single-pass path). With `S > 1` the collection splits into `S`
    /// contiguous row shards and every coalesced round scatters across
    /// per-shard passes ([`ShardedBypass::knn_batch`]) — per-query
    /// results stay bit-identical to the flat pass, but on a multi-core
    /// host the round's scan bandwidth scales with the shard count.
    /// Ignored by [`ServingMode::Independent`].
    pub shards: usize,
    /// Query-sampling seed.
    pub seed: u64,
}

impl Default for SessionsOptions {
    fn default() -> Self {
        SessionsOptions {
            n_sessions: 8,
            queries_per_session: 25,
            k: 50,
            feedback: FeedbackConfig::default(),
            bypass: BypassConfig::default(),
            serving: ServingMode::Coalesced(ScanMode::Auto),
            precision: Precision::F64,
            shards: 1,
            seed: 0xFEED,
        }
    }
}

/// Everything recorded for one finished session query.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionQueryRecord {
    /// Feedback cycles the loop ran (0 = prediction already stable).
    pub cycles: usize,
    /// True when the loop ended by stabilizing (vs the cycle cap).
    pub converged: bool,
    /// Precision@k of the final result round.
    pub final_precision: f64,
}

/// Outcome of one concurrent-sessions run.
#[derive(Debug, Clone)]
pub struct SessionsResult {
    /// Per-session records, in each session's query order.
    pub per_session: Vec<Vec<SessionQueryRecord>>,
    /// k-NN searches served (one per active session per round).
    pub searches: u64,
    /// Blocked passes over the collection (coalesced mode streams the
    /// collection once per round, independent mode once per search).
    pub scan_passes: u64,
    /// Total distance evaluations across all searches.
    pub distance_evals: u64,
    /// Wall-clock time of the serving loop (excludes dataset and module
    /// construction).
    pub elapsed: Duration,
}

impl SessionsResult {
    /// Total session queries processed.
    pub fn total_queries(&self) -> usize {
        self.per_session.iter().map(Vec::len).sum()
    }

    /// Serving throughput: k-NN searches per second.
    pub fn searches_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.searches as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Mean distance evaluations per search (the work each search cost;
    /// coalescing leaves this constant while cutting memory traffic).
    pub fn distance_evals_per_search(&self) -> f64 {
        if self.searches > 0 {
            self.distance_evals as f64 / self.searches as f64
        } else {
            0.0
        }
    }

    /// Mean feedback cycles per query.
    pub fn mean_cycles(&self) -> f64 {
        let n = self.total_queries();
        if n == 0 {
            return 0.0;
        }
        let total: usize = self
            .per_session
            .iter()
            .flat_map(|s| s.iter().map(|r| r.cycles))
            .sum();
        total as f64 / n as f64
    }

    /// Mean final precision across all queries.
    pub fn mean_final_precision(&self) -> f64 {
        let n = self.total_queries();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = self
            .per_session
            .iter()
            .flat_map(|s| s.iter().map(|r| r.final_precision))
            .sum();
        total / n as f64
    }
}

/// One session's in-flight query.
struct ActiveQuery {
    /// Anchor query vector (the module insert key).
    q: Vec<f64>,
    /// Oracle category.
    category: fbp_vecdb::CategoryId,
    /// Current search point.
    point: Vec<f64>,
    /// Current search weights.
    weights: Vec<f64>,
    /// Previous round's results (None before the first round).
    prev: Option<ResultList>,
    /// Feedback cycles so far.
    cycles: usize,
    /// Precision of the latest round.
    latest_precision: f64,
}

/// One concurrent session: a queue of queries plus the in-flight one.
struct Session {
    queue: VecDeque<usize>,
    current: Option<ActiveQuery>,
    records: Vec<SessionQueryRecord>,
}

/// Run the scenario.
///
/// # Panics
///
/// Panics when the labelled pool is smaller than
/// `n_sessions × queries_per_session`.
pub fn run_sessions(ds: &SyntheticDataset, opts: &SessionsOptions) -> SessionsResult {
    let coll = &ds.collection;
    let need = opts.n_sessions * opts.queries_per_session;
    assert!(
        need <= ds.labelled.len(),
        "need {need} labelled queries, pool has {}",
        ds.labelled.len()
    );
    let mut feedback = opts.feedback.clone();
    feedback.k = opts.k;

    // Disjoint round-robin query slices per session.
    let order = query_order(ds, opts.seed);
    let mut sessions: Vec<Session> = (0..opts.n_sessions)
        .map(|s| Session {
            queue: (0..opts.queries_per_session)
                .map(|i| order[i * opts.n_sessions + s])
                .collect(),
            current: None,
            records: Vec::with_capacity(opts.queries_per_session),
        })
        .collect();

    let module =
        FeedbackBypass::for_histograms(coll.dim(), opts.bypass.clone()).expect("histogram module");
    let shared = SharedBypass::new(module);

    let t0 = Instant::now();
    let (searches, scan_passes, distance_evals) = match opts.serving {
        ServingMode::Coalesced(mode) if opts.shards > 1 => {
            // Sharded scatter/gather serving: same rounds, same
            // requests, same bit-identical results — each round's pass
            // fans out over per-shard scans instead of one flat pass.
            let sc = ShardedCollection::split(coll, opts.shards);
            let sharded = ShardedBypass::from_shared(shared.clone());
            let scan = ShardedScan::with_mode(&sc, mode).with_precision(opts.precision);
            serve_coalesced(
                ds,
                &shared,
                &mut sessions,
                &feedback,
                opts.precision,
                &|reqs| {
                    sharded
                        .knn_batch_lowered(&scan, reqs, feedback.k)
                        .expect("validated requests")
                },
            )
        }
        ServingMode::Coalesced(mode) => {
            let scan = MultiQueryScan::with_mode(coll, mode).with_precision(opts.precision);
            serve_coalesced(
                ds,
                &shared,
                &mut sessions,
                &feedback,
                opts.precision,
                &|reqs| {
                    shared
                        .knn_batch_lowered(&scan, reqs, feedback.k)
                        .expect("validated requests")
                },
            )
        }
        ServingMode::Independent(mode) => {
            let scan = LinearScan::with_mode(coll, mode).with_precision(opts.precision);
            serve_independent(ds, &shared, &mut sessions, &feedback, scan)
        }
    };
    let elapsed = t0.elapsed();

    SessionsResult {
        per_session: sessions.into_iter().map(|s| s.records).collect(),
        searches,
        scan_passes,
        distance_evals,
        elapsed,
    }
}

/// Lock-step serving: one coalesced pass (flat or scatter/gather,
/// whatever `knn` wraps) per round for every active session, then one
/// feedback step each.
fn serve_coalesced(
    ds: &SyntheticDataset,
    shared: &SharedBypass,
    sessions: &mut [Session],
    feedback: &FeedbackConfig,
    precision: Precision,
    knn: &dyn Fn(&[KnnRequest]) -> Vec<Vec<Neighbor>>,
) -> (u64, u64, u64) {
    let coll = &ds.collection;
    let stepper = FeedbackStepper::new(coll, feedback.clone());
    let (mut searches, mut scan_passes, mut distance_evals) = (0u64, 0u64, 0u64);
    loop {
        // Refill: sessions between queries predict their next parameters
        // from the shared module — coalesced under one read lock.
        let starting: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.current.is_none() && !s.queue.is_empty())
            .map(|(i, _)| i)
            .collect();
        if !starting.is_empty() {
            let queries: Vec<Vec<f64>> = starting
                .iter()
                .map(|&i| {
                    let qidx = *sessions[i].queue.front().expect("non-empty queue");
                    coll.vector(qidx).to_vec()
                })
                .collect();
            let predictions = shared.predict_batch(&queries).expect("collection queries");
            for ((&i, q), pred) in starting.iter().zip(queries).zip(predictions) {
                let qidx = sessions[i].queue.pop_front().expect("non-empty queue");
                sessions[i].current = Some(ActiveQuery {
                    category: coll.label(qidx),
                    q,
                    point: pred.point,
                    weights: pred.weights,
                    prev: None,
                    cycles: 0,
                    latest_precision: 0.0,
                });
            }
        }

        // Coalesce every active session's request into one pass.
        let active: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.current.is_some())
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        let requests: Vec<KnnRequest> = active
            .iter()
            .map(|&i| {
                let aq = sessions[i].current.as_ref().expect("active");
                // Same degenerate-weights fallback as `FeedbackLoop::search`
                // (uniform metric), so the two serving modes keep executing
                // the identical transition even on a malformed prediction —
                // and one bad session cannot fail the whole batch.
                let weights = if aq.weights.iter().all(|w| w.is_finite() && *w > 0.0) {
                    aq.weights.clone()
                } else {
                    vec![1.0; aq.point.len()]
                };
                KnnRequest {
                    point: aq.point.clone(),
                    weights,
                    k: None,
                    // Pinned: this scenario *measures* precision modes
                    // against each other, so the serving layer's
                    // mirror-upgrade fallback must not override the
                    // experiment's knob.
                    precision: Some(precision),
                }
            })
            .collect();
        let round = knn(&requests);
        searches += active.len() as u64;
        scan_passes += 1;
        distance_evals += (coll.len() * active.len()) as u64;

        // Advance each session one feedback step on its own results.
        for (&i, neighbors) in active.iter().zip(round) {
            let session = &mut sessions[i];
            let aq = session.current.as_mut().expect("active");
            let results = ResultList::new(neighbors);
            let oracle = CategoryOracle::new(coll, aq.category);
            aq.latest_precision = stepper.precision(&results, &oracle);
            let mut finished: Option<bool> = None; // Some(converged)
            if let Some(prev) = &aq.prev {
                aq.cycles += 1;
                if results.same_ranking(prev) {
                    finished = Some(true);
                }
            }
            if finished.is_none() {
                if aq.cycles >= feedback.max_cycles {
                    finished = Some(false);
                } else {
                    match stepper
                        .step(&aq.point, &aq.weights, &results, &oracle)
                        .expect("feedback step")
                    {
                        StepOutcome::Converged => finished = Some(true),
                        StepOutcome::Continue { point, weights } => {
                            aq.point = point;
                            aq.weights = weights;
                            aq.prev = Some(results);
                        }
                    }
                }
            }
            if let Some(converged) = finished {
                let aq = session.current.take().expect("active");
                if aq.cycles > 0 {
                    shared
                        .insert(&aq.q, &aq.point, &aq.weights)
                        .expect("insert converged parameters");
                }
                session.records.push(SessionQueryRecord {
                    cycles: aq.cycles,
                    converged,
                    final_precision: aq.latest_precision,
                });
            }
        }
    }
    (searches, scan_passes, distance_evals)
}

/// Baseline serving: sessions run sequentially, each feedback loop
/// driving its own single-query scans.
fn serve_independent(
    ds: &SyntheticDataset,
    shared: &SharedBypass,
    sessions: &mut [Session],
    feedback: &FeedbackConfig,
    scan: LinearScan<'_>,
) -> (u64, u64, u64) {
    let coll = &ds.collection;
    let stepper = FeedbackStepper::new(coll, feedback.clone());
    let fb_loop = FeedbackLoop::new(&scan, coll, feedback.clone());
    let (mut searches, mut distance_evals) = (0u64, 0u64);
    for session in sessions.iter_mut() {
        while let Some(qidx) = session.queue.pop_front() {
            let q = coll.vector(qidx);
            let oracle = CategoryOracle::new(coll, coll.label(qidx));
            let pred = shared.predict(q).expect("collection query");
            let run = fb_loop
                .run_from(&pred.point, &pred.weights, &oracle)
                .expect("feedback loop");
            searches += run.cycles as u64 + 1;
            distance_evals += run.distance_evals;
            if run.cycles > 0 {
                shared
                    .insert(q, &run.point, &run.weights)
                    .expect("insert converged parameters");
            }
            let final_precision = stepper.precision(&run.final_results, &oracle);
            session.records.push(SessionQueryRecord {
                cycles: run.cycles,
                converged: run.converged,
                final_precision,
            });
        }
    }
    // One blocked pass per search in this mode.
    (searches, searches, distance_evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_imagegen::DatasetConfig;

    fn opts(n_sessions: usize, per: usize, serving: ServingMode) -> SessionsOptions {
        SessionsOptions {
            n_sessions,
            queries_per_session: per,
            k: 10,
            serving,
            ..Default::default()
        }
    }

    #[test]
    fn coalesced_serves_all_queries() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let res = run_sessions(&ds, &opts(4, 6, ServingMode::Coalesced(ScanMode::Batched)));
        assert_eq!(res.per_session.len(), 4);
        assert_eq!(res.total_queries(), 24);
        for records in &res.per_session {
            assert_eq!(records.len(), 6);
            for r in records {
                assert!((0.0..=1.0).contains(&r.final_precision));
            }
        }
        assert!(res.searches >= 24, "at least one search per query");
        // Coalescing must stream the collection fewer times than it
        // serves searches (that is the whole point).
        assert!(res.scan_passes < res.searches);
        assert_eq!(res.distance_evals_per_search(), ds.collection.len() as f64);
        assert!(res.searches_per_sec() > 0.0);
    }

    #[test]
    fn single_session_modes_are_equivalent() {
        // With one session, lock-step coalescing degenerates to the
        // sequential protocol: both modes must produce identical
        // records (the scans are bit-identical, the stepper is shared).
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let coalesced = run_sessions(&ds, &opts(1, 8, ServingMode::Coalesced(ScanMode::Batched)));
        let independent = run_sessions(
            &ds,
            &opts(1, 8, ServingMode::Independent(ScanMode::Batched)),
        );
        assert_eq!(coalesced.per_session, independent.per_session);
        assert_eq!(coalesced.searches, independent.searches);
        assert_eq!(coalesced.distance_evals, independent.distance_evals);
    }

    #[test]
    fn sharded_serving_matches_flat_serving_record_for_record() {
        // Sharding is a bandwidth knob: the scatter/gather rounds must
        // reproduce the flat coalesced rounds exactly — same cycles,
        // same convergence, same final precision, per session per query.
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let flat = run_sessions(&ds, &opts(4, 5, ServingMode::Coalesced(ScanMode::Batched)));
        for shards in [2usize, 3] {
            let sharded = run_sessions(
                &ds,
                &SessionsOptions {
                    shards,
                    ..opts(4, 5, ServingMode::Coalesced(ScanMode::Batched))
                },
            );
            assert_eq!(sharded.per_session, flat.per_session, "shards={shards}");
            assert_eq!(sharded.searches, flat.searches);
            assert_eq!(sharded.scan_passes, flat.scan_passes);
        }
    }

    #[test]
    fn sessions_learn_through_the_shared_module() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let res = run_sessions(&ds, &opts(3, 10, ServingMode::Coalesced(ScanMode::Batched)));
        // Feedback must actually run (some queries need cycles) and the
        // pool of converged parameters must produce decent precision.
        assert!(res.mean_cycles() > 0.0);
        assert!(res.mean_final_precision() > 0.0);
    }

    #[test]
    #[should_panic(expected = "labelled queries")]
    fn oversized_request_panics() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let huge = opts(
            ds.labelled.len(),
            2,
            ServingMode::Coalesced(ScanMode::Batched),
        );
        run_sessions(&ds, &huge);
    }
}
