//! Single-shot scenario evaluation: run one search with given parameters
//! and measure precision/recall against the category oracle.

use crate::metrics;
use fbp_feedback::{CategoryOracle, RelevanceOracle};
use fbp_vecdb::{KnnEngine, WeightedEuclidean};

/// Precision and recall of one parameterized search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrRe {
    /// Precision@k.
    pub precision: f64,
    /// Recall@k.
    pub recall: f64,
}

/// Search with `(point, weights)` at cutoff `k` and score the results
/// against the oracle.
pub fn evaluate_params(
    engine: &dyn KnnEngine,
    point: &[f64],
    weights: &[f64],
    k: usize,
    oracle: &CategoryOracle<'_>,
) -> PrRe {
    let dist = WeightedEuclidean::new(weights.to_vec())
        .unwrap_or_else(|_| WeightedEuclidean::uniform(weights.len()));
    let results = engine.knn(point, k, &dist);
    let relevant = results
        .iter()
        .filter(|n| oracle.judge(n.index).is_good())
        .count();
    PrRe {
        precision: metrics::precision(relevant, k),
        recall: metrics::recall(relevant, oracle.relevant_count()),
    }
}

/// Evaluate with uniform weights (the Default scenario).
pub fn evaluate_default(
    engine: &dyn KnnEngine,
    point: &[f64],
    k: usize,
    oracle: &CategoryOracle<'_>,
) -> PrRe {
    evaluate_params(engine, point, &vec![1.0; point.len()], k, oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_vecdb::{CollectionBuilder, LinearScan};

    #[test]
    fn evaluate_counts_category_hits() {
        let mut b = CollectionBuilder::new();
        let cat = b.category("X");
        // Two category members near the origin, two strangers far away.
        b.push(&[0.0, 0.0], cat).unwrap();
        b.push(&[0.1, 0.0], cat).unwrap();
        b.push_unlabelled(&[1.0, 1.0]).unwrap();
        b.push_unlabelled(&[0.05, 0.0]).unwrap();
        let c = b.build();
        let scan = LinearScan::new(&c);
        let oracle = CategoryOracle::new(&c, cat);
        let r = evaluate_default(&scan, &[0.0, 0.0], 2, &oracle);
        // Top-2 by Euclidean: (0,0) good and (0.05,0) bad.
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 0.5);
        // Weighting dim 0 hugely makes (0.1, 0) still rank 3rd; weighting
        // dim 1 hugely promotes both members into the top 2.
        let r2 = evaluate_params(&scan, &[0.0, 0.0], &[1.0, 1000.0], 2, &oracle);
        assert!(r2.precision >= 0.5);
    }
}
