//! # fbp-eval
//!
//! Evaluation harness reproducing the paper's experimental protocol (§5).
//!
//! The paper's setup: ~10,000 color images, 7 labelled categories, 32-bin
//! HSV histograms, weighted Euclidean distances with the unweighted
//! Euclidean as default, query point movement + re-weighting feedback,
//! automated category-oracle judgments, and three measurement scenarios:
//!
//! * **Default** — search with the user's query point and the default
//!   distance;
//! * **FeedbackBypass** — search with the parameters predicted by the
//!   module for *never-seen* queries;
//! * **AlreadySeen** — search with the parameters a feedback loop
//!   converged to for this exact query (the module's upper bound).
//!
//! Modules map one-to-one onto the paper's figures:
//!
//! | module | figures |
//! |---|---|
//! | [`stream`] | 10, 12, 16 (sequential learning curve) |
//! | [`ksweep`] | 11 (per-k trained trees after N queries) |
//! | [`cross_k`] | 13 (train-k vs evaluate-k) |
//! | [`per_category`] | 14 (the 7 categories) |
//! | [`efficiency`] | 15 (saved cycles / saved objects) |
//! | [`report`] | series containers + text/JSON rendering |
//!
//! Beyond the paper's figures, [`sessions`] measures the *serving*
//! question the paper's multi-user setting implies: N concurrent
//! feedback sessions against one collection and one shared module, with
//! each round's k-NN requests either run independently or coalesced
//! into a single multi-query collection pass
//! ([`feedbackbypass::SharedBypass::knn_batch`]).

#![warn(missing_docs)]

pub mod cross_k;
pub mod efficiency;
pub mod ksweep;
pub mod metrics;
pub mod per_category;
pub mod report;
pub mod scenario;
pub mod sessions;
pub mod stream;

pub use metrics::{cumulative_avg, moving_avg, precision_gain};

/// Per-configuration scan thread budget for sweeps that run one scoped
/// thread per configuration: an even share of the machine's
/// parallelism, at least 1. Handing this to
/// [`fbp_vecdb::LinearScan::with_thread_budget`] keeps the total thread
/// count at ~`available_parallelism` when the sweep layer and the scan
/// layer are both parallel (they used to multiply).
pub(crate) fn scan_thread_budget(configurations: usize) -> usize {
    (std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        / configurations.max(1))
    .max(1)
}
pub use report::Series;
pub use scenario::evaluate_params;
pub use sessions::{run_sessions, ServingMode, SessionsOptions, SessionsResult};
pub use stream::{run_stream, QueryRecord, StreamOptions};
