//! # fbp-eval
//!
//! Evaluation harness reproducing the paper's experimental protocol (§5).
//!
//! The paper's setup: ~10,000 color images, 7 labelled categories, 32-bin
//! HSV histograms, weighted Euclidean distances with the unweighted
//! Euclidean as default, query point movement + re-weighting feedback,
//! automated category-oracle judgments, and three measurement scenarios:
//!
//! * **Default** — search with the user's query point and the default
//!   distance;
//! * **FeedbackBypass** — search with the parameters predicted by the
//!   module for *never-seen* queries;
//! * **AlreadySeen** — search with the parameters a feedback loop
//!   converged to for this exact query (the module's upper bound).
//!
//! Modules map one-to-one onto the paper's figures:
//!
//! | module | figures |
//! |---|---|
//! | [`stream`] | 10, 12, 16 (sequential learning curve) |
//! | [`ksweep`] | 11 (per-k trained trees after N queries) |
//! | [`cross_k`] | 13 (train-k vs evaluate-k) |
//! | [`per_category`] | 14 (the 7 categories) |
//! | [`efficiency`] | 15 (saved cycles / saved objects) |
//! | [`report`] | series containers + text/JSON rendering |
//!
//! Beyond the paper's figures, [`sessions`] measures the *serving*
//! question the paper's multi-user setting implies: N concurrent
//! feedback sessions against one collection and one shared module, with
//! each round's k-NN requests either run independently or coalesced
//! into a single multi-query collection pass
//! ([`feedbackbypass::SharedBypass::knn_batch`]).

#![warn(missing_docs)]

pub mod cross_k;
pub mod efficiency;
pub mod ksweep;
pub mod metrics;
pub mod per_category;
pub mod report;
pub mod rocchio;
pub mod scenario;
pub mod sessions;
pub mod stream;

pub use metrics::{cumulative_avg, moving_avg, precision_gain};

/// Run `configurations` independent sweep configurations on
/// `min(available_parallelism, configurations)` worker threads with
/// **round-robin shard assignment**: worker `w` runs configurations
/// `w, w + W, w + 2W, …` sequentially, and `run(index, budget)` receives
/// the per-worker scan thread budget (an even share of the machine, at
/// least 1) to hand to
/// [`fbp_vecdb::LinearScan::with_thread_budget`]-style knobs.
///
/// This replaces the old one-thread-per-configuration shape, which had
/// two load problems: with more configurations than cores it
/// oversubscribed the host (every configuration thread ran at budget 1
/// simultaneously), and near a sweep's tail the short configurations'
/// budgeted cores sat idle while the long ones finished alone. Bounded
/// workers with interleaved assignment keep every core busy until the
/// queue genuinely runs dry. Results are returned in configuration
/// order.
pub(crate) fn sweep_round_robin<T: Send>(
    configurations: usize,
    run: &(dyn Fn(usize, usize) -> T + Sync),
) -> Vec<T> {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = available.min(configurations).max(1);
    let budget = (available / workers).max(1);
    let mut out: Vec<Option<T>> = Vec::with_capacity(configurations);
    out.resize_with(configurations, || None);
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(run(i, budget));
        }
    } else {
        crossbeam::thread::scope(|scope| {
            let mut worker_slots: Vec<Vec<(usize, &mut Option<T>)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, slot) in out.iter_mut().enumerate() {
                worker_slots[i % workers].push((i, slot));
            }
            for slots in worker_slots {
                scope.spawn(move |_| {
                    for (i, slot) in slots {
                        *slot = Some(run(i, budget));
                    }
                });
            }
        })
        .expect("sweep worker threads");
    }
    out.into_iter()
        .map(|t| t.expect("worker filled its slot"))
        .collect()
}
pub use report::Series;
pub use rocchio::{run_rocchio, RocchioOptions, RocchioRecord, RocchioResult};
pub use scenario::evaluate_params;
pub use sessions::{run_sessions, ServingMode, SessionsOptions, SessionsResult};
pub use stream::{run_stream, QueryRecord, StreamOptions};
