//! # fbp-eval
//!
//! Evaluation harness reproducing the paper's experimental protocol (§5).
//!
//! The paper's setup: ~10,000 color images, 7 labelled categories, 32-bin
//! HSV histograms, weighted Euclidean distances with the unweighted
//! Euclidean as default, query point movement + re-weighting feedback,
//! automated category-oracle judgments, and three measurement scenarios:
//!
//! * **Default** — search with the user's query point and the default
//!   distance;
//! * **FeedbackBypass** — search with the parameters predicted by the
//!   module for *never-seen* queries;
//! * **AlreadySeen** — search with the parameters a feedback loop
//!   converged to for this exact query (the module's upper bound).
//!
//! Modules map one-to-one onto the paper's figures:
//!
//! | module | figures |
//! |---|---|
//! | [`stream`] | 10, 12, 16 (sequential learning curve) |
//! | [`ksweep`] | 11 (per-k trained trees after N queries) |
//! | [`cross_k`] | 13 (train-k vs evaluate-k) |
//! | [`per_category`] | 14 (the 7 categories) |
//! | [`efficiency`] | 15 (saved cycles / saved objects) |
//! | [`report`] | series containers + text/JSON rendering |

#![warn(missing_docs)]

pub mod cross_k;
pub mod efficiency;
pub mod ksweep;
pub mod metrics;
pub mod per_category;
pub mod report;
pub mod scenario;
pub mod stream;

pub use metrics::{cumulative_avg, moving_avg, precision_gain};
pub use report::Series;
pub use scenario::evaluate_params;
pub use stream::{run_stream, QueryRecord, StreamOptions};
