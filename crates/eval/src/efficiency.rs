//! Figure 15: efficiency — saved feedback cycles and saved retrieved
//! objects, and Figure 16: Simplex Tree shape over the stream.
//!
//! *Saved-Cycles* (paper §5.3): for each query, run the feedback loop
//! once from the default parameters and once from FeedbackBypass's
//! prediction; the difference in cycles is the number of database
//! searches the module saved. *Saved-Objects* = Saved-Cycles × k.

use crate::metrics;
use crate::report::{Figure, Series};
use crate::stream::QueryRecord;

/// Rolling savings series computed from a savings-enabled stream.
#[derive(Debug, Clone)]
pub struct SavingsSeries {
    /// Query-count checkpoints.
    pub at: Vec<usize>,
    /// Cumulative-average saved cycles at each checkpoint.
    pub saved_cycles: Vec<f64>,
    /// Cumulative-average saved objects (cycles × k).
    pub saved_objects: Vec<f64>,
}

/// Compute savings at `checkpoints` (query counts) from stream records.
///
/// # Panics
/// Panics if the stream was run without `measure_savings`.
pub fn savings(records: &[QueryRecord], k: usize, checkpoints: &[usize]) -> SavingsSeries {
    let per_query: Vec<f64> = records
        .iter()
        .map(|r| {
            let pred = r
                .cycles_from_predicted
                .expect("stream must be run with measure_savings");
            r.cycles_from_default as f64 - pred as f64
        })
        .collect();
    let cum = metrics::cumulative_avg(&per_query);
    let mut at = Vec::new();
    let mut saved_cycles = Vec::new();
    for &cp in checkpoints {
        if cp == 0 || cp > cum.len() {
            continue;
        }
        at.push(cp);
        saved_cycles.push(cum[cp - 1]);
    }
    let saved_objects = saved_cycles.iter().map(|c| c * k as f64).collect();
    SavingsSeries {
        at,
        saved_cycles,
        saved_objects,
    }
}

impl SavingsSeries {
    /// Series for Figure 15a (to be combined across k values).
    pub fn cycles_series(&self, name: impl Into<String>) -> Series {
        Series::new(
            name,
            self.at
                .iter()
                .map(|&a| a as f64)
                .zip(self.saved_cycles.iter().cloned())
                .collect::<Vec<_>>(),
        )
    }

    /// Series for Figure 15b.
    pub fn objects_series(&self, name: impl Into<String>) -> Series {
        Series::new(
            name,
            self.at
                .iter()
                .map(|&a| a as f64)
                .zip(self.saved_objects.iter().cloned())
                .collect::<Vec<_>>(),
        )
    }
}

/// Figure 16 series: average simplices traversed and tree depth vs
/// number of processed queries.
pub fn tree_shape_figure(records: &[QueryRecord], checkpoints: &[usize]) -> Figure {
    let visited: Vec<f64> = records.iter().map(|r| r.nodes_visited as f64).collect();
    let cum_visited = metrics::cumulative_avg(&visited);
    let mut traversed_pts = Vec::new();
    let mut depth_pts = Vec::new();
    for &cp in checkpoints {
        if cp == 0 || cp > records.len() {
            continue;
        }
        traversed_pts.push((cp as f64, cum_visited[cp - 1]));
        depth_pts.push((cp as f64, records[cp - 1].tree_depth as f64));
    }
    Figure::new(
        "Figure 16 — simplices traversed per query and tree depth",
        "no. of queries",
        "simplices",
        vec![
            Series::new("no. of simplices traversed", traversed_pts),
            Series::new("Depth of Simplex Tree", depth_pts),
        ],
    )
}

/// Evenly spaced checkpoints `step, 2·step, …, n`.
pub fn checkpoints(n: usize, step: usize) -> Vec<usize> {
    assert!(step > 0);
    let mut out: Vec<usize> = (step..=n).step_by(step).collect();
    if out.last() != Some(&n) && n > 0 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PrRe;

    fn record(default_cycles: usize, predicted_cycles: Option<usize>) -> QueryRecord {
        QueryRecord {
            category: 0,
            default: PrRe::default(),
            bypass: PrRe::default(),
            seen: PrRe::default(),
            cycles_from_default: default_cycles,
            cycles_from_predicted: predicted_cycles,
            nodes_visited: 3,
            tree_depth: 4,
            stored_points: 1,
        }
    }

    #[test]
    fn savings_cumulative_average() {
        let records = vec![
            record(3, Some(1)), // saved 2
            record(2, Some(2)), // saved 0
            record(4, Some(1)), // saved 3
            record(3, Some(2)), // saved 1
        ];
        let s = savings(&records, 20, &[2, 4]);
        assert_eq!(s.at, vec![2, 4]);
        assert!((s.saved_cycles[0] - 1.0).abs() < 1e-12); // (2+0)/2
        assert!((s.saved_cycles[1] - 1.5).abs() < 1e-12); // (2+0+3+1)/4
        assert_eq!(s.saved_objects[1], 30.0); // 1.5 × 20
        let series = s.cycles_series("k = 20");
        assert_eq!(series.len(), 2);
        assert_eq!(s.objects_series("k = 20").y, vec![20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "measure_savings")]
    fn savings_requires_measurement() {
        savings(&[record(1, None)], 10, &[1]);
    }

    #[test]
    fn checkpoints_cover_the_end() {
        assert_eq!(checkpoints(10, 3), vec![3, 6, 9, 10]);
        assert_eq!(checkpoints(9, 3), vec![3, 6, 9]);
        assert_eq!(checkpoints(0, 5), Vec::<usize>::new());
    }

    #[test]
    fn tree_shape_series() {
        let records: Vec<QueryRecord> = (0..10).map(|_| record(1, None)).collect();
        let fig = tree_shape_figure(&records, &checkpoints(10, 5));
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].y, vec![3.0, 3.0]);
        assert_eq!(fig.series[1].y, vec![4.0, 4.0]);
    }
}
