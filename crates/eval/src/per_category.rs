//! Figure 14: per-category effectiveness of the three scenarios.
//!
//! The paper's reading: FeedbackBypass helps exactly where the gap
//! between Default and AlreadySeen is large (feedback genuinely improves
//! results, e.g. Mammal); where feedback barely helps (TreeLeaf) the
//! predictions can't help either; small categories (Fish, 129 images)
//! may not accumulate enough samples to shape the mapping.

use crate::metrics;
use crate::report::{Figure, Series};
use crate::stream::QueryRecord;
use fbp_vecdb::{CategoryId, Collection};

/// Per-category scenario averages.
#[derive(Debug, Clone)]
pub struct CategoryBreakdown {
    /// Category names in paper order.
    pub names: Vec<String>,
    /// `(default, bypass, seen)` mean precision per category.
    pub precision: Vec<(f64, f64, f64)>,
    /// `(default, bypass, seen)` mean recall per category.
    pub recall: Vec<(f64, f64, f64)>,
    /// Queries that fell into each category.
    pub query_counts: Vec<usize>,
}

/// Group a stream's records by query category.
pub fn breakdown(coll: &Collection, records: &[QueryRecord]) -> CategoryBreakdown {
    let n_cats = coll.category_count();
    let mut names = Vec::with_capacity(n_cats);
    let mut precision = Vec::with_capacity(n_cats);
    let mut recall = Vec::with_capacity(n_cats);
    let mut query_counts = Vec::with_capacity(n_cats);
    for c in 0..n_cats as CategoryId {
        let rs: Vec<&QueryRecord> = records.iter().filter(|r| r.category == c).collect();
        let col = |f: &dyn Fn(&QueryRecord) -> f64| {
            let v: Vec<f64> = rs.iter().map(|r| f(r)).collect();
            metrics::mean(&v)
        };
        names.push(coll.category_name(c).unwrap_or("<unknown>").to_string());
        precision.push((
            col(&|r| r.default.precision),
            col(&|r| r.bypass.precision),
            col(&|r| r.seen.precision),
        ));
        recall.push((
            col(&|r| r.default.recall),
            col(&|r| r.bypass.recall),
            col(&|r| r.seen.recall),
        ));
        query_counts.push(rs.len());
    }
    CategoryBreakdown {
        names,
        precision,
        recall,
        query_counts,
    }
}

impl CategoryBreakdown {
    /// Figure 14a: per-category precision bars (x = category index).
    pub fn precision_figure(&self) -> Figure {
        self.figure(
            "Figure 14a — per-category precision",
            "precision",
            &self.precision,
        )
    }

    /// Figure 14b: per-category recall bars.
    pub fn recall_figure(&self) -> Figure {
        self.figure("Figure 14b — per-category recall", "recall", &self.recall)
    }

    fn figure(&self, title: &str, y_label: &str, data: &[(f64, f64, f64)]) -> Figure {
        let xs: Vec<f64> = (0..self.names.len()).map(|i| i as f64).collect();
        let series = |pick: &dyn Fn(&(f64, f64, f64)) -> f64, name: &str| {
            Series::new(
                name,
                xs.iter()
                    .cloned()
                    .zip(data.iter().map(pick))
                    .collect::<Vec<_>>(),
            )
        };
        Figure::new(
            format!("{title} [categories: {}]", self.names.join(", ")),
            "category",
            y_label,
            vec![
                series(&|t| t.2, "AlreadySeen"),
                series(&|t| t.1, "FeedbackBypass"),
                series(&|t| t.0, "Default"),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PrRe;

    fn record(cat: CategoryId, d: f64, b: f64, s: f64) -> QueryRecord {
        QueryRecord {
            category: cat,
            default: PrRe {
                precision: d,
                recall: d / 2.0,
            },
            bypass: PrRe {
                precision: b,
                recall: b / 2.0,
            },
            seen: PrRe {
                precision: s,
                recall: s / 2.0,
            },
            cycles_from_default: 1,
            cycles_from_predicted: None,
            nodes_visited: 1,
            tree_depth: 1,
            stored_points: 0,
        }
    }

    #[test]
    fn groups_by_category() {
        let mut b = fbp_vecdb::CollectionBuilder::new();
        let c0 = b.category("A");
        let c1 = b.category("B");
        b.push(&[0.0], c0).unwrap();
        b.push(&[1.0], c1).unwrap();
        let coll = b.build();
        let records = vec![
            record(c0, 0.2, 0.3, 0.5),
            record(c0, 0.4, 0.5, 0.7),
            record(c1, 0.1, 0.1, 0.2),
        ];
        let bd = breakdown(&coll, &records);
        assert_eq!(bd.names, vec!["A", "B"]);
        assert_eq!(bd.query_counts, vec![2, 1]);
        let (d, by, s) = bd.precision[0];
        assert!((d - 0.3).abs() < 1e-12);
        assert!((by - 0.4).abs() < 1e-12);
        assert!((s - 0.6).abs() < 1e-12);
        // Empty categories yield zero means, not NaN.
        let bd2 = breakdown(&coll, &records[2..]);
        assert_eq!(bd2.precision[0], (0.0, 0.0, 0.0));
        // Figures render.
        assert!(bd.precision_figure().to_table().contains('A'));
        assert!(!bd.recall_figure().to_json().is_empty());
    }
}
