//! Figure 11: precision, recall and the precision-recall curve as
//! functions of `k` after N training queries.
//!
//! The paper trains and evaluates with the same `k` ("In the previous
//! experiments we have considered a same value of k both to train the
//! system and to evaluate it", §5.1), so each sweep point gets its own
//! trained tree. Points are independent → evaluated in parallel with
//! scoped threads.

use crate::metrics;
use crate::report::{Figure, Series};
use crate::stream::{run_stream, StreamOptions, StreamResult};
use fbp_imagegen::SyntheticDataset;
use fbp_vecdb::{KnnEngine, LinearScan};

/// Results of the Figure 11 sweep.
#[derive(Debug, Clone)]
pub struct KSweepResult {
    /// Swept k values.
    pub ks: Vec<usize>,
    /// Tail-mean precision per k: `(default, bypass, already_seen)`.
    pub precision: Vec<(f64, f64, f64)>,
    /// Tail-mean recall per k.
    pub recall: Vec<(f64, f64, f64)>,
}

/// Fraction of the stream used for the steady-state tail average.
const TAIL_FRACTION: f64 = 0.5;

/// Run the sweep: one independent stream per `k`, scheduled on a
/// bounded worker pool with round-robin configuration assignment
/// (`sweep_round_robin` in the crate root) so budgeted cores keep
/// working through the sweep tail instead of idling behind the slowest
/// configuration.
pub fn run_ksweep(ds: &SyntheticDataset, ks: &[usize], base: &StreamOptions) -> KSweepResult {
    let outcomes: Vec<StreamResult> = crate::sweep_round_robin(ks.len(), &|i, budget| {
        let opts = StreamOptions {
            k: ks[i],
            ..base.clone()
        };
        // Each worker builds its own engine view; LinearScan is a cheap
        // borrow of the shared collection, and the budget keeps nested
        // scan parallelism from oversubscribing the host.
        let scan = LinearScan::new(&ds.collection).with_thread_budget(budget);
        run_stream(ds, &scan, &opts)
    });

    let mut precision = Vec::with_capacity(ks.len());
    let mut recall = Vec::with_capacity(ks.len());
    for res in outcomes {
        let tail = ((res.records.len() as f64 * TAIL_FRACTION) as usize).max(1);
        let col = |f: &dyn Fn(&crate::stream::QueryRecord) -> f64| {
            let v: Vec<f64> = res.records.iter().map(f).collect();
            metrics::tail_mean(&v, tail)
        };
        precision.push((
            col(&|r| r.default.precision),
            col(&|r| r.bypass.precision),
            col(&|r| r.seen.precision),
        ));
        recall.push((
            col(&|r| r.default.recall),
            col(&|r| r.bypass.recall),
            col(&|r| r.seen.recall),
        ));
    }
    KSweepResult {
        ks: ks.to_vec(),
        precision,
        recall,
    }
}

impl KSweepResult {
    /// Figure 11a: precision vs k.
    pub fn precision_figure(&self) -> Figure {
        self.make_figure(
            "Figure 11a — precision vs k",
            "k",
            "precision",
            &self.precision,
        )
    }

    /// Figure 11b: recall vs k.
    pub fn recall_figure(&self) -> Figure {
        self.make_figure("Figure 11b — recall vs k", "k", "recall", &self.recall)
    }

    /// Figure 11c: precision vs recall (parameterized by k).
    pub fn pr_curve_figure(&self) -> Figure {
        let curve = |pick: &dyn Fn(&(f64, f64, f64)) -> f64, name: &str| {
            Series::new(
                name,
                self.recall
                    .iter()
                    .zip(self.precision.iter())
                    .map(|(re, pr)| (pick(re), pick(pr)))
                    .collect::<Vec<_>>(),
            )
        };
        Figure::new(
            "Figure 11c — precision vs recall",
            "recall",
            "precision",
            vec![
                curve(&|t| t.2, "AlreadySeen"),
                curve(&|t| t.1, "FeedbackBypass"),
                curve(&|t| t.0, "Default"),
            ],
        )
    }

    fn make_figure(
        &self,
        title: &str,
        x_label: &str,
        y_label: &str,
        data: &[(f64, f64, f64)],
    ) -> Figure {
        let xs: Vec<f64> = self.ks.iter().map(|&k| k as f64).collect();
        let series = |pick: &dyn Fn(&(f64, f64, f64)) -> f64, name: &str| {
            Series::new(
                name,
                xs.iter()
                    .cloned()
                    .zip(data.iter().map(pick))
                    .collect::<Vec<_>>(),
            )
        };
        Figure::new(
            title,
            x_label,
            y_label,
            vec![
                series(&|t| t.2, "AlreadySeen"),
                series(&|t| t.1, "FeedbackBypass"),
                series(&|t| t.0, "Default"),
            ],
        )
    }
}

/// Convenience: sweep with an externally supplied engine per k is not
/// needed — the scan engine borrows the collection. Exposed for tests.
pub fn run_ksweep_with_engine(
    ds: &SyntheticDataset,
    _engine: &dyn KnnEngine,
    ks: &[usize],
    base: &StreamOptions,
) -> KSweepResult {
    run_ksweep(ds, ks, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_imagegen::DatasetConfig;

    #[test]
    fn sweep_produces_ordered_scenarios() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let base = StreamOptions {
            n_queries: 40,
            ..Default::default()
        };
        let res = run_ksweep(&ds, &[5, 15], &base);
        assert_eq!(res.ks, vec![5, 15]);
        assert_eq!(res.precision.len(), 2);
        for (d, _b, s) in &res.precision {
            assert!(*s >= *d - 0.05, "seen {s} should be >= default {d}");
        }
        // Recall grows with k for the default scenario.
        assert!(res.recall[1].0 >= res.recall[0].0 - 0.02);
        // Figures render.
        let fig = res.precision_figure();
        assert_eq!(fig.series.len(), 3);
        assert!(!res.pr_curve_figure().to_table().is_empty());
        assert!(!res.recall_figure().to_json().is_empty());
    }
}
