//! Retrieval-effectiveness metrics (paper §5).

/// Precision: relevant results over retrieved results `k`.
///
/// The paper fixes the denominator at `k` ("precision (Pr) is the number
/// of retrieved relevant objects over k").
pub fn precision(relevant_retrieved: usize, k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        relevant_retrieved as f64 / k as f64
    }
}

/// Recall: relevant results over the total number of relevant objects
/// (the query category's size).
pub fn recall(relevant_retrieved: usize, total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        0.0
    } else {
        relevant_retrieved as f64 / total_relevant as f64
    }
}

/// The paper's precision-gain metric (Figure 10b):
/// `(Pr(method) / Pr(default) − 1) × 100` percent.
pub fn precision_gain(method: f64, default: f64) -> f64 {
    if default <= 0.0 {
        0.0
    } else {
        (method / default - 1.0) * 100.0
    }
}

/// Cumulative running average: `out[t] = mean(values[..=t])`.
///
/// The learning-curve figures plot average effectiveness as a function of
/// the number of processed queries; the cumulative average is the
/// smoothest faithful rendering of that.
pub fn cumulative_avg(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    let mut sum = 0.0;
    for (i, &v) in values.iter().enumerate() {
        sum += v;
        out.push(sum / (i + 1) as f64);
    }
    out
}

/// Trailing moving average with the given window (cumulative while the
/// prefix is shorter than the window).
pub fn moving_avg(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "moving_avg: zero window");
    let mut out = Vec::with_capacity(values.len());
    let mut sum = 0.0;
    for i in 0..values.len() {
        sum += values[i];
        if i >= window {
            sum -= values[i - window];
            out.push(sum / window as f64);
        } else {
            out.push(sum / (i + 1) as f64);
        }
    }
    out
}

/// Mean of a slice (0.0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Mean of the last `n` values (all of them when fewer).
pub fn tail_mean(values: &[f64], n: usize) -> f64 {
    let start = values.len().saturating_sub(n);
    mean(&values[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_basics() {
        assert_eq!(precision(10, 50), 0.2);
        assert_eq!(precision(0, 50), 0.0);
        assert_eq!(precision(5, 0), 0.0);
        assert_eq!(recall(10, 100), 0.1);
        assert_eq!(recall(10, 0), 0.0);
    }

    #[test]
    fn gain_matches_paper_formula() {
        // Doubling precision = +100% gain (the paper's AlreadySeen
        // headline).
        assert_eq!(precision_gain(0.5, 0.25), 100.0);
        assert!((precision_gain(0.4, 0.25) - 60.0).abs() < 1e-12);
        assert_eq!(precision_gain(0.25, 0.25), 0.0);
        assert_eq!(precision_gain(0.5, 0.0), 0.0);
    }

    #[test]
    fn cumulative_avg_works() {
        let v = [1.0, 3.0, 5.0];
        assert_eq!(cumulative_avg(&v), vec![1.0, 2.0, 3.0]);
        assert!(cumulative_avg(&[]).is_empty());
    }

    #[test]
    fn moving_avg_works() {
        let v = [1.0, 3.0, 5.0, 7.0];
        let m = moving_avg(&v, 2);
        assert_eq!(m, vec![1.0, 2.0, 4.0, 6.0]);
        // Window larger than data = cumulative.
        assert_eq!(moving_avg(&v, 10), cumulative_avg(&v));
    }

    #[test]
    #[should_panic]
    fn moving_avg_zero_window_panics() {
        moving_avg(&[1.0], 0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(tail_mean(&[1.0, 2.0, 3.0, 4.0], 2), 3.5);
        assert_eq!(tail_mean(&[1.0], 5), 1.0);
    }
}
