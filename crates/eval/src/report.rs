//! Series containers and rendering (text tables + JSON).
//!
//! Every figure bench produces [`Series`] values and prints them through
//! these helpers, so EXPERIMENTS.md numbers are regenerable and
//! machine-readable.

use serde::Serialize;

/// One named data series (a curve in a paper figure).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct Series {
    /// Curve label (e.g. "FeedbackBypass").
    pub name: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates.
    pub y: Vec<f64>,
}

impl Series {
    /// Build from paired points.
    pub fn new(name: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let (x, y) = points.into_iter().unzip();
        Series {
            name: name.into(),
            x,
            y,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// A figure: a title, an x-axis label, and one or more series sharing the
/// x grid.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure title (e.g. "Figure 10a — precision vs number of queries").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Assemble a figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
        }
    }

    /// Render as an aligned text table (x column + one column per series).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            header.push_str(&format!(" {:>16}", s.name));
        }
        let _ = writeln!(out, "{header}");
        let n = self.series.iter().map(|s| s.len()).max().unwrap_or(0);
        for i in 0..n {
            let x = self
                .series
                .iter()
                .find(|s| i < s.x.len())
                .map(|s| s.x[i])
                .unwrap_or(f64::NAN);
            let mut row = format!("{x:>12.3}");
            for s in &self.series {
                if i < s.y.len() {
                    row.push_str(&format!(" {:>16.4}", s.y[i]));
                } else {
                    row.push_str(&format!(" {:>16}", "-"));
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Render as JSON (one line per figure for easy collection).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("figure serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_from_points() {
        let s = Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.x, vec![1.0, 3.0]);
        assert_eq!(s.y, vec![2.0, 4.0]);
    }

    #[test]
    fn table_rendering() {
        let fig = Figure::new(
            "Test figure",
            "k",
            "precision",
            vec![
                Series::new("Default", vec![(10.0, 0.2), (20.0, 0.25)]),
                Series::new("Bypass", vec![(10.0, 0.3), (20.0, 0.35)]),
            ],
        );
        let t = fig.to_table();
        assert!(t.contains("Test figure"));
        assert!(t.contains("Default"));
        assert!(t.contains("0.3000"));
        // Rows: header comment + column header + 2 data rows.
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn ragged_series_render_dashes() {
        let fig = Figure::new(
            "Ragged",
            "x",
            "y",
            vec![
                Series::new("long", vec![(1.0, 1.0), (2.0, 2.0)]),
                Series::new("short", vec![(1.0, 9.0)]),
            ],
        );
        let t = fig.to_table();
        assert!(t.contains('-'));
    }

    #[test]
    fn json_roundtrips() {
        let fig = Figure::new("J", "x", "y", vec![Series::new("s", vec![(0.0, 0.5)])]);
        let j = fig.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["title"], "J");
        assert_eq!(v["series"][0]["y"][0], 0.5);
    }
}
