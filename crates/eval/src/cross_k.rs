//! Figure 13: does training with larger `k` help even when fewer objects
//! are retrieved at query time?
//!
//! Protocol: train one module per `k_train` ∈ {20, 50, 80}; then evaluate
//! every trained module's *predictions* on a common pool of never-seen
//! queries at each `k_eval` ∈ {10, …, 80}. The paper's conclusion —
//! "using larger k values is worthwhile, even if less objects are
//! retrieved" — shows up as the k_train = 80 curve dominating.

use crate::metrics;
use crate::report::{Figure, Series};
use crate::scenario::evaluate_params;
use crate::stream::{query_order, run_stream, StreamOptions};
use fbp_feedback::CategoryOracle;
use fbp_imagegen::SyntheticDataset;
use fbp_vecdb::LinearScan;
use feedbackbypass::FeedbackBypass;

/// Results of the cross-k experiment.
#[derive(Debug, Clone)]
pub struct CrossKResult {
    /// Training k per row.
    pub k_train: Vec<usize>,
    /// Evaluation k per column.
    pub k_eval: Vec<usize>,
    /// `precision[row][col]` of bypass predictions.
    pub precision: Vec<Vec<f64>>,
    /// `recall[row][col]` of bypass predictions.
    pub recall: Vec<Vec<f64>>,
}

/// Run the experiment. `eval_queries` fresh queries are drawn from the
/// tail of the training order (never seen by any module).
pub fn run_cross_k(
    ds: &SyntheticDataset,
    k_train: &[usize],
    k_eval: &[usize],
    eval_queries: usize,
    base: &StreamOptions,
) -> CrossKResult {
    // Train one module per k_train on the bounded round-robin worker
    // pool (crate::sweep_round_robin): each worker's scan gets an
    // explicit thread share so the nested parallel path cannot
    // oversubscribe the host, and interleaved assignment keeps cores
    // busy through the sweep tail.
    let modules: Vec<FeedbackBypass> = crate::sweep_round_robin(k_train.len(), &|i, budget| {
        let opts = StreamOptions {
            k: k_train[i],
            ..base.clone()
        };
        let scan = LinearScan::new(&ds.collection).with_thread_budget(budget);
        run_stream(ds, &scan, &opts).bypass
    });

    // Shared never-seen evaluation pool: the tail of the query order.
    let order = query_order(ds, base.seed);
    let pool: Vec<usize> = order
        .into_iter()
        .skip(base.n_queries)
        .take(eval_queries)
        .collect();
    assert!(
        !pool.is_empty(),
        "no fresh queries left: shrink n_queries or the eval set"
    );

    let coll = &ds.collection;
    let scan = LinearScan::new(coll);
    let mut precision = Vec::with_capacity(k_train.len());
    let mut recall = Vec::with_capacity(k_train.len());
    for module in modules.iter() {
        let mut row_p = Vec::with_capacity(k_eval.len());
        let mut row_r = Vec::with_capacity(k_eval.len());
        for &ke in k_eval {
            let mut ps = Vec::with_capacity(pool.len());
            let mut rs = Vec::with_capacity(pool.len());
            for &qidx in &pool {
                let q = coll.vector(qidx);
                let oracle = CategoryOracle::new(coll, coll.label(qidx));
                let pred = module.predict(q).expect("collection query");
                let prre = evaluate_params(&scan, &pred.point, &pred.weights, ke, &oracle);
                ps.push(prre.precision);
                rs.push(prre.recall);
            }
            row_p.push(metrics::mean(&ps));
            row_r.push(metrics::mean(&rs));
        }
        precision.push(row_p);
        recall.push(row_r);
    }
    CrossKResult {
        k_train: k_train.to_vec(),
        k_eval: k_eval.to_vec(),
        precision,
        recall,
    }
}

impl CrossKResult {
    /// Figure 13a: precision vs retrieved objects, one curve per k_train.
    pub fn precision_figure(&self) -> Figure {
        self.figure(
            "Figure 13a — precision vs retrieved objects by training k",
            "precision",
            &self.precision,
        )
    }

    /// Figure 13b: recall version.
    pub fn recall_figure(&self) -> Figure {
        self.figure(
            "Figure 13b — recall vs retrieved objects by training k",
            "recall",
            &self.recall,
        )
    }

    fn figure(&self, title: &str, y_label: &str, data: &[Vec<f64>]) -> Figure {
        let series = self
            .k_train
            .iter()
            .zip(data.iter())
            .map(|(&kt, row)| {
                Series::new(
                    format!("k = {kt}"),
                    self.k_eval
                        .iter()
                        .map(|&ke| ke as f64)
                        .zip(row.iter().cloned())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        Figure::new(title, "no. of retrieved objects", y_label, series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_imagegen::DatasetConfig;

    #[test]
    fn cross_k_runs_and_reports() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let base = StreamOptions {
            n_queries: 30,
            ..Default::default()
        };
        let res = run_cross_k(&ds, &[5, 15], &[5, 10], 20, &base);
        assert_eq!(res.precision.len(), 2);
        assert_eq!(res.precision[0].len(), 2);
        for row in &res.precision {
            for &p in row {
                assert!((0.0..=1.0).contains(&p));
            }
        }
        let fig = res.precision_figure();
        assert_eq!(fig.series.len(), 2);
        assert!(fig.series[0].name.contains("k = 5"));
        assert!(!res.recall_figure().to_table().is_empty());
    }

    #[test]
    #[should_panic(expected = "no fresh queries")]
    fn exhausted_pool_panics() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let base = StreamOptions {
            n_queries: ds.labelled.len(), // leaves no tail
            ..Default::default()
        };
        run_cross_k(&ds, &[5], &[5], 10, &base);
    }
}
