//! The sequential query-stream experiment (Figures 10, 12, 16).
//!
//! Protocol (paper §5): queries are sampled from the 7 categories
//! (without replacement, so the FeedbackBypass scenario always measures
//! *never-seen* queries). For each query:
//!
//! 1. measure the **Default** scenario (query point + Euclidean);
//! 2. ask the module for predicted parameters and measure the
//!    **FeedbackBypass** scenario;
//! 3. run the feedback loop to convergence from the default parameters;
//!    its final parameters define the **AlreadySeen** scenario;
//! 4. optionally re-run the loop from the predicted parameters (the
//!    Figure 15 savings measurement);
//! 5. insert the converged parameters into the module.

use crate::scenario::{evaluate_default, evaluate_params, PrRe};
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::SyntheticDataset;
use fbp_vecdb::{CategoryId, KnnEngine};
use feedbackbypass::{BypassConfig, FeedbackBypass};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

/// Which blocks of the predicted OQPs the FeedbackBypass scenario uses —
/// the component ablation (query point movement vs re-weighting are the
/// paper's two separate feedback strategies, §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BypassComponents {
    /// Predicted query point and predicted weights (the paper's system).
    #[default]
    Full,
    /// Only the predicted weights; query point left untouched.
    WeightsOnly,
    /// Only the predicted query point; default (uniform) weights.
    MovementOnly,
}

/// Options for one stream run.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Number of queries to process (paper: 1000).
    pub n_queries: usize,
    /// Results per search (paper: k ∈ {20, 50, 80}, 50 typical).
    pub k: usize,
    /// Feedback loop configuration template (its `k` is overridden).
    pub feedback: FeedbackConfig,
    /// FeedbackBypass module configuration.
    pub bypass: BypassConfig,
    /// Which predicted blocks the bypass scenario applies.
    pub components: BypassComponents,
    /// Also run the loop from predicted parameters to measure
    /// Saved-Cycles (doubles the loop work).
    pub measure_savings: bool,
    /// Query-sampling seed.
    pub seed: u64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            n_queries: 1000,
            k: 50,
            feedback: FeedbackConfig::default(),
            bypass: BypassConfig::default(),
            components: BypassComponents::Full,
            measure_savings: false,
            seed: 0xBEEF,
        }
    }
}

/// Everything measured for one processed query.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Query image's category.
    pub category: CategoryId,
    /// Default scenario.
    pub default: PrRe,
    /// FeedbackBypass scenario (prediction for a never-seen query).
    pub bypass: PrRe,
    /// AlreadySeen scenario (converged parameters).
    pub seen: PrRe,
    /// Feedback cycles when starting from default parameters.
    pub cycles_from_default: usize,
    /// Feedback cycles when starting from the prediction (only when
    /// `measure_savings`).
    pub cycles_from_predicted: Option<usize>,
    /// Simplices traversed by this query's prediction lookup (Fig 16).
    pub nodes_visited: usize,
    /// Tree depth after processing this query (Fig 16).
    pub tree_depth: usize,
    /// Stored points after processing this query.
    pub stored_points: u64,
}

/// Outcome of a stream run: per-query records plus the trained module.
pub struct StreamResult {
    /// One record per processed query, in order.
    pub records: Vec<QueryRecord>,
    /// The module after all inserts (reusable for k-sweeps).
    pub bypass: FeedbackBypass,
}

/// The canonical shuffled query order for a given seed. `run_stream`
/// trains on the first `n_queries` entries; sweep experiments use the
/// *tail* as their pool of genuinely never-seen evaluation queries.
pub fn query_order(ds: &SyntheticDataset, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = ds.labelled.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Run the full protocol. The engine must index `ds.collection`.
pub fn run_stream(
    ds: &SyntheticDataset,
    engine: &dyn KnnEngine,
    opts: &StreamOptions,
) -> StreamResult {
    let coll = &ds.collection;
    let dim = coll.dim();
    let mut bypass =
        FeedbackBypass::for_histograms(dim, opts.bypass.clone()).expect("histogram features");
    let mut feedback = opts.feedback.clone();
    feedback.k = opts.k;

    // Without-replacement query order over the labelled pool.
    let mut order = query_order(ds, opts.seed);
    order.truncate(opts.n_queries);

    let mut records = Vec::with_capacity(order.len());
    let fb_loop = FeedbackLoop::new(engine, coll, feedback);
    for &qidx in &order {
        let q: Vec<f64> = coll.vector(qidx).to_vec();
        let category = coll.label(qidx);
        let oracle = CategoryOracle::new(coll, category);

        // 1. Default scenario.
        let default = evaluate_default(engine, &q, opts.k, &oracle);

        // 2. FeedbackBypass scenario: prediction for a never-seen query.
        let predicted = bypass.predict(&q).expect("query from the collection");
        let (bp_point, bp_weights): (&[f64], Vec<f64>) = match opts.components {
            BypassComponents::Full => (&predicted.point, predicted.weights.clone()),
            BypassComponents::WeightsOnly => (&q, predicted.weights.clone()),
            BypassComponents::MovementOnly => (&predicted.point, vec![1.0; dim]),
        };
        let bypass_prre = evaluate_params(engine, bp_point, &bp_weights, opts.k, &oracle);

        // 3. Feedback loop from defaults → AlreadySeen parameters.
        let loop_default = fb_loop.run(&q, &oracle).expect("loop from defaults");
        let seen = evaluate_params(
            engine,
            &loop_default.point,
            &loop_default.weights,
            opts.k,
            &oracle,
        );

        // 4. Optional savings measurement.
        let cycles_from_predicted = if opts.measure_savings {
            let loop_pred = fb_loop
                .run_from(&predicted.point, &predicted.weights, &oracle)
                .expect("loop from prediction");
            Some(loop_pred.cycles)
        } else {
            None
        };

        // 5. Insert the converged parameters (only if the loop learned
        // something; Figure 5's guard).
        if loop_default.cycles > 0 {
            bypass
                .insert(&q, &loop_default.point, &loop_default.weights)
                .expect("insert converged parameters");
        }

        let shape = bypass.tree().shape();
        records.push(QueryRecord {
            category,
            default,
            bypass: bypass_prre,
            seen,
            cycles_from_default: loop_default.cycles,
            cycles_from_predicted,
            nodes_visited: predicted.nodes_visited,
            tree_depth: shape.depth,
            stored_points: shape.stored_points,
        });
    }
    StreamResult { records, bypass }
}

/// Column extractors used by the figure benches.
impl QueryRecord {
    /// `(default, bypass, seen)` precision triple.
    pub fn precisions(&self) -> (f64, f64, f64) {
        (
            self.default.precision,
            self.bypass.precision,
            self.seen.precision,
        )
    }

    /// `(default, bypass, seen)` recall triple.
    pub fn recalls(&self) -> (f64, f64, f64) {
        (self.default.recall, self.bypass.recall, self.seen.recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use fbp_imagegen::DatasetConfig;
    use fbp_vecdb::LinearScan;

    fn tiny_stream(n: usize, k: usize, savings: bool) -> StreamResult {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let scan = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k,
            measure_savings: savings,
            ..Default::default()
        };
        run_stream(&ds, &scan, &opts)
    }

    #[test]
    fn stream_produces_records_and_learns() {
        let res = tiny_stream(60, 10, false);
        assert_eq!(res.records.len(), 60);
        // The tree must have stored something.
        let last = res.records.last().unwrap();
        assert!(last.stored_points > 0, "nothing stored");
        assert!(last.tree_depth >= 2);
        // AlreadySeen must dominate Default on average (it is the loop's
        // converged result for the very same queries).
        let d: Vec<f64> = res.records.iter().map(|r| r.default.precision).collect();
        let s: Vec<f64> = res.records.iter().map(|r| r.seen.precision).collect();
        assert!(
            metrics::mean(&s) > metrics::mean(&d),
            "seen {} <= default {}",
            metrics::mean(&s),
            metrics::mean(&d)
        );
    }

    #[test]
    fn bypass_improves_over_time() {
        let res = tiny_stream(80, 10, false);
        // Late-stream bypass predictions should beat early ones relative
        // to default (the learning effect). Compare gains, not raw
        // precision, to control for query difficulty.
        let gains: Vec<f64> = res
            .records
            .iter()
            .map(|r| r.bypass.precision - r.default.precision)
            .collect();
        let early = metrics::mean(&gains[..20]);
        let late = metrics::tail_mean(&gains, 20);
        assert!(
            late >= early - 0.02,
            "bypass gain should not degrade: early {early}, late {late}"
        );
    }

    #[test]
    fn savings_measured_when_requested() {
        let res = tiny_stream(20, 10, true);
        assert!(res
            .records
            .iter()
            .all(|r| r.cycles_from_predicted.is_some()));
        let res2 = tiny_stream(5, 10, false);
        assert!(res2
            .records
            .iter()
            .all(|r| r.cycles_from_predicted.is_none()));
    }

    #[test]
    fn queries_are_never_seen_before() {
        // Sampling is without replacement: stored points ≤ distinct
        // queries, and records count = requested.
        let res = tiny_stream(50, 10, false);
        let last = res.records.last().unwrap();
        assert!(last.stored_points <= 50);
    }

    #[test]
    fn component_variants_behave() {
        let ds = SyntheticDataset::generate(DatasetConfig::small());
        let scan = LinearScan::new(&ds.collection);
        let run_with = |components: BypassComponents| {
            let opts = StreamOptions {
                n_queries: 40,
                k: 10,
                components,
                ..Default::default()
            };
            run_stream(&ds, &scan, &opts)
        };
        let full = run_with(BypassComponents::Full);
        let weights = run_with(BypassComponents::WeightsOnly);
        let movement = run_with(BypassComponents::MovementOnly);
        // The three variants share Default and AlreadySeen measurements
        // exactly (only the bypass evaluation differs).
        for ((f, w), m) in full
            .records
            .iter()
            .zip(weights.records.iter())
            .zip(movement.records.iter())
        {
            assert_eq!(f.default.precision, w.default.precision);
            assert_eq!(f.seen.precision, m.seen.precision);
        }
        // MovementOnly with a fresh tree equals default precision on the
        // very first query (nothing learned yet → Δ = 0, weights = 1).
        let first = &movement.records[0];
        assert_eq!(first.bypass.precision, first.default.precision);
    }
}
