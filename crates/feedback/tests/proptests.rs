//! Property-based tests for the feedback engines.

use fbp_feedback::reweight::{normalize_geomean, ReweightOptions, ReweightRule};
use fbp_feedback::{optimal_point, reweight, rocchio, ScoredPoint};
use proptest::prelude::*;

const DIM: usize = 6;

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, DIM), 1..30)
}

fn scores_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.1..5.0f64, n)
}

proptest! {
    #[test]
    fn optimal_point_inside_convex_hull(rows in rows_strategy()) {
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let q = optimal_point(&pts).unwrap();
        // Componentwise within [min, max] of the inputs (convexity).
        for i in 0..DIM {
            let lo = rows.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min);
            let hi = rows.iter().map(|r| r[i]).fold(0.0, f64::max);
            prop_assert!(q[i] >= lo - 1e-12 && q[i] <= hi + 1e-12);
        }
    }

    #[test]
    fn optimal_point_scale_invariant_in_scores(
        rows in rows_strategy(),
        alpha in 0.1..10.0f64,
    ) {
        // Multiplying every score by a constant must not move the point.
        let a: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let b: Vec<ScoredPoint> =
            rows.iter().map(|r| ScoredPoint::new(r, alpha)).collect();
        let qa = optimal_point(&a).unwrap();
        let qb = optimal_point(&b).unwrap();
        for i in 0..DIM {
            prop_assert!((qa[i] - qb[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn reweight_output_contract(rows in rows_strategy()) {
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let opts = ReweightOptions::default();
        let w = reweight(&pts, &opts).unwrap();
        prop_assert_eq!(w.len(), DIM);
        // Positive, finite, ratio within the cap; geometric mean close to
        // 1 (exactly 1 unless the ratio cap had to clamp both band edges —
        // the cap takes precedence, see reweight docs).
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
        let gm: f64 = w.iter().map(|x| x.ln()).sum::<f64>() / DIM as f64;
        prop_assert!(gm.abs() < opts.max_ratio.ln() / 2.0 + 1e-9, "geomean ln {gm}");
        let ratio = w.iter().cloned().fold(0.0_f64, f64::max)
            / w.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(ratio <= opts.max_ratio * (1.0 + 1e-9));
    }

    #[test]
    fn reweight_orders_by_dispersion(
        spread_small in 0.001..0.02f64,
        spread_large in 0.2..0.45f64,
        n in 4usize..20,
    ) {
        // Dim 0 tightly clustered, dim 1 widely spread: w0 > w1 under both
        // rules.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let t = (i as f64 / (n - 1).max(1) as f64) * 2.0 - 1.0;
                let mut v = vec![0.5; DIM];
                v[0] = 0.5 + t * spread_small;
                v[1] = 0.5 + t * spread_large;
                v
            })
            .collect();
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        for rule in [ReweightRule::InverseSigma, ReweightRule::InverseVariance] {
            let w = reweight(
                &pts,
                &ReweightOptions {
                    rule,
                    ..Default::default()
                },
            )
            .unwrap();
            prop_assert!(w[0] > w[1], "{rule:?}: {w:?}");
        }
    }

    #[test]
    fn reweight_invariant_under_permutation_of_examples(
        rows in rows_strategy(),
        seed in 0u64..1000,
    ) {
        // Statistics are symmetric in the example order.
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let w1 = reweight(&pts, &ReweightOptions::default()).unwrap();
        let mut shuffled = rows.clone();
        // Simple deterministic shuffle.
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        let pts2: Vec<ScoredPoint> =
            shuffled.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let w2 = reweight(&pts2, &ReweightOptions::default()).unwrap();
        for (a, b) in w1.iter().zip(w2.iter()) {
            prop_assert!((a - b).abs() < 1e-7, "{w1:?} vs {w2:?}");
        }
    }

    #[test]
    fn rocchio_linear_in_query(
        rows in rows_strategy(),
        q in prop::collection::vec(0.0..1.0f64, DIM),
        alpha in 0.1..2.0f64,
    ) {
        // With beta = gamma = 0, Rocchio is exactly alpha·q.
        let empty: Vec<ScoredPoint> = Vec::new();
        let out = rocchio(&q, &empty, &empty, alpha, 0.5, 0.5).unwrap();
        for i in 0..DIM {
            prop_assert!((out[i] - alpha * q[i]).abs() < 1e-12);
        }
        // Full Rocchio with weights reduces to the good centroid when
        // alpha = gamma = 0, beta = 1.
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let out2 = rocchio(&q, &pts, &empty, 0.0, 1.0, 0.0).unwrap();
        let centroid = optimal_point(&pts).unwrap();
        for i in 0..DIM {
            prop_assert!((out2[i] - centroid[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn normalize_geomean_idempotent(mut w in prop::collection::vec(0.01..100.0f64, 1..16)) {
        normalize_geomean(&mut w);
        let once = w.clone();
        normalize_geomean(&mut w);
        for (a, b) in once.iter().zip(w.iter()) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn graded_scores_interpolate_binary(
        rows in rows_strategy(),
        scores in scores_strategy(30),
    ) {
        // Graded scoring must produce a valid weight vector too (the
        // paper's §2 mentions graded levels as a refinement).
        let pts: Vec<ScoredPoint> = rows
            .iter()
            .zip(scores.iter())
            .map(|(r, &s)| ScoredPoint::new(r, s))
            .collect();
        let w = reweight(&pts, &ReweightOptions::default()).unwrap();
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
    }
}
