//! Relevance oracles.
//!
//! The paper's evaluation (§5) automates the feedback loop: "For each
//! query image, any image in the same category was considered a good
//! match whereas all other images were considered bad matches, regardless
//! of their color similarity." [`CategoryOracle`] implements exactly that
//! protocol; the trait keeps the loop driver testable with synthetic
//! oracles.

use crate::score::Relevance;
use fbp_vecdb::{CategoryId, Collection};

/// Judges the relevance of result objects for one query.
pub trait RelevanceOracle {
    /// Judge collection object `index`.
    fn judge(&self, index: u32) -> Relevance;
}

/// The paper's category oracle: good iff the object shares the query's
/// category.
#[derive(Debug, Clone, Copy)]
pub struct CategoryOracle<'a> {
    coll: &'a Collection,
    query_category: CategoryId,
}

impl<'a> CategoryOracle<'a> {
    /// Oracle for a query belonging to `query_category`.
    pub fn new(coll: &'a Collection, query_category: CategoryId) -> Self {
        CategoryOracle {
            coll,
            query_category,
        }
    }

    /// The category this oracle considers relevant.
    pub fn category(&self) -> CategoryId {
        self.query_category
    }

    /// Total relevant objects in the collection (recall denominator).
    pub fn relevant_count(&self) -> usize {
        self.coll.category_size(self.query_category)
    }
}

impl RelevanceOracle for CategoryOracle<'_> {
    fn judge(&self, index: u32) -> Relevance {
        if self.coll.label(index as usize) == self.query_category {
            Relevance::Good
        } else {
            Relevance::Bad
        }
    }
}

/// Oracle driven by an explicit good-set (tests and custom protocols).
#[derive(Debug, Clone, Default)]
pub struct SetOracle {
    good: std::collections::HashSet<u32>,
}

impl SetOracle {
    /// Oracle marking exactly `good` as relevant.
    pub fn new(good: impl IntoIterator<Item = u32>) -> Self {
        SetOracle {
            good: good.into_iter().collect(),
        }
    }
}

impl RelevanceOracle for SetOracle {
    fn judge(&self, index: u32) -> Relevance {
        if self.good.contains(&index) {
            Relevance::Good
        } else {
            Relevance::Bad
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_vecdb::CollectionBuilder;

    #[test]
    fn category_oracle_follows_labels() {
        let mut b = CollectionBuilder::new();
        let birds = b.category("Bird");
        let fish = b.category("Fish");
        b.push(&[0.0], birds).unwrap();
        b.push(&[1.0], fish).unwrap();
        b.push_unlabelled(&[2.0]).unwrap();
        let c = b.build();
        let oracle = CategoryOracle::new(&c, birds);
        assert_eq!(oracle.judge(0), Relevance::Good);
        assert_eq!(oracle.judge(1), Relevance::Bad);
        assert_eq!(oracle.judge(2), Relevance::Bad);
        assert_eq!(oracle.relevant_count(), 1);
        assert_eq!(oracle.category(), birds);
    }

    #[test]
    fn set_oracle() {
        let o = SetOracle::new([3, 5]);
        assert_eq!(o.judge(3), Relevance::Good);
        assert_eq!(o.judge(4), Relevance::Bad);
        let empty = SetOracle::default();
        assert_eq!(empty.judge(0), Relevance::Bad);
    }
}
