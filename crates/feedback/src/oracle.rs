//! Relevance oracles.
//!
//! The paper's evaluation (§5) automates the feedback loop: "For each
//! query image, any image in the same category was considered a good
//! match whereas all other images were considered bad matches, regardless
//! of their color similarity." [`CategoryOracle`] implements exactly that
//! protocol; the trait keeps the loop driver testable with synthetic
//! oracles.

use crate::score::Relevance;
use fbp_vecdb::{CategoryId, Collection};

/// Judges the relevance of result objects for one query.
pub trait RelevanceOracle {
    /// Judge collection object `index`.
    fn judge(&self, index: u32) -> Relevance;
}

/// The paper's category oracle: good iff the object shares the query's
/// category.
#[derive(Debug, Clone, Copy)]
pub struct CategoryOracle<'a> {
    coll: &'a Collection,
    query_category: CategoryId,
}

impl<'a> CategoryOracle<'a> {
    /// Oracle for a query belonging to `query_category`.
    pub fn new(coll: &'a Collection, query_category: CategoryId) -> Self {
        CategoryOracle {
            coll,
            query_category,
        }
    }

    /// The category this oracle considers relevant.
    pub fn category(&self) -> CategoryId {
        self.query_category
    }

    /// Total relevant objects in the collection (recall denominator).
    pub fn relevant_count(&self) -> usize {
        self.coll.category_size(self.query_category)
    }
}

impl RelevanceOracle for CategoryOracle<'_> {
    fn judge(&self, index: u32) -> Relevance {
        if self.coll.label(index as usize) == self.query_category {
            Relevance::Good
        } else {
            Relevance::Bad
        }
    }
}

/// Oracle driven by explicit judgment sets (tests, custom protocols,
/// and the wire feedback path).
///
/// Two judgment regimes, picked by the constructor:
///
/// * [`SetOracle::new`] — the historical closed-world rule: listed ids
///   are [`Relevance::Good`], **everything else** is
///   [`Relevance::Bad`]. This is what a category-style protocol means
///   when the user only marks the good rows.
/// * [`SetOracle::with_negatives`] — three-valued: explicitly listed
///   positives are `Good`, explicitly listed negatives are `Bad`, and
///   everything unlisted is [`Relevance::Neutral`] — judged neither way,
///   so it feeds neither the β nor the γ term of a Rocchio movement.
///   This is the shape interactive sessions hand back when the user
///   marks a few results each way and skips the rest.
#[derive(Debug, Clone)]
pub struct SetOracle {
    good: std::collections::HashSet<u32>,
    bad: std::collections::HashSet<u32>,
    /// Closed world: unlisted ids are Bad (the `new` regime); open
    /// world: unlisted ids are Neutral (`with_negatives`).
    unlisted_is_bad: bool,
}

impl Default for SetOracle {
    /// Same as `SetOracle::new([])`: the historical closed-world empty
    /// oracle that judges everything a bad match.
    fn default() -> Self {
        SetOracle::new([])
    }
}

impl SetOracle {
    /// Oracle marking exactly `good` as relevant and everything else as
    /// a bad match (closed-world judgments).
    pub fn new(good: impl IntoIterator<Item = u32>) -> Self {
        SetOracle {
            good: good.into_iter().collect(),
            bad: std::collections::HashSet::new(),
            unlisted_is_bad: true,
        }
    }

    /// Oracle with explicit positive **and** negative judgments;
    /// everything unlisted is [`Relevance::Neutral`]. An id listed both
    /// ways counts as `Good` (the positive set wins — marking something
    /// relevant is the stronger signal).
    pub fn with_negatives(
        good: impl IntoIterator<Item = u32>,
        bad: impl IntoIterator<Item = u32>,
    ) -> Self {
        SetOracle {
            good: good.into_iter().collect(),
            bad: bad.into_iter().collect(),
            unlisted_is_bad: false,
        }
    }
}

impl RelevanceOracle for SetOracle {
    fn judge(&self, index: u32) -> Relevance {
        if self.good.contains(&index) {
            Relevance::Good
        } else if self.unlisted_is_bad || self.bad.contains(&index) {
            Relevance::Bad
        } else {
            Relevance::Neutral
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_vecdb::CollectionBuilder;

    #[test]
    fn category_oracle_follows_labels() {
        let mut b = CollectionBuilder::new();
        let birds = b.category("Bird");
        let fish = b.category("Fish");
        b.push(&[0.0], birds).unwrap();
        b.push(&[1.0], fish).unwrap();
        b.push_unlabelled(&[2.0]).unwrap();
        let c = b.build();
        let oracle = CategoryOracle::new(&c, birds);
        assert_eq!(oracle.judge(0), Relevance::Good);
        assert_eq!(oracle.judge(1), Relevance::Bad);
        assert_eq!(oracle.judge(2), Relevance::Bad);
        assert_eq!(oracle.relevant_count(), 1);
        assert_eq!(oracle.category(), birds);
    }

    #[test]
    fn set_oracle() {
        let o = SetOracle::new([3, 5]);
        assert_eq!(o.judge(3), Relevance::Good);
        assert_eq!(o.judge(4), Relevance::Bad);
        let empty = SetOracle::default();
        assert_eq!(empty.judge(0), Relevance::Bad);
    }

    #[test]
    fn set_oracle_with_negatives_is_three_valued() {
        let o = SetOracle::with_negatives([1, 2], [7, 8]);
        assert_eq!(o.judge(1), Relevance::Good);
        assert_eq!(o.judge(7), Relevance::Bad);
        assert_eq!(o.judge(42), Relevance::Neutral);
        // Conflicting judgments resolve in favor of the positive set.
        let both = SetOracle::with_negatives([5], [5]);
        assert_eq!(both.judge(5), Relevance::Good);
        // Empty negative set behaves like "nothing is bad", not like
        // the closed-world `new` rule.
        let open = SetOracle::with_negatives([1], []);
        assert_eq!(open.judge(2), Relevance::Neutral);
    }
}
