//! # fbp-feedback
//!
//! Relevance feedback engines (paper §2) and the feedback-loop driver
//! whose converged parameters are what FeedbackBypass stores.
//!
//! The interactive retrieval protocol: the system returns `k` results,
//! the user scores them, and the system derives
//!
//! * a **new query point** — [`movement`]: Rocchio's formula or the
//!   MindReader/ISF98 *optimal* point (Equation 2 of the paper: the
//!   score-weighted average of the good results);
//! * a **new distance function** — [`reweight()`]: the MARS rule
//!   `wᵢ = 1/σᵢ` or the ISF98-optimal `wᵢ ∝ 1/σᵢ²`, with full-covariance
//!   (Mahalanobis) re-weighting in [`covariance`] and the Rui-Huang
//!   two-level scheme in [`hierarchical`];
//!
//! then re-runs the query until the result list stops changing
//! ([`loop_driver`], the paper's §5 protocol). [`oracle`] supplies the
//! automated category-based relevance judgments the paper's evaluation
//! uses.

#![warn(missing_docs)]

pub mod covariance;
pub mod hierarchical;
pub mod loop_driver;
pub mod movement;
pub mod oracle;
pub mod reweight;
pub mod score;
pub mod step;

pub use loop_driver::{FeedbackConfig, FeedbackLoop, LoopResult, MovementStrategy};
pub use movement::{optimal_point, rocchio};
pub use oracle::{CategoryOracle, RelevanceOracle, SetOracle};
pub use reweight::{reweight, ReweightRule};
pub use score::{Relevance, ScoredPoint};
pub use step::{FeedbackStepper, StepOutcome};

/// Errors from the feedback engines.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedbackError {
    /// No positively-scored examples: the formulas are undefined.
    NoPositiveExamples,
    /// Dimension mismatch between inputs.
    DimMismatch {
        /// Dimensionality the operation expected.
        expected: usize,
        /// Dimensionality actually supplied.
        got: usize,
    },
    /// Invalid configuration value.
    BadConfig(String),
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackError::NoPositiveExamples => {
                write!(f, "no positively-scored examples")
            }
            FeedbackError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            FeedbackError::BadConfig(msg) => write!(f, "bad config: {msg}"),
        }
    }
}

impl std::error::Error for FeedbackError {}

/// Result alias for feedback operations.
pub type Result<T> = std::result::Result<T, FeedbackError>;
