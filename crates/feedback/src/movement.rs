//! Query point movement (paper §2, Figure 2a).

use crate::score::ScoredPoint;
use crate::{FeedbackError, Result};

/// The MindReader/ISF98 *optimal* query point — Equation 2 of the paper:
///
/// ```text
/// q' = Σⱼ Score(pⱼ)·pⱼ / Σⱼ Score(pⱼ)
/// ```
///
/// the score-weighted centroid of the good results. Ishikawa et al. proved
/// this point optimal for positive scores under (weighted) quadratic
/// distances.
///
/// Errors with [`FeedbackError::NoPositiveExamples`] when every score is 0.
pub fn optimal_point(good: &[ScoredPoint<'_>]) -> Result<Vec<f64>> {
    let Some(first) = good.first() else {
        return Err(FeedbackError::NoPositiveExamples);
    };
    let dim = first.point.len();
    let mut acc = vec![0.0; dim];
    let mut total = 0.0;
    for sp in good {
        if sp.point.len() != dim {
            return Err(FeedbackError::DimMismatch {
                expected: dim,
                got: sp.point.len(),
            });
        }
        if sp.score <= 0.0 {
            continue;
        }
        total += sp.score;
        for (a, &x) in acc.iter_mut().zip(sp.point.iter()) {
            *a += sp.score * x;
        }
    }
    if total <= 0.0 {
        return Err(FeedbackError::NoPositiveExamples);
    }
    for a in acc.iter_mut() {
        *a /= total;
    }
    Ok(acc)
}

/// Rocchio's formula (Salton '88), the classic document-retrieval rule the
/// paper cites as the origin of query point movement:
///
/// ```text
/// q' = α·q + β·centroid(good) − γ·centroid(bad)
/// ```
///
/// `good`/`bad` may be empty (their term drops out); at least one of the
/// three terms must be active. Scores weight the centroids.
pub fn rocchio(
    q: &[f64],
    good: &[ScoredPoint<'_>],
    bad: &[ScoredPoint<'_>],
    alpha: f64,
    beta: f64,
    gamma: f64,
) -> Result<Vec<f64>> {
    let dim = q.len();
    let mut out: Vec<f64> = q.iter().map(|&x| alpha * x).collect();
    let centroid = |pts: &[ScoredPoint<'_>]| -> Result<Option<Vec<f64>>> {
        let mut acc = vec![0.0; dim];
        let mut total = 0.0;
        for sp in pts {
            if sp.point.len() != dim {
                return Err(FeedbackError::DimMismatch {
                    expected: dim,
                    got: sp.point.len(),
                });
            }
            total += sp.score;
            for (a, &x) in acc.iter_mut().zip(sp.point.iter()) {
                *a += sp.score * x;
            }
        }
        if total <= 0.0 {
            return Ok(None);
        }
        for a in acc.iter_mut() {
            *a /= total;
        }
        Ok(Some(acc))
    };
    if let Some(g) = centroid(good)? {
        for (o, x) in out.iter_mut().zip(g.iter()) {
            *o += beta * x;
        }
    }
    if let Some(b) = centroid(bad)? {
        for (o, x) in out.iter_mut().zip(b.iter()) {
            *o -= gamma * x;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_point_is_weighted_centroid() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let pts = [ScoredPoint::new(&a, 1.0), ScoredPoint::new(&b, 3.0)];
        let q = optimal_point(&pts).unwrap();
        assert!((q[0] - 0.75).abs() < 1e-12);
        assert!((q[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn optimal_point_single_good_is_that_point() {
        let a = [0.3, 0.7];
        let q = optimal_point(&[ScoredPoint::new(&a, 2.0)]).unwrap();
        assert_eq!(q, vec![0.3, 0.7]);
    }

    #[test]
    fn optimal_point_rejects_empty_or_zero_scores() {
        assert_eq!(optimal_point(&[]), Err(FeedbackError::NoPositiveExamples));
        let a = [1.0];
        assert_eq!(
            optimal_point(&[ScoredPoint::new(&a, 0.0)]),
            Err(FeedbackError::NoPositiveExamples)
        );
    }

    #[test]
    fn optimal_point_dim_mismatch() {
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(matches!(
            optimal_point(&[ScoredPoint::new(&a, 1.0), ScoredPoint::new(&b, 1.0)]),
            Err(FeedbackError::DimMismatch { .. })
        ));
    }

    #[test]
    fn rocchio_moves_toward_good_away_from_bad() {
        let q = [0.5, 0.5];
        let g = [1.0, 0.5];
        let b = [0.0, 0.5];
        let q2 = rocchio(
            &q,
            &[ScoredPoint::new(&g, 1.0)],
            &[ScoredPoint::new(&b, 1.0)],
            1.0,
            0.5,
            0.25,
        )
        .unwrap();
        // x: 0.5 + 0.5·1.0 − 0.25·0.0 = 1.0; y: 0.5 + 0.25 − 0.125 = 0.625.
        assert!((q2[0] - 1.0).abs() < 1e-12);
        assert!((q2[1] - 0.625).abs() < 1e-12);
    }

    #[test]
    fn rocchio_with_no_feedback_scales_query() {
        let q = [2.0, 4.0];
        let q2 = rocchio(&q, &[], &[], 1.0, 0.75, 0.25).unwrap();
        assert_eq!(q2, vec![2.0, 4.0]);
    }

    #[test]
    fn rocchio_pure_good_reduces_to_centroid() {
        let q = [0.0, 0.0];
        let g1 = [1.0, 0.0];
        let g2 = [0.0, 1.0];
        let q2 = rocchio(
            &q,
            &[ScoredPoint::new(&g1, 1.0), ScoredPoint::new(&g2, 1.0)],
            &[],
            0.0,
            1.0,
            0.0,
        )
        .unwrap();
        assert!((q2[0] - 0.5).abs() < 1e-12 && (q2[1] - 0.5).abs() < 1e-12);
    }
}
