//! Re-weighting (paper §2, Figure 2b): derive per-component weights from
//! the spread of the good results along each feature dimension.

use crate::score::ScoredPoint;
use crate::{FeedbackError, Result};
use fbp_linalg::RunningStats;

/// Which σ-based rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReweightRule {
    /// MARS (Rui et al. '98): `wᵢ = 1/σᵢ`.
    InverseSigma,
    /// ISF98 optimum (Ishikawa et al., MindReader): `wᵢ ∝ 1/σᵢ²` — proved
    /// optimal for weighted Euclidean; the default here as in the paper's
    /// lineage.
    #[default]
    InverseVariance,
}

/// Options for [`reweight`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReweightOptions {
    /// Rule choice.
    pub rule: ReweightRule,
    /// Floor applied to every σᵢ before inversion. A dimension along which
    /// all good matches agree exactly (σ = 0, routine when fewer good
    /// matches than dimensions — cf. \[RH00\]) would otherwise produce an
    /// infinite weight.
    pub sigma_floor: f64,
    /// Cap on the ratio `max(w)/min(w)` after normalization; keeps the
    /// learned parameter surface bounded so interpolation in the Simplex
    /// Tree stays well-behaved. `f64::INFINITY` disables the cap.
    pub max_ratio: f64,
}

impl Default for ReweightOptions {
    fn default() -> Self {
        ReweightOptions {
            rule: ReweightRule::InverseVariance,
            sigma_floor: 1e-3,
            max_ratio: 1e4,
        }
    }
}

/// Compute weights from the good results (score-weighted statistics),
/// normalized to geometric mean 1.
///
/// The ratio cap takes precedence over exact normalization: when the raw
/// weight spread exceeds `max_ratio`, clamping can leave the geometric
/// mean off 1 (rankings are invariant under global weight scale, so this
/// costs nothing).
///
/// Errors when no example has a positive score.
pub fn reweight(good: &[ScoredPoint<'_>], opts: &ReweightOptions) -> Result<Vec<f64>> {
    let Some(first) = good.first() else {
        return Err(FeedbackError::NoPositiveExamples);
    };
    if opts.sigma_floor <= 0.0 {
        return Err(FeedbackError::BadConfig(
            "sigma_floor must be positive".into(),
        ));
    }
    // `!(x >= 1.0)` deliberately catches NaN as well as x < 1.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(opts.max_ratio >= 1.0) {
        return Err(FeedbackError::BadConfig("max_ratio must be >= 1".into()));
    }
    let dim = first.point.len();
    let mut stats = vec![RunningStats::new(); dim];
    let mut wsums = vec![0.0; dim];
    let mut any = false;
    for sp in good {
        if sp.point.len() != dim {
            return Err(FeedbackError::DimMismatch {
                expected: dim,
                got: sp.point.len(),
            });
        }
        if sp.score <= 0.0 {
            continue;
        }
        any = true;
        for i in 0..dim {
            stats[i].push_weighted(sp.point[i], sp.score, &mut wsums[i]);
        }
    }
    if !any {
        return Err(FeedbackError::NoPositiveExamples);
    }
    let mut weights: Vec<f64> = stats
        .iter()
        .map(|s| {
            let sigma = s.std_dev().max(opts.sigma_floor);
            match opts.rule {
                ReweightRule::InverseSigma => 1.0 / sigma,
                ReweightRule::InverseVariance => 1.0 / (sigma * sigma),
            }
        })
        .collect();
    normalize_geomean(&mut weights);
    apply_ratio_cap(&mut weights, opts.max_ratio);
    Ok(weights)
}

/// Normalize to geometric mean 1 (ranking-invariant scale fix; see
/// DESIGN.md §4.6).
pub fn normalize_geomean(weights: &mut [f64]) {
    if weights.is_empty() {
        return;
    }
    let log_mean = weights.iter().map(|w| w.max(1e-300).ln()).sum::<f64>() / weights.len() as f64;
    let scale = (-log_mean).exp();
    for w in weights.iter_mut() {
        *w *= scale;
    }
}

/// Clamp the weight spread to `max_ratio`, then re-normalize.
fn apply_ratio_cap(weights: &mut [f64], max_ratio: f64) {
    if !max_ratio.is_finite() || weights.is_empty() {
        return;
    }
    // Clamp symmetrically around the geometric mean (which is 1 after
    // normalization): allowed band [1/√r, √r].
    let hi = max_ratio.sqrt();
    let lo = 1.0 / hi;
    let mut clamped = false;
    for w in weights.iter_mut() {
        if *w > hi {
            *w = hi;
            clamped = true;
        } else if *w < lo {
            *w = lo;
            clamped = true;
        }
    }
    if clamped {
        normalize_geomean(weights);
        // One clamp round can push values slightly outside after
        // re-normalization; a second pass settles within the band for all
        // practical inputs (band is multiplicative, normalization is a
        // uniform scale).
        for w in weights.iter_mut() {
            *w = w.clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts<'a>(rows: &'a [Vec<f64>]) -> Vec<ScoredPoint<'a>> {
        rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect()
    }

    #[test]
    fn tight_dimension_gets_higher_weight() {
        // Dim 0 is tight (σ small), dim 1 is spread out.
        let rows = vec![
            vec![0.50, 0.1],
            vec![0.51, 0.9],
            vec![0.49, 0.5],
            vec![0.50, 0.2],
        ];
        let w = reweight(&pts(&rows), &ReweightOptions::default()).unwrap();
        assert!(w[0] > w[1], "tight dim should outweigh loose dim: {w:?}");
        // Geometric mean 1.
        let gm: f64 = w.iter().map(|x| x.ln()).sum::<f64>() / w.len() as f64;
        assert!(gm.abs() < 1e-9);
    }

    #[test]
    fn inverse_variance_sharper_than_inverse_sigma() {
        let rows = vec![vec![0.5, 0.1], vec![0.5, 0.9], vec![0.5, 0.4]];
        let sig = reweight(
            &pts(&rows),
            &ReweightOptions {
                rule: ReweightRule::InverseSigma,
                ..Default::default()
            },
        )
        .unwrap();
        let var = reweight(
            &pts(&rows),
            &ReweightOptions {
                rule: ReweightRule::InverseVariance,
                ..Default::default()
            },
        )
        .unwrap();
        // Both favor dim 0; the variance rule favors it more strongly.
        assert!(sig[0] > sig[1]);
        assert!(var[0] / var[1] > sig[0] / sig[1]);
    }

    #[test]
    fn sigma_floor_handles_degenerate_dims() {
        // Single good match: all σ = 0.
        let rows = vec![vec![0.2, 0.8, 0.5]];
        let w = reweight(&pts(&rows), &ReweightOptions::default()).unwrap();
        // All dims identical ⇒ uniform weights 1 after normalization.
        for &x in &w {
            assert!((x - 1.0).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn scores_weight_the_statistics() {
        // A high-score pair agreeing on dim 0 dominates a low-score outlier.
        let a = vec![0.5, 0.5];
        let b = vec![0.5, 0.9];
        let c = vec![0.9, 0.5]; // outlier on dim 0
        let weighted = vec![
            ScoredPoint::new(&a, 10.0),
            ScoredPoint::new(&b, 10.0),
            ScoredPoint::new(&c, 0.1),
        ];
        let w = reweight(&weighted, &ReweightOptions::default()).unwrap();
        assert!(w[0] > w[1], "{w:?}");
    }

    #[test]
    fn ratio_cap_bounds_spread() {
        let rows = vec![vec![0.500, 0.0], vec![0.5001, 1.0], vec![0.4999, 0.5]];
        let opts = ReweightOptions {
            max_ratio: 16.0,
            ..Default::default()
        };
        let w = reweight(&pts(&rows), &opts).unwrap();
        let ratio = w.iter().cloned().fold(0.0_f64, f64::max)
            / w.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(ratio <= 16.0 + 1e-9, "ratio {ratio}");
    }

    #[test]
    fn errors() {
        assert_eq!(
            reweight(&[], &ReweightOptions::default()),
            Err(FeedbackError::NoPositiveExamples)
        );
        let a = vec![1.0];
        let zero = vec![ScoredPoint::new(&a, 0.0)];
        assert_eq!(
            reweight(&zero, &ReweightOptions::default()),
            Err(FeedbackError::NoPositiveExamples)
        );
        let bad_floor = ReweightOptions {
            sigma_floor: 0.0,
            ..Default::default()
        };
        let one = vec![ScoredPoint::new(&a, 1.0)];
        assert!(matches!(
            reweight(&one, &bad_floor),
            Err(FeedbackError::BadConfig(_))
        ));
        let bad_ratio = ReweightOptions {
            max_ratio: 0.5,
            ..Default::default()
        };
        assert!(matches!(
            reweight(&one, &bad_ratio),
            Err(FeedbackError::BadConfig(_))
        ));
    }

    #[test]
    fn normalize_geomean_empty_ok() {
        let mut e: Vec<f64> = vec![];
        normalize_geomean(&mut e);
        assert!(e.is_empty());
    }
}
