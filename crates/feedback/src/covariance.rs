//! Full-covariance (Mahalanobis) re-weighting — the ISF98 quadratic-form
//! extension the paper describes in §2 but excludes from its experiments
//! (with k ≤ 80 good matches, the 496 parameters of a 32-dim quadratic
//! form cannot be estimated — §5). Provided as the documented extension.

use crate::score::ScoredPoint;
use crate::{FeedbackError, Result};
use fbp_linalg::Matrix;
use fbp_vecdb::QuadraticDistance;

/// Score-weighted covariance matrix of the good examples.
pub fn weighted_covariance(good: &[ScoredPoint<'_>]) -> Result<Matrix> {
    let Some(first) = good.first() else {
        return Err(FeedbackError::NoPositiveExamples);
    };
    let dim = first.point.len();
    let mut total = 0.0;
    let mut mean = vec![0.0; dim];
    for sp in good {
        if sp.point.len() != dim {
            return Err(FeedbackError::DimMismatch {
                expected: dim,
                got: sp.point.len(),
            });
        }
        total += sp.score;
        for (m, &x) in mean.iter_mut().zip(sp.point.iter()) {
            *m += sp.score * x;
        }
    }
    if total <= 0.0 {
        return Err(FeedbackError::NoPositiveExamples);
    }
    for m in mean.iter_mut() {
        *m /= total;
    }
    let mut cov = Matrix::zeros(dim, dim);
    let mut centered = vec![0.0; dim];
    for sp in good {
        if sp.score <= 0.0 {
            continue;
        }
        for i in 0..dim {
            centered[i] = sp.point[i] - mean[i];
        }
        for i in 0..dim {
            let ci = sp.score * centered[i];
            if ci == 0.0 {
                continue;
            }
            let row = cov.row_mut(i);
            for j in 0..dim {
                row[j] += ci * centered[j];
            }
        }
    }
    for i in 0..dim {
        for j in 0..dim {
            cov[(i, j)] /= total;
        }
    }
    Ok(cov)
}

/// ISF98 optimal quadratic distance: `W ∝ Σ⁻¹` of the good examples'
/// covariance, ridge-regularized (`ridge·I`) because the number of good
/// matches is routinely smaller than the dimensionality.
pub fn mahalanobis_reweight(good: &[ScoredPoint<'_>], ridge: f64) -> Result<QuadraticDistance> {
    let cov = weighted_covariance(good)?;
    QuadraticDistance::mahalanobis(&cov, ridge)
        .map_err(|e| FeedbackError::BadConfig(format!("covariance inversion failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_vecdb::Distance;

    #[test]
    fn covariance_matches_unweighted_formula() {
        let rows = [vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]];
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let cov = weighted_covariance(&pts).unwrap();
        let v = 8.0 / 3.0;
        assert!((cov[(0, 0)] - v).abs() < 1e-12);
        assert!((cov[(1, 1)] - 4.0 * v).abs() < 1e-12);
        assert!((cov[(0, 1)] - 2.0 * v).abs() < 1e-12);
    }

    #[test]
    fn scores_reweight_covariance() {
        // Down-weighting the outlier shrinks the variance.
        let a = vec![0.0];
        let b = vec![0.0];
        let c = vec![10.0];
        let full: Vec<ScoredPoint> = vec![
            ScoredPoint::new(&a, 1.0),
            ScoredPoint::new(&b, 1.0),
            ScoredPoint::new(&c, 1.0),
        ];
        let damped: Vec<ScoredPoint> = vec![
            ScoredPoint::new(&a, 1.0),
            ScoredPoint::new(&b, 1.0),
            ScoredPoint::new(&c, 0.01),
        ];
        let v_full = weighted_covariance(&full).unwrap()[(0, 0)];
        let v_damped = weighted_covariance(&damped).unwrap()[(0, 0)];
        assert!(v_damped < v_full);
    }

    #[test]
    fn mahalanobis_reweight_whitens() {
        // Good examples spread 10× more along dim 0 than dim 1: the learned
        // metric must charge dim-1 displacements more.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = (i as f64 - 9.5) / 9.5;
                vec![10.0 * t, t]
            })
            .collect();
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let dist = mahalanobis_reweight(&pts, 1e-6).unwrap();
        let o = [0.0, 0.0];
        let along = dist.eval(&o, &[1.0, 0.0]);
        let across = dist.eval(&o, &[0.0, 1.0]);
        assert!(
            across > 5.0 * along,
            "across {across} should cost much more than along {along}"
        );
    }

    #[test]
    fn degenerate_needs_ridge() {
        // Two identical points: covariance 0, inversion impossible bare.
        let a = vec![0.5, 0.5];
        let pts = vec![ScoredPoint::new(&a, 1.0), ScoredPoint::new(&a, 1.0)];
        assert!(mahalanobis_reweight(&pts, 0.0).is_err());
        assert!(mahalanobis_reweight(&pts, 1e-6).is_ok());
    }

    #[test]
    fn empty_errors() {
        assert!(matches!(
            weighted_covariance(&[]),
            Err(FeedbackError::NoPositiveExamples)
        ));
    }
}
