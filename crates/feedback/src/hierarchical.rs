//! Rui-Huang hierarchical re-weighting \[RH00\] (paper §2, last paragraph).
//!
//! Two levels: *within* each feature, component weights follow the σ-based
//! rule; *across* features, each feature `e` gets a weight `uₑ` inversely
//! proportional to the total distance of the good matches from the query
//! under that feature alone — features that already rank the good matches
//! close get trusted more.

use crate::reweight::{normalize_geomean, ReweightOptions};
use crate::score::ScoredPoint;
use crate::{FeedbackError, Result};
use fbp_vecdb::distance::FeatureSpan;
use fbp_vecdb::HierarchicalDistance;

/// Learn a full hierarchical distance from good feedback examples.
///
/// * component weights: [`crate::reweight::reweight`] applied per span;
/// * feature weights: `uₑ ∝ 1 / Σⱼ scoreⱼ·dₑ(q, pⱼ)` (floored), normalized
///   to geometric mean 1.
pub fn hierarchical_reweight(
    query: &[f64],
    good: &[ScoredPoint<'_>],
    spans: &[FeatureSpan],
    opts: &ReweightOptions,
) -> Result<HierarchicalDistance> {
    let Some(first) = good.first() else {
        return Err(FeedbackError::NoPositiveExamples);
    };
    let dim = first.point.len();
    if query.len() != dim {
        return Err(FeedbackError::DimMismatch {
            expected: dim,
            got: query.len(),
        });
    }
    if spans.is_empty() || spans.last().map(|s| s.end) != Some(dim) {
        return Err(FeedbackError::BadConfig(
            "feature spans must tile the feature vector".into(),
        ));
    }

    // Component weights: the σ rule applied to each span's sub-vectors.
    let mut component_weights = vec![0.0; dim];
    for span in spans {
        let sub: Vec<Vec<f64>> = good
            .iter()
            .filter(|sp| sp.score > 0.0)
            .map(|sp| sp.point[span.start..span.end].to_vec())
            .collect();
        let scored: Vec<ScoredPoint> = sub
            .iter()
            .zip(good.iter().filter(|sp| sp.score > 0.0))
            .map(|(v, orig)| ScoredPoint::new(v, orig.score))
            .collect();
        let w = crate::reweight::reweight(&scored, opts)?;
        component_weights[span.start..span.end].copy_from_slice(&w);
    }

    // Feature weights: inverse total per-feature distance of good matches.
    let provisional = HierarchicalDistance::new(
        spans.to_vec(),
        vec![1.0; spans.len()],
        component_weights.clone(),
    )
    .map_err(|e| FeedbackError::BadConfig(format!("bad spans: {e}")))?;
    let mut feature_weights = Vec::with_capacity(spans.len());
    for (e, _) in spans.iter().enumerate() {
        let mut total = 0.0;
        for sp in good {
            if sp.score <= 0.0 {
                continue;
            }
            total += sp.score * provisional.feature_dist_sq(e, query, sp.point).sqrt();
        }
        feature_weights.push(1.0 / total.max(opts.sigma_floor));
    }
    normalize_geomean(&mut feature_weights);

    HierarchicalDistance::new(spans.to_vec(), feature_weights, component_weights)
        .map_err(|e| FeedbackError::BadConfig(format!("assembly failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_vecdb::Distance;

    #[test]
    fn trusted_feature_gets_higher_weight() {
        // Feature A (dims 0-1): good matches sit on the query. Feature B
        // (dims 2-3): good matches are far away. A must outweigh B.
        let query = [0.5, 0.5, 0.5, 0.5];
        let rows = [
            vec![0.5, 0.5, 0.9, 0.1],
            vec![0.5, 0.5, 0.1, 0.9],
            vec![0.5, 0.5, 0.9, 0.9],
        ];
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let spans = vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, 4)];
        let h = hierarchical_reweight(&query, &pts, &spans, &ReweightOptions::default()).unwrap();
        let fw = h.feature_weights();
        assert!(fw[0] > fw[1], "feature weights {fw:?}");
    }

    #[test]
    fn distance_usable_for_ranking() {
        let query = [0.5, 0.5, 0.5, 0.5];
        let rows = [vec![0.5, 0.5, 0.4, 0.6], vec![0.5, 0.5, 0.6, 0.4]];
        let pts: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
        let spans = vec![FeatureSpan::new(0, 2), FeatureSpan::new(2, 4)];
        let h = hierarchical_reweight(&query, &pts, &spans, &ReweightOptions::default()).unwrap();
        // A point matching on the trusted feature ranks closer than one
        // matching on the untrusted feature by the same Euclidean margin.
        let match_trusted = [0.5, 0.5, 0.9, 0.9];
        let match_untrusted = [0.9, 0.9, 0.5, 0.5];
        assert!(h.eval(&query, &match_trusted) < h.eval(&query, &match_untrusted));
    }

    #[test]
    fn errors() {
        let q = [0.5, 0.5];
        let spans = vec![FeatureSpan::new(0, 2)];
        assert!(matches!(
            hierarchical_reweight(&q, &[], &spans, &ReweightOptions::default()),
            Err(FeedbackError::NoPositiveExamples)
        ));
        let row = vec![0.5, 0.5];
        let pts = vec![ScoredPoint::new(&row, 1.0)];
        // Spans not tiling the vector.
        let short = vec![FeatureSpan::new(0, 1)];
        assert!(matches!(
            hierarchical_reweight(&q, &pts, &short, &ReweightOptions::default()),
            Err(FeedbackError::BadConfig(_))
        ));
        // Query dim mismatch.
        let q3 = [0.5, 0.5, 0.5];
        assert!(matches!(
            hierarchical_reweight(&q3, &pts, &spans, &ReweightOptions::default()),
            Err(FeedbackError::DimMismatch { .. })
        ));
    }
}
