//! Relevance scores.
//!
//! The paper (§2) discusses binary scores ("good" / "bad", with unmarked
//! results implicitly neutral) and graded scores for finer preference
//! tuning. [`Relevance`] covers the binary-with-neutral model;
//! [`ScoredPoint`] attaches a non-negative numeric score so the same
//! formulas serve both models (binary good = score 1).

/// A user's judgment of one result object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relevance {
    /// Marked relevant.
    Good,
    /// Marked irrelevant.
    Bad,
    /// Unmarked (the implicit "no-opinion" of §2).
    Neutral,
}

impl Relevance {
    /// Numeric score used by the movement/re-weighting formulas: good = 1,
    /// everything else contributes 0 to positive-feedback statistics.
    pub fn positive_score(self) -> f64 {
        match self {
            Relevance::Good => 1.0,
            _ => 0.0,
        }
    }

    /// True iff marked good.
    pub fn is_good(self) -> bool {
        matches!(self, Relevance::Good)
    }

    /// True iff marked bad.
    pub fn is_bad(self) -> bool {
        matches!(self, Relevance::Bad)
    }
}

/// A feature vector with a non-negative relevance score.
///
/// Borrowed view: the feedback formulas never need ownership, they fold
/// over collection slices.
#[derive(Debug, Clone, Copy)]
pub struct ScoredPoint<'a> {
    /// The feature vector.
    pub point: &'a [f64],
    /// Non-negative score (graded relevance; binary good = 1.0).
    pub score: f64,
}

impl<'a> ScoredPoint<'a> {
    /// Construct, clamping negative scores to 0.
    pub fn new(point: &'a [f64], score: f64) -> Self {
        ScoredPoint {
            point,
            score: score.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_scores() {
        assert_eq!(Relevance::Good.positive_score(), 1.0);
        assert_eq!(Relevance::Bad.positive_score(), 0.0);
        assert_eq!(Relevance::Neutral.positive_score(), 0.0);
        assert!(Relevance::Good.is_good());
        assert!(!Relevance::Neutral.is_good());
        assert!(Relevance::Bad.is_bad());
        assert!(!Relevance::Good.is_bad());
    }

    #[test]
    fn scored_point_clamps_negative() {
        let v = [1.0, 2.0];
        let s = ScoredPoint::new(&v, -3.0);
        assert_eq!(s.score, 0.0);
        let t = ScoredPoint::new(&v, 2.5);
        assert_eq!(t.score, 2.5);
    }
}
