//! One feedback cycle as a pure parameter transition.
//!
//! [`FeedbackLoop`](crate::FeedbackLoop) owns the whole
//! search→judge→re-parameterize loop for a single session. A retrieval
//! service coalescing many concurrent sessions into shared multi-query
//! scan passes needs the *judge→re-parameterize* half on its own: after
//! each shared pass hands every session its result list, each session
//! advances one step. [`FeedbackStepper::step`] is that half, extracted
//! so the loop driver and the batched serving path (see
//! `fbp-eval::sessions`) execute the *same* transition and stay
//! bit-for-bit comparable.

use crate::loop_driver::{FeedbackConfig, MovementStrategy};
use crate::movement::{optimal_point, rocchio};
use crate::oracle::RelevanceOracle;
use crate::reweight::reweight;
use crate::score::ScoredPoint;
use crate::Result;
use fbp_vecdb::{Collection, ResultList};

/// Outcome of one feedback step.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// New parameters to search with next round.
    Continue {
        /// Moved query point.
        point: Vec<f64>,
        /// Re-learned distance weights.
        weights: Vec<f64>,
    },
    /// The session converged: no good matches to learn from, or the
    /// parameters reached a fixpoint.
    Converged,
}

/// Stateless executor of one feedback cycle against a collection.
pub struct FeedbackStepper<'a> {
    coll: &'a Collection,
    cfg: FeedbackConfig,
}

impl<'a> FeedbackStepper<'a> {
    /// New stepper over `coll` with the given loop configuration.
    pub fn new(coll: &'a Collection, cfg: FeedbackConfig) -> Self {
        FeedbackStepper { coll, cfg }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &FeedbackConfig {
        &self.cfg
    }

    /// Precision@k of one result round under the oracle.
    pub fn precision(&self, results: &ResultList, oracle: &dyn RelevanceOracle) -> f64 {
        if self.cfg.k == 0 {
            return 0.0;
        }
        let good = results.count_relevant(|id| oracle.judge(id).is_good());
        good as f64 / self.cfg.k as f64
    }

    /// Advance one cycle: judge `results`, derive the next `(point,
    /// weights)` from the configured movement and re-weighting
    /// strategies, and report convergence when nothing can move
    /// (identical to the transition inside
    /// [`FeedbackLoop::run_from`](crate::FeedbackLoop::run_from)).
    pub fn step(
        &self,
        point: &[f64],
        weights: &[f64],
        results: &ResultList,
        oracle: &dyn RelevanceOracle,
    ) -> Result<StepOutcome> {
        let (good_idx, bad_idx) = self.partition(results, oracle);
        if good_idx.is_empty() {
            // Nothing to learn from; the loop cannot move.
            return Ok(StepOutcome::Converged);
        }
        let good: Vec<ScoredPoint> = good_idx
            .iter()
            .map(|&i| ScoredPoint::new(self.coll.vector(i as usize), 1.0))
            .collect();

        let new_point = match &self.cfg.movement {
            MovementStrategy::None => point.to_vec(),
            MovementStrategy::Optimal => optimal_point(&good)?,
            MovementStrategy::Rocchio { alpha, beta, gamma } => {
                let bad: Vec<ScoredPoint> = bad_idx
                    .iter()
                    .map(|&i| ScoredPoint::new(self.coll.vector(i as usize), 1.0))
                    .collect();
                rocchio(point, &good, &bad, *alpha, *beta, *gamma)?
            }
        };
        let new_weights = match &self.cfg.reweight {
            Some(opts) => reweight(&good, opts)?,
            None => weights.to_vec(),
        };

        // Parameter fixpoint: nothing changed, no need to search again.
        if params_equal(point, &new_point) && params_equal(weights, &new_weights) {
            return Ok(StepOutcome::Converged);
        }
        Ok(StepOutcome::Continue {
            point: new_point,
            weights: new_weights,
        })
    }

    /// Split one round's results into good/bad ids under the oracle.
    pub fn partition(
        &self,
        results: &ResultList,
        oracle: &dyn RelevanceOracle,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut good = Vec::new();
        let mut bad = Vec::new();
        for id in results.ids() {
            if oracle.judge(id).is_good() {
                good.push(id);
            } else {
                bad.push(id);
            }
        }
        (good, bad)
    }
}

/// Componentwise parameter equality at the loop's fixpoint tolerance.
pub(crate) fn params_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SetOracle;
    use fbp_vecdb::{CollectionBuilder, Neighbor};

    fn tiny() -> Collection {
        let mut b = CollectionBuilder::new();
        b.push_unlabelled(&[0.8, 0.1]).unwrap();
        b.push_unlabelled(&[0.82, 0.9]).unwrap();
        b.push_unlabelled(&[0.1, 0.5]).unwrap();
        b.build()
    }

    fn results(ids: &[u32]) -> ResultList {
        ResultList::new(
            ids.iter()
                .enumerate()
                .map(|(r, &index)| Neighbor {
                    index,
                    dist: r as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn no_good_matches_converges() {
        let coll = tiny();
        let stepper = FeedbackStepper::new(&coll, FeedbackConfig::default());
        let oracle = SetOracle::default();
        let out = stepper
            .step(&[0.5, 0.5], &[1.0, 1.0], &results(&[0, 1, 2]), &oracle)
            .unwrap();
        assert!(matches!(out, StepOutcome::Converged));
    }

    #[test]
    fn good_matches_move_the_point() {
        let coll = tiny();
        let stepper = FeedbackStepper::new(&coll, FeedbackConfig::default());
        let oracle = SetOracle::new(vec![0, 1]);
        let out = stepper
            .step(&[0.5, 0.5], &[1.0, 1.0], &results(&[0, 1, 2]), &oracle)
            .unwrap();
        match out {
            StepOutcome::Continue { point, weights } => {
                // Optimal point = centroid of good matches.
                assert!((point[0] - 0.81).abs() < 1e-9);
                assert_eq!(weights.len(), 2);
            }
            StepOutcome::Converged => panic!("should have moved"),
        }
    }

    #[test]
    fn precision_counts_good_fraction() {
        let coll = tiny();
        let cfg = FeedbackConfig {
            k: 2,
            ..Default::default()
        };
        let stepper = FeedbackStepper::new(&coll, cfg);
        let oracle = SetOracle::new(vec![0]);
        assert_eq!(stepper.precision(&results(&[0, 2]), &oracle), 0.5);
    }
}
