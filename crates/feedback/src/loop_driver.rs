//! The feedback loop driver (paper §2 protocol, §5 automation).
//!
//! One *cycle* = compute new parameters from the current judgments, then
//! re-execute the query. The loop ends when the result list stops
//! changing ("until it converges to a stable situation, i.e. when no
//! changes are observed anymore in the result list", §5) or when a safety
//! cap is hit. The cycle count is exactly the quantity behind the paper's
//! *Saved-Cycles* metric (Figure 15): starting the loop from
//! FeedbackBypass's predicted parameters instead of the defaults saves
//! `cycles(default) − cycles(predicted)` database searches of `k` objects
//! each.

use crate::oracle::RelevanceOracle;
use crate::reweight::ReweightOptions;
use crate::step::{FeedbackStepper, StepOutcome};
use crate::Result;
use fbp_vecdb::{Collection, KnnEngine, ResultList, WeightedEuclidean};

/// Query-point-movement strategy for the loop.
#[derive(Debug, Clone, PartialEq)]
pub enum MovementStrategy {
    /// Keep the query point fixed (re-weighting only).
    None,
    /// MindReader/ISF98 optimal point (Equation 2): score-weighted centroid
    /// of the good matches.
    Optimal,
    /// Rocchio's formula over the *current* query point.
    Rocchio {
        /// Weight of the current query point.
        alpha: f64,
        /// Weight of the good centroid.
        beta: f64,
        /// Weight of the bad centroid (subtracted).
        gamma: f64,
    },
}

/// Loop configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackConfig {
    /// Results per round (the paper's `k`).
    pub k: usize,
    /// Safety cap on feedback cycles (the paper's loops converge in a
    /// handful; the cap only guards against oscillation).
    pub max_cycles: usize,
    /// Movement strategy.
    pub movement: MovementStrategy,
    /// Re-weighting options; `None` disables re-weighting.
    pub reweight: Option<ReweightOptions>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            k: 50,
            max_cycles: 20,
            movement: MovementStrategy::Optimal,
            reweight: Some(ReweightOptions::default()),
        }
    }
}

/// Outcome of one full feedback session.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Converged query point (full feature space).
    pub point: Vec<f64>,
    /// Converged distance weights (geometric mean 1).
    pub weights: Vec<f64>,
    /// Feedback cycles executed (0 = the starting parameters were already
    /// stable or nothing could be learned).
    pub cycles: usize,
    /// Precision@k after each search round (index 0 = starting params).
    pub precision_trace: Vec<f64>,
    /// True when the loop ended because the result list stabilized.
    pub converged: bool,
    /// Final ranked results.
    pub final_results: ResultList,
    /// Total distance evaluations across every search round — the raw
    /// work the engine's scan path performed for this session (searches
    /// dominate loop cost, so this is the quantity the batched kernels
    /// shrink per unit of wall-clock).
    pub distance_evals: u64,
}

/// Reusable loop driver bound to an engine and a collection.
pub struct FeedbackLoop<'a, E: KnnEngine + ?Sized> {
    engine: &'a E,
    coll: &'a Collection,
    cfg: FeedbackConfig,
}

impl<'a, E: KnnEngine + ?Sized> FeedbackLoop<'a, E> {
    /// New driver. `coll` must be the collection `engine` indexes (needed
    /// to fetch result vectors for the feedback formulas).
    pub fn new(engine: &'a E, coll: &'a Collection, cfg: FeedbackConfig) -> Self {
        FeedbackLoop { engine, coll, cfg }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &FeedbackConfig {
        &self.cfg
    }

    /// Run from the default parameters (the paper's baseline protocol):
    /// query point = `q0`, uniform weights.
    pub fn run(&self, q0: &[f64], oracle: &dyn RelevanceOracle) -> Result<LoopResult> {
        self.run_from(q0, &vec![1.0; q0.len()], oracle)
    }

    /// Run from explicit starting parameters (the FeedbackBypass /
    /// AlreadySeen protocol: start from predicted `(qopt, W)`). The caller
    /// computes `Δ = point − q0` against its own anchor afterwards.
    pub fn run_from(
        &self,
        start_point: &[f64],
        start_weights: &[f64],
        oracle: &dyn RelevanceOracle,
    ) -> Result<LoopResult> {
        // The judge→re-parameterize half of each cycle lives in
        // `FeedbackStepper`, shared with the batched multi-session
        // serving path so both execute the identical transition.
        let stepper = FeedbackStepper::new(self.coll, self.cfg.clone());
        let mut point = start_point.to_vec();
        let mut weights = start_weights.to_vec();
        let mut distance_evals = 0u64;
        let mut results = self.search(&point, &weights, &mut distance_evals);
        let mut trace = vec![stepper.precision(&results, oracle)];
        let mut cycles = 0usize;
        let mut converged = false;

        while cycles < self.cfg.max_cycles {
            match stepper.step(&point, &weights, &results, oracle)? {
                StepOutcome::Converged => {
                    converged = true;
                    break;
                }
                StepOutcome::Continue {
                    point: new_point,
                    weights: new_weights,
                } => {
                    point = new_point;
                    weights = new_weights;
                }
            }
            let new_results = self.search(&point, &weights, &mut distance_evals);
            cycles += 1;
            trace.push(stepper.precision(&new_results, oracle));
            let stable = new_results.same_ranking(&results);
            results = new_results;
            if stable {
                converged = true;
                break;
            }
        }
        Ok(LoopResult {
            point,
            weights,
            cycles,
            precision_trace: trace,
            converged,
            final_results: results,
            distance_evals,
        })
    }

    /// One search round through the engine's batched k-NN path,
    /// accumulating its work counter into `distance_evals`.
    fn search(&self, point: &[f64], weights: &[f64], distance_evals: &mut u64) -> ResultList {
        let dist = WeightedEuclidean::new(weights.to_vec())
            .unwrap_or_else(|_| WeightedEuclidean::uniform(weights.len()));
        let (neighbors, stats) = self.engine.knn_with_stats(point, self.cfg.k, &dist);
        *distance_evals += stats.distance_evals;
        ResultList::new(neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SetOracle;
    use fbp_vecdb::{CollectionBuilder, LinearScan};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Two clusters: the "relevant" one around (0.8, 0.2) tight on dim 0,
    /// and a decoy cloud. The loop should move the query into the relevant
    /// cluster and up-weight dim 0.
    fn clustered() -> (fbp_vecdb::Collection, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = CollectionBuilder::new();
        let mut relevant = Vec::new();
        for i in 0..30 {
            let v = [
                0.8 + rng.gen_range(-0.02..0.02),
                rng.gen_range(0.0..1.0), // dim 1 irrelevant for the concept
            ];
            b.push_unlabelled(&v).unwrap();
            relevant.push(i as u32);
        }
        for _ in 0..300 {
            let v = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
            b.push_unlabelled(&v).unwrap();
        }
        (b.build(), relevant)
    }

    #[test]
    fn loop_improves_precision() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        // Query from an unfavorable spot.
        let res = fb.run(&[0.72, 0.5], &oracle).unwrap();
        assert!(res.converged, "loop should stabilize");
        let first = res.precision_trace[0];
        let last = *res.precision_trace.last().unwrap();
        assert!(
            last > first,
            "precision should improve: {:?}",
            res.precision_trace
        );
        // Learned weights favor the concept dimension 0.
        assert!(res.weights[0] > res.weights[1], "weights {:?}", res.weights);
        // Query point moved toward the cluster.
        assert!((res.point[0] - 0.8).abs() < 0.1, "point {:?}", res.point);
    }

    #[test]
    fn starting_from_converged_params_takes_fewer_cycles() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        let q0 = [0.72, 0.5];
        let from_default = fb.run(&q0, &oracle).unwrap();
        let from_learned = fb
            .run_from(&from_default.point, &from_default.weights, &oracle)
            .unwrap();
        assert!(
            from_learned.cycles <= from_default.cycles,
            "bypass start should not need more cycles: {} vs {}",
            from_learned.cycles,
            from_default.cycles
        );
        // And its first-round precision matches the default run's final.
        assert!(
            from_learned.precision_trace[0] >= *from_default.precision_trace.last().unwrap() - 1e-9
        );
    }

    #[test]
    fn no_good_matches_ends_immediately() {
        let (coll, _) = clustered();
        let oracle = SetOracle::default(); // nothing is relevant
        let scan = LinearScan::new(&coll);
        let fb = FeedbackLoop::new(&scan, &coll, FeedbackConfig::default());
        let res = fb.run(&[0.5, 0.5], &oracle).unwrap();
        assert_eq!(res.cycles, 0);
        assert!(res.converged);
        assert_eq!(res.precision_trace, vec![0.0]);
        // Exactly one search round: the scan touched every vector once.
        assert_eq!(res.distance_evals, coll.len() as u64);
        // Parameters unchanged.
        assert_eq!(res.point, vec![0.5, 0.5]);
        assert_eq!(res.weights, vec![1.0, 1.0]);
    }

    #[test]
    fn movement_none_keeps_point() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            movement: MovementStrategy::None,
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        let q0 = [0.75, 0.3];
        let res = fb.run(&q0, &oracle).unwrap();
        assert_eq!(res.point, q0.to_vec());
    }

    #[test]
    fn reweight_none_keeps_uniform_weights() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            reweight: None,
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        let res = fb.run(&[0.6, 0.4], &oracle).unwrap();
        assert_eq!(res.weights, vec![1.0, 1.0]);
    }

    #[test]
    fn rocchio_strategy_runs() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            movement: MovementStrategy::Rocchio {
                alpha: 1.0,
                beta: 0.75,
                gamma: 0.15,
            },
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        let res = fb.run(&[0.72, 0.5], &oracle).unwrap();
        assert!(res.cycles >= 1);
        assert!(res.precision_trace.len() >= 2);
    }

    #[test]
    fn cycle_cap_respected() {
        let (coll, relevant) = clustered();
        let oracle = SetOracle::new(relevant);
        let scan = LinearScan::new(&coll);
        let cfg = FeedbackConfig {
            k: 20,
            max_cycles: 1,
            ..Default::default()
        };
        let fb = FeedbackLoop::new(&scan, &coll, cfg);
        let res = fb.run(&[0.72, 0.5], &oracle).unwrap();
        assert!(res.cycles <= 1);
    }
}
