//! Shared plumbing for the benchmark harness.
//!
//! Every figure of the paper's evaluation section has a bench target in
//! `benches/` (`cargo bench --bench figNN_...`). By default the benches
//! run a reduced-scale smoke configuration so `cargo bench --workspace`
//! finishes in minutes; set `FBP_FULL=1` for the paper-scale runs used in
//! EXPERIMENTS.md. Figure data is printed as aligned text tables and also
//! dumped as JSON under `target/figures/`.

use fbp_eval::report::Figure;
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use std::path::PathBuf;

/// True when paper-scale runs were requested via `FBP_FULL=1`.
pub fn is_full() -> bool {
    env_flag("FBP_FULL")
}

/// True when the CI bench-smoke job requested reduced sample counts via
/// `FBP_BENCH_FAST=1` (keep per-PR perf tracking cheap; the numbers are
/// noisier but the Q-sweep *shape* survives).
pub fn is_fast() -> bool {
    env_flag("FBP_BENCH_FAST")
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Median wall-clock nanoseconds of `f` over `samples` timed runs after
/// `warmup` untimed runs. The manual counterpart of the criterion shim
/// for benches that need their measurements *as data* (e.g. to write a
/// machine-readable Q-sweep for CI perf tracking).
pub fn time_median_ns(warmup: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Append machine-readable bench results (one JSON line per call) to the
/// path in `FBP_BENCH_JSON` (no-op when unset). Appending lets several
/// bench targets of one `cargo bench` invocation share a single record —
/// the CI bench-smoke job points this at a fresh `BENCH_pr.json` and
/// uploads it as the PR's perf artifact. Remove the file between local
/// runs for a fresh record.
pub fn write_bench_json(json: &str) {
    use std::io::Write;
    let Some(path) = std::env::var_os("FBP_BENCH_JSON") else {
        return;
    };
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()));
    match appended {
        Ok(()) => eprintln!("[bench] appended to {}", PathBuf::from(&path).display()),
        Err(e) => eprintln!(
            "[bench] could not write {}: {e}",
            PathBuf::from(&path).display()
        ),
    }
}

/// Pick a value by scale mode.
pub fn by_scale<T>(smoke: T, full: T) -> T {
    if is_full() {
        full
    } else {
        smoke
    }
}

/// The benchmark dataset: paper scale under `FBP_FULL=1`, ~35% otherwise.
pub fn bench_dataset() -> SyntheticDataset {
    let mut cfg = DatasetConfig::paper();
    if !is_full() {
        cfg.scale = 0.35;
        cfg.noise_images = (7509.0 * cfg.scale) as usize;
    }
    eprintln!(
        "[bench] generating dataset (scale {}, FBP_FULL={})...",
        cfg.scale,
        is_full()
    );
    SyntheticDataset::generate(cfg)
}

/// Stream length: 1000 queries at paper scale, shorter for smoke runs.
pub fn bench_queries() -> usize {
    by_scale(240, 1000)
}

/// Print a figure and persist its JSON under `target/figures/<name>.json`.
pub fn emit(name: &str, fig: &Figure) {
    println!("{}", fig.to_table());
    let dir = figures_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, fig.to_json()) {
            eprintln!("[bench] could not write {}: {e}", path.display());
        } else {
            eprintln!("[bench] wrote {}", path.display());
        }
    }
}

fn figures_dir() -> PathBuf {
    // `cargo bench` runs bench executables with the *package* root as the
    // working directory, so a relative "target" would land inside
    // crates/bench. Anchor at the workspace target instead (the manifest
    // dir is fixed at compile time).
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"))
        .join("figures")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbp_eval::Series;

    #[test]
    fn scale_mode_defaults_to_smoke() {
        // The test environment does not set FBP_FULL.
        if std::env::var("FBP_FULL").is_err() {
            assert!(!is_full());
            assert_eq!(by_scale(1, 2), 1);
            assert_eq!(bench_queries(), 240);
        }
    }

    #[test]
    fn emit_writes_json() {
        let fig = Figure::new("t", "x", "y", vec![Series::new("s", vec![(0.0, 1.0)])]);
        emit("bench_selftest", &fig);
        let path = figures_dir().join("bench_selftest.json");
        // Written if the directory was creatable (it is, under cargo).
        if path.exists() {
            let data = std::fs::read_to_string(&path).unwrap();
            assert!(data.contains("\"title\":\"t\""));
            let _ = std::fs::remove_file(path);
        }
    }
}
