//! Ablation: PCA-reduced query domains (the paper's §3 follow-up).
//!
//! Runs the Figure 10 protocol with the Simplex Tree over the full
//! 31-dimensional simplex domain vs PCA-reduced `[0,1]^r` domains, and
//! reports bypass precision, lookup cost and tree size.
//!
//! Run: `cargo bench --bench ablation_reduction`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::report::Figure;
use fbp_eval::scenario::evaluate_params;
use fbp_eval::stream::query_order;
use fbp_eval::{metrics, Series};
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_simplex_tree::TreeConfig;
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass, ReducedBypass};

const K: usize = 50;

/// Minimal predictor interface over both module kinds.
enum Module {
    Full(FeedbackBypass),
    Reduced(ReducedBypass),
}

impl Module {
    fn predict(&self, q: &[f64]) -> feedbackbypass::PredictedParams {
        match self {
            Module::Full(m) => m.predict(q).unwrap(),
            Module::Reduced(m) => m.predict(q).unwrap(),
        }
    }

    fn insert(&mut self, q: &[f64], qopt: &[f64], w: &[f64]) {
        match self {
            Module::Full(m) => {
                m.insert(q, qopt, w).unwrap();
            }
            Module::Reduced(m) => {
                m.insert(q, qopt, w).unwrap();
            }
        }
    }

    fn tree(&self) -> &fbp_simplex_tree::SimplexTree {
        match self {
            Module::Full(m) => m.tree(),
            Module::Reduced(m) => m.tree(),
        }
    }
}

fn main() {
    let ds = bench_dataset();
    let coll = &ds.collection;
    let engine = LinearScan::new(coll);
    let n = bench_queries();
    let order = query_order(&ds, 0xBEEF);
    let fb_loop = FeedbackLoop::new(
        &engine,
        coll,
        FeedbackConfig {
            k: K,
            ..Default::default()
        },
    );

    // PCA sample: every labelled image.
    let sample: Vec<&[f64]> = ds.labelled.iter().map(|&i| coll.vector(i)).collect();

    let mut precision_pts = Vec::new();
    let mut visited_pts = Vec::new();
    let mut labels = Vec::new();
    for (variant, label) in [
        (None, "full 31-d".to_string()),
        (Some(4usize), "PCA r = 4".to_string()),
        (Some(8), "PCA r = 8".to_string()),
        (Some(16), "PCA r = 16".to_string()),
    ] {
        let mut module = match variant {
            None => Module::Full(
                FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).unwrap(),
            ),
            Some(r) => {
                let rb = ReducedBypass::fit(&sample, r, TreeConfig::default()).unwrap();
                eprintln!(
                    "[bench] r = {r}: explained variance {:.3}",
                    rb.reducer().explained_variance
                );
                Module::Reduced(rb)
            }
        };
        let mut gains = Vec::with_capacity(n);
        let mut visited = Vec::with_capacity(n);
        for &qidx in order.iter().take(n) {
            let q: Vec<f64> = coll.vector(qidx).to_vec();
            let oracle = CategoryOracle::new(coll, coll.label(qidx));
            let pred = module.predict(&q);
            visited.push(pred.nodes_visited as f64);
            let prre = evaluate_params(&engine, &pred.point, &pred.weights, K, &oracle);
            gains.push(prre.precision);
            let run = fb_loop.run(&q, &oracle).unwrap();
            if run.cycles > 0 {
                module.insert(&q, &run.point, &run.weights);
            }
        }
        let shape = module.tree().shape();
        let tail_p = metrics::tail_mean(&gains, n / 2);
        println!(
            "{label:<12}: bypass precision {tail_p:.4}, mean nodes visited {:.2}, \
             tree {} nodes / depth {}",
            metrics::mean(&visited),
            shape.node_count,
            shape.depth
        );
        let idx = labels.len() as f64;
        precision_pts.push((idx, tail_p));
        visited_pts.push((idx, metrics::mean(&visited)));
        labels.push(label);
    }
    emit(
        "ablation_reduction",
        &Figure::new(
            format!(
                "Ablation — PCA-reduced query domain [variants: {}]",
                labels.join(", ")
            ),
            "variant",
            "value",
            vec![
                Series::new("bypass precision (tail mean)", precision_pts),
                Series::new("mean nodes visited", visited_pts),
            ],
        ),
    );
}
