//! Criterion micro-benchmarks for the k-NN engines: linear scan vs
//! VP-tree vs M-tree, under the default Euclidean metric and under a
//! re-weighted query metric (the feedback-loop case the distortion
//! bounds exist for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbp_vecdb::{
    CollectionBuilder, Euclidean, KnnEngine, LinearScan, MTree, VpTree, WeightedEuclidean,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 32;
const N: usize = 10_000;
const K: usize = 50;

fn collection(seed: u64) -> fbp_vecdb::Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new();
    for _ in 0..N {
        // Clustered data (mixture of 20 centers) — realistic for image
        // histograms, and gives the metric trees something to prune.
        let center = rng.gen_range(0..20);
        let v: Vec<f64> = (0..DIM)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0)
            })
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn bench_knn(c: &mut Criterion) {
    let coll = collection(41);
    let scan = LinearScan::new(&coll);
    let vp = VpTree::build(&coll);
    let mt = MTree::with_defaults(&coll);
    let mut rng = StdRng::seed_from_u64(43);
    let queries: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.3..3.0)).collect();
    let weighted = WeightedEuclidean::new(weights).unwrap();

    let mut group = c.benchmark_group("knn_10k_32d_k50");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    let engines: [(&str, &dyn KnnEngine); 3] =
        [("scan", &scan), ("vptree", &vp), ("mtree", &mt)];
    for (name, engine) in engines {
        group.bench_with_input(
            BenchmarkId::new("euclidean", name),
            &engine,
            |b, engine| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(engine.knn(black_box(q), K, &Euclidean).len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reweighted", name),
            &engine,
            |b, engine| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(engine.knn(black_box(q), K, &weighted).len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
