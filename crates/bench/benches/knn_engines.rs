//! Criterion micro-benchmarks for the k-NN engines: linear scan vs
//! VP-tree vs M-tree, under the default Euclidean metric and under a
//! re-weighted query metric (the feedback-loop case the distortion
//! bounds exist for) — plus the scan execution paths against each other
//! (scalar per-vector `dyn` baseline vs blocked surrogate-key kernels
//! vs the multi-threaded scan vs the two-phase f32-rescore scan over
//! the collection's mirror).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbp_vecdb::{
    CollectionBuilder, Euclidean, KnnEngine, LinearScan, MTree, Precision, ScanMode, VpTree,
    WeightedEuclidean,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 32;
const N: usize = 10_000;
const K: usize = 50;

/// Apply the standard timing budget, reduced under `FBP_BENCH_FAST=1`
/// (the CI bench-smoke job).
fn tune<M>(group: &mut criterion::BenchmarkGroup<'_, M>) {
    if fbp_bench::is_fast() {
        group.measurement_time(Duration::from_millis(300));
        group.warm_up_time(Duration::from_millis(50));
        group.sample_size(8);
    } else {
        group.measurement_time(Duration::from_secs(2));
        group.warm_up_time(Duration::from_millis(300));
        group.sample_size(20);
    }
}

fn collection_dim(n: usize, dim: usize, seed: u64) -> fbp_vecdb::Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new();
    for _ in 0..n {
        // Clustered data (mixture of 20 centers) — realistic for image
        // histograms, and gives the metric trees something to prune.
        let center = rng.gen_range(0..20);
        let v: Vec<f64> = (0..dim)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0)
            })
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn collection(seed: u64) -> fbp_vecdb::Collection {
    collection_dim(N, DIM, seed)
}

/// The acceptance benchmark for the batched-kernel rebuild: linear-scan
/// k-NN at k=50 over 10k × 64-d under weighted Euclidean, comparing the
/// scalar per-vector `dyn` path (the in-tree baseline) against the
/// blocked surrogate-key path and the parallel scan.
fn bench_scan_paths(c: &mut Criterion) {
    const SCAN_DIM: usize = 64;
    let mut coll = collection_dim(N, SCAN_DIM, 71);
    coll.ensure_f32_mirror();
    let mut rng = StdRng::seed_from_u64(73);
    let queries: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..SCAN_DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..SCAN_DIM).map(|_| rng.gen_range(0.3..3.0)).collect();
    let weighted = WeightedEuclidean::new(weights).unwrap();

    let mut group = c.benchmark_group("linear_scan_paths_10k_64d_k50");
    tune(&mut group);
    let paths = [
        ("scalar_dyn_baseline", ScanMode::Scalar, Precision::F64),
        ("batched", ScanMode::Batched, Precision::F64),
        (
            "batched_f32_rescore",
            ScanMode::Batched,
            Precision::F32Rescore,
        ),
        ("parallel", ScanMode::Parallel, Precision::F64),
    ];
    for (name, mode, precision) in paths {
        let scan = LinearScan::with_mode(&coll, mode).with_precision(precision);
        group.bench_with_input(BenchmarkId::new("weighted", name), &scan, |b, scan| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(scan.knn(black_box(q), K, &weighted).len())
            });
        });
    }
    group.finish();

    // Record the buffers the scan paths stream, so the bandwidth math
    // behind the f32 numbers is visible in the CI perf artifact.
    fbp_bench::write_bench_json(&format!(
        concat!(
            "{{\"bench\":\"knn_engines\",",
            "\"workload\":{{\"n\":{},\"dim\":{},\"k\":{}}},",
            "\"collection_bytes\":{},",
            "\"mirror_bytes\":{}}}\n"
        ),
        N,
        SCAN_DIM,
        K,
        coll.memory_bytes() - coll.mirror_bytes(),
        coll.mirror_bytes()
    ));
}

fn bench_knn(c: &mut Criterion) {
    let coll = collection(41);
    let scan = LinearScan::new(&coll);
    let vp = VpTree::build(&coll);
    let mt = MTree::with_defaults(&coll);
    let mut rng = StdRng::seed_from_u64(43);
    let queries: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.3..3.0)).collect();
    let weighted = WeightedEuclidean::new(weights).unwrap();

    let mut group = c.benchmark_group("knn_10k_32d_k50");
    tune(&mut group);
    let engines: [(&str, &dyn KnnEngine); 3] = [("scan", &scan), ("vptree", &vp), ("mtree", &mt)];
    for (name, engine) in engines {
        group.bench_with_input(BenchmarkId::new("euclidean", name), &engine, |b, engine| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(engine.knn(black_box(q), K, &Euclidean).len())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("reweighted", name),
            &engine,
            |b, engine| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    black_box(engine.knn(black_box(q), K, &weighted).len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scan_paths, bench_knn);
criterion_main!(benches);
