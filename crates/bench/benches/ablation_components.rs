//! Ablation: which predicted parameter block carries the value — the
//! moved query point (Δ), the learned weights (W), or both?
//!
//! The paper's two feedback strategies (§2, Figure 2) are stored jointly
//! as OQPs; this bench replays the Figure 10 stream applying only one
//! block at prediction time.
//!
//! Run: `cargo bench --bench ablation_components`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::report::Figure;
use fbp_eval::stream::BypassComponents;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();

    let mut rows = Vec::new();
    for (components, name) in [
        (BypassComponents::Full, "delta + weights (paper)"),
        (BypassComponents::WeightsOnly, "weights only"),
        (BypassComponents::MovementOnly, "delta only"),
    ] {
        let engine = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k: 50,
            components,
            ..Default::default()
        };
        let res = run_stream(&ds, &engine, &opts);
        let b: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
        let d: Vec<f64> = res.records.iter().map(|r| r.default.precision).collect();
        let bm = metrics::tail_mean(&b, n / 2);
        let dm = metrics::tail_mean(&d, n / 2);
        println!(
            "{name:<26}: bypass {bm:.4} (default {dm:.4}, gain {:+.1}%)",
            metrics::precision_gain(bm, dm)
        );
        rows.push((name, bm));
    }
    emit(
        "ablation_components",
        &Figure::new(
            "Ablation — predicted parameter blocks (tail-mean bypass precision)",
            "variant (0 = full, 1 = weights, 2 = delta)",
            "precision",
            vec![Series::new(
                "FeedbackBypass",
                rows.iter()
                    .enumerate()
                    .map(|(i, r)| (i as f64, r.1))
                    .collect::<Vec<_>>(),
            )],
        ),
    );
}
