//! Figure 15: efficiency — average feedback cycles (a) and retrieved
//! objects (b) saved by starting the loop from FeedbackBypass's
//! prediction instead of the defaults, for k ∈ {20, 50}.
//!
//! Run: `cargo bench --bench fig15_savings`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::efficiency::{checkpoints, savings};
use fbp_eval::report::Figure;
use fbp_eval::stream::StreamResult;
use fbp_eval::{run_stream, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();
    let ks = [20usize, 50];

    let mut results: Vec<Option<StreamResult>> = vec![None, None];
    crossbeam::thread::scope(|scope| {
        for (slot, &k) in results.iter_mut().zip(ks.iter()) {
            let ds = &ds;
            scope.spawn(move |_| {
                let engine = LinearScan::new(&ds.collection);
                let opts = StreamOptions {
                    n_queries: n,
                    k,
                    measure_savings: true,
                    ..Default::default()
                };
                *slot = Some(run_stream(ds, &engine, &opts));
            });
        }
    })
    .unwrap();

    // The paper plots savings from query 300 on (the module needs some
    // history before predictions help).
    let start = (n * 3 / 10).max(1);
    let cps: Vec<usize> = checkpoints(n, (n / 10).max(1))
        .into_iter()
        .filter(|&c| c >= start)
        .collect();

    let mut cycle_series = Vec::new();
    let mut object_series = Vec::new();
    for (res, &k) in results.iter().zip(ks.iter()) {
        let res = res.as_ref().unwrap();
        let s = savings(&res.records, k, &cps);
        cycle_series.push(s.cycles_series(format!("k = {k}")));
        object_series.push(s.objects_series(format!("k = {k}")));
    }
    emit(
        "fig15a_saved_cycles",
        &Figure::new(
            "Figure 15a — saved feedback cycles vs no. of queries",
            "no. of queries",
            "Saved-Cycles",
            cycle_series,
        ),
    );
    emit(
        "fig15b_saved_objects",
        &Figure::new(
            "Figure 15b — saved retrieved objects vs no. of queries",
            "no. of queries",
            "Saved-Objects",
            object_series,
        ),
    );
}
