//! Figure 16: average number of simplices traversed per lookup and the
//! depth of the Simplex Tree, as functions of the number of queries.
//!
//! Run: `cargo bench --bench fig16_tree_shape`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::efficiency::{checkpoints, tree_shape_figure};
use fbp_eval::{run_stream, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let engine = LinearScan::new(&ds.collection);
    let n = bench_queries();
    let opts = StreamOptions {
        n_queries: n,
        k: 50,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    let cps = checkpoints(n, (n / 14).max(1));
    emit("fig16_tree_shape", &tree_shape_figure(&res.records, &cps));

    let shape = res.bypass.tree().shape();
    println!(
        "final tree: {} stored points, {} nodes ({} leaves), depth {}, mean leaf depth {:.2}",
        shape.stored_points, shape.node_count, shape.leaf_count, shape.depth, shape.mean_leaf_depth
    );
}
