//! Serving throughput under think-time: the fbp-server's adaptive
//! micro-batching vs a no-batching (`max_batch = 1`) configuration, on
//! the acceptance workload (10k × 64-d weighted feedback sessions,
//! k = 50, 32 closed-loop sessions, 5 ms think-time).
//!
//! This is the IDEBench-style evaluation the serving layer exists for:
//! latency-bound interactive sessions, not isolated queries. Both
//! configurations run the identical load (full feedback loops over
//! loopback TCP, per-session learned metrics, f32-mirror scans); the
//! only difference is whether the dispatcher may coalesce concurrent
//! requests into one multi-query pass. A second sweep varies
//! [`ServerConfig::shards`] over {1, 2, 4} (per-shard micro-batchers,
//! scatter/gather replies): on the 1-vCPU build container the wall
//! clock cannot improve, so the number to watch is the **sharding
//! tax** — `cpu_tax_vs_flat`, CPU-per-search relative to S = 1,
//! recorded (not asserted: the shared box is too noisy for a hard CI
//! gate) per PR with a target of ≲1.1 at S = 2 — while multi-core
//! hosts convert the extra dispatchers into wall-clock wins. Set
//! `FBP_BENCH_JSON=path` to append the machine-readable records (the
//! CI bench-smoke job writes `BENCH_pr.json`), `FBP_BENCH_FAST=1` for
//! a shorter run.

use fbp_bench::{is_fast, write_bench_json};
use fbp_server::{run_loadgen, serve, LoadgenOptions, LoadgenReport, ServerConfig};
use fbp_vecdb::{CategoryId, Collection, CollectionBuilder};
use feedbackbypass::{BypassConfig, FeedbackBypass, FeedbackConfig, SharedBypass};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 10_000;
const DIM: usize = 64;
const K: usize = 50;
const CLUSTERS: usize = 20;
const SESSIONS: usize = 32;
const THINK: Duration = Duration::from_millis(5);

/// Batching knobs, overridable for tuning sweeps
/// (`FBP_SERVE_MAX_BATCH`, `FBP_SERVE_MAX_WAIT_US`).
fn max_batch() -> usize {
    env_usize("FBP_SERVE_MAX_BATCH", 16)
}

fn target_fill() -> usize {
    env_usize("FBP_SERVE_TARGET_FILL", 4)
}

fn max_wait() -> Duration {
    Duration::from_micros(env_usize("FBP_SERVE_MAX_WAIT_US", 700) as u64)
}

fn idle_gap() -> Duration {
    Duration::from_micros(env_usize("FBP_SERVE_IDLE_GAP_US", 250) as u64)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Clustered, labelled collection in `[0,1]^DIM` (cluster = category, so
/// sessions have real relevance structure to learn), with the f32
/// mirror the serving scans stream.
fn collection(seed: u64) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new().with_f32_mirror();
    let cats: Vec<CategoryId> = (0..CLUSTERS)
        .map(|c| b.category(&format!("cluster-{c}")))
        .collect();
    for _ in 0..N {
        let center = rng.gen_range(0..CLUSTERS);
        let v: Vec<f64> = (0..DIM)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0)
            })
            .collect();
        b.push(&v, cats[center]).unwrap();
    }
    b.build()
}

/// Whole-process CPU time (all threads — server and load-generator
/// clients together) from `/proc/self/stat`, in microseconds. Serving
/// here is single-box CPU-bound, so CPU-per-search is the metric that
/// separates real batching wins from scheduler noise.
fn process_cpu_us() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields 14/15 (utime/stime, 1-indexed) follow the comm field, which
    // is parenthesized and may contain spaces — skip past the ')'.
    let after = stat.rsplit(')').next().unwrap_or("");
    let fields: Vec<&str> = after.split_whitespace().collect();
    let ticks: u64 = fields
        .get(11..13)
        .map(|f| f.iter().filter_map(|v| v.parse::<u64>().ok()).sum())
        .unwrap_or(0);
    // Linux USER_HZ is 100 on every supported target.
    ticks * 10_000
}

fn run_config(
    coll: &Arc<Collection>,
    queries: &[Vec<f64>],
    max_batch: usize,
    shards: usize,
    trace: bool,
) -> (LoadgenReport, u64) {
    // Fresh module per configuration: both runs do identical learning
    // work starting from the same blank state.
    let bypass = SharedBypass::new(
        FeedbackBypass::for_unit_cube(DIM, BypassConfig::default()).expect("unit-cube module"),
    );
    let cfg = ServerConfig {
        max_batch,
        target_fill: target_fill().min(max_batch),
        max_wait: max_wait(),
        idle_gap: idle_gap(),
        shards,
        feedback: FeedbackConfig {
            k: K,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve("127.0.0.1:0", Arc::clone(coll), bypass, cfg).expect("bind loopback");
    let addr = handle.local_addr();
    let opts = LoadgenOptions {
        sessions: SESSIONS,
        queries_per_session: if is_fast() { 4 } else { 12 },
        k: K as u32,
        think_time: THINK,
        max_rounds: 64,
        trace,
    };
    let coll_ref = Arc::clone(coll);
    let judge = move |qi: usize, ids: &[u32]| -> Vec<u32> {
        // Pool query qi is collection row qi (pool = first rows).
        let cat = coll_ref.label(qi);
        ids.iter()
            .copied()
            .filter(|&id| coll_ref.label(id as usize) == cat)
            .collect()
    };
    let cpu0 = process_cpu_us();
    let report = run_loadgen(addr, queries, Some(&judge), &opts).expect("loadgen run");
    let cpu = process_cpu_us() - cpu0;
    handle.shutdown();
    (report, cpu)
}

fn main() {
    let coll = Arc::new(collection(71));
    // Query pool: the collection's own labelled rows (in-domain for the
    // unit-cube module, each with a well-defined relevant set).
    let pool_size = SESSIONS * 12;
    let queries: Vec<Vec<f64>> = (0..pool_size).map(|i| coll.vector(i).to_vec()).collect();

    eprintln!(
        "[bench] serving under think-time: {N} × {DIM}-d, k={K}, {SESSIONS} sessions, \
         {THINK:?} think, max_wait {:?}, max_batch {}{}",
        max_wait(),
        max_batch(),
        if is_fast() { " (fast)" } else { "" }
    );

    // Interleave the two configurations and keep each one's median-
    // throughput repetition: the box is 1 vCPU and shared, so ratios
    // from single back-to-back runs swing wildly.
    let reps = if is_fast() {
        1
    } else {
        env_usize("FBP_SERVE_REPS", 3)
    };
    let mut batched_runs: Vec<(LoadgenReport, u64)> = Vec::new();
    let mut no_batch_runs: Vec<(LoadgenReport, u64)> = Vec::new();
    for _ in 0..reps {
        batched_runs.push(run_config(&coll, &queries, max_batch(), 1, false));
        no_batch_runs.push(run_config(&coll, &queries, 1, 1, false));
    }
    let median = |runs: &mut Vec<(LoadgenReport, u64)>| -> (LoadgenReport, u64) {
        runs.sort_by(|a, b| a.0.searches_per_sec().total_cmp(&b.0.searches_per_sec()));
        runs.swap_remove(runs.len() / 2)
    };
    let (batched, batched_cpu) = median(&mut batched_runs);
    let (no_batch, no_batch_cpu) = median(&mut no_batch_runs);

    println!(
        "serving loadgen, {N} × {DIM}-d weighted feedback sessions, k = {K}, \
         {SESSIONS} sessions, {} ms think-time (median of {reps})",
        THINK.as_millis()
    );
    println!(
        "{:<26} {:>9} {:>13} {:>10} {:>10} {:>11} {:>8} {:>10}",
        "config",
        "searches",
        "searches/sec",
        "p50 µs",
        "p99 µs",
        "batch fill",
        "passes",
        "cpu µs/rq"
    );
    for (name, r, cpu) in [
        ("no batching (max=1)", &no_batch, no_batch_cpu),
        ("adaptive micro-batch", &batched, batched_cpu),
    ] {
        println!(
            "{name:<26} {:>9} {:>13.0} {:>10.0} {:>10.0} {:>11.2} {:>8} {:>10.0}",
            r.searches,
            r.searches_per_sec(),
            r.latency_p50_us,
            r.latency_p99_us,
            r.server.mean_batch_fill,
            r.server.passes,
            cpu as f64 / r.searches as f64,
        );
    }
    let speedup = batched.searches_per_sec() / no_batch.searches_per_sec();
    println!(
        "micro-batching speedup: {speedup:.2}x searches/sec, mean batch fill {:.2} \
         (acceptance: fill ≥ 4, speedup ≥ 1.5 on the build container)",
        batched.server.mean_batch_fill
    );

    write_bench_json(&format!(
        concat!(
            "{{\"bench\":\"serving\",",
            "\"workload\":{{\"n\":{},\"dim\":{},\"k\":{},\"sessions\":{},",
            "\"think_ms\":{},\"max_wait_us\":{},\"idle_gap_us\":{},",
            "\"target_fill\":{},\"max_batch\":{}}},",
            "\"mode\":\"{}\",",
            "\"batched\":{{\"searches_per_sec\":{:.1},\"latency_p50_us\":{:.1},",
            "\"latency_p99_us\":{:.1},\"mean_batch_fill\":{:.2},\"passes\":{},",
            "\"queue_wait_p50_us\":{:.1},\"queue_wait_p99_us\":{:.1},",
            "\"cpu_us_per_search\":{:.1}}},",
            "\"no_batch\":{{\"searches_per_sec\":{:.1},\"latency_p50_us\":{:.1},",
            "\"latency_p99_us\":{:.1},\"cpu_us_per_search\":{:.1}}},",
            "\"batching_speedup\":{:.3}}}\n"
        ),
        N,
        DIM,
        K,
        SESSIONS,
        THINK.as_millis(),
        max_wait().as_micros(),
        idle_gap().as_micros(),
        target_fill(),
        max_batch(),
        if is_fast() { "fast" } else { "full" },
        batched.searches_per_sec(),
        batched.latency_p50_us,
        batched.latency_p99_us,
        batched.server.mean_batch_fill,
        batched.server.passes,
        batched.server.queue_wait_p50_us,
        batched.server.queue_wait_p99_us,
        batched_cpu as f64 / batched.searches as f64,
        no_batch.searches_per_sec(),
        no_batch.latency_p50_us,
        no_batch.latency_p99_us,
        no_batch_cpu as f64 / no_batch.searches as f64,
        speedup,
    ));

    // ---- Shard sweep: S ∈ {1, 2, 4}, adaptive batching throughout ----
    // Interleaved round-robin over the shard counts, keeping each
    // configuration's median-throughput repetition, exactly like the
    // batching comparison above.
    let shard_counts = [1usize, 2, 4];
    let mut shard_runs: Vec<Vec<(LoadgenReport, u64)>> =
        shard_counts.iter().map(|_| Vec::new()).collect();
    for _ in 0..reps {
        for (slot, &s) in shard_runs.iter_mut().zip(shard_counts.iter()) {
            slot.push(run_config(&coll, &queries, max_batch(), s, false));
        }
    }
    println!("\nshard sweep (adaptive micro-batching, same workload):");
    println!(
        "{:<10} {:>13} {:>10} {:>10} {:>11} {:>8} {:>10}",
        "shards", "searches/sec", "p50 µs", "p99 µs", "shard fill", "passes", "cpu µs/rq"
    );
    let mut flat_cpu_per_search = 0.0f64;
    for (slot, &s) in shard_runs.iter_mut().zip(shard_counts.iter()) {
        let (r, cpu) = median(slot);
        let cpu_per_search = cpu as f64 / r.searches as f64;
        if s == 1 {
            flat_cpu_per_search = cpu_per_search;
        }
        let tax = if flat_cpu_per_search > 0.0 {
            cpu_per_search / flat_cpu_per_search
        } else {
            1.0
        };
        println!(
            "{s:<10} {:>13.0} {:>10.0} {:>10.0} {:>11.2} {:>8} {:>10.0}",
            r.searches_per_sec(),
            r.latency_p50_us,
            r.latency_p99_us,
            r.server.mean_batch_fill,
            r.server.passes,
            cpu_per_search,
        );
        write_bench_json(&format!(
            concat!(
                "{{\"bench\":\"serving_shards\",",
                "\"workload\":{{\"n\":{},\"dim\":{},\"k\":{},\"sessions\":{},",
                "\"think_ms\":{},\"max_batch\":{}}},",
                "\"mode\":\"{}\",",
                "\"shards\":{},",
                "\"searches_per_sec\":{:.1},",
                "\"latency_p50_us\":{:.1},",
                "\"latency_p99_us\":{:.1},",
                "\"mean_shard_fill\":{:.2},",
                "\"shard_passes\":{},",
                "\"cpu_us_per_search\":{:.1},",
                "\"cpu_tax_vs_flat\":{:.3}}}\n"
            ),
            N,
            DIM,
            K,
            SESSIONS,
            THINK.as_millis(),
            max_batch(),
            if is_fast() { "fast" } else { "full" },
            s,
            r.searches_per_sec(),
            r.latency_p50_us,
            r.latency_p99_us,
            r.server.mean_batch_fill,
            r.server.passes,
            cpu_per_search,
            tax,
        ));
    }
    println!(
        "(cpu µs/rq vs S=1 is the sharding tax, recorded per PR as cpu_tax_vs_flat — \
         target ~1.1 at S=2 on this 1-vCPU box, where S dispatcher wakeups serialize \
         on the one core; multi-core hosts convert S dispatchers into wall-clock wins)"
    );

    // ---- Stage attribution: traced vs untraced, same workload ----
    // Traced rounds ask for the protocol-v3 trailer and split each
    // round trip into queue / scan / merge; untraced rounds are the
    // baseline. The p50 ratio between them bounds the tracing tax from
    // above (it includes the spec-framed request and the trailer), so
    // asserting it stays inside the noise band pins the untraced hot
    // path: the instrumentation is opt-in per request, and a request
    // that doesn't opt in cannot pay more than this.
    let mut traced_runs: Vec<(LoadgenReport, u64)> = Vec::new();
    let mut plain_runs: Vec<(LoadgenReport, u64)> = Vec::new();
    for _ in 0..reps {
        traced_runs.push(run_config(&coll, &queries, max_batch(), 1, true));
        plain_runs.push(run_config(&coll, &queries, max_batch(), 1, false));
    }
    let (traced, _) = median(&mut traced_runs);
    let (plain, _) = median(&mut plain_runs);
    println!("\ntrace attribution (protocol v3 trailers, adaptive batching, S = 1):");
    println!(
        "  round trip p50 {:.0} µs = queue-dominated gather (p50 {:.0} µs, \
         shard queue p99 {:.0} µs, shard busy p99 {:.0} µs) + merge (p50 {:.0} µs)",
        traced.latency_p50_us,
        traced.stage_gather_p50_us,
        traced.stage_queue_p99_us,
        traced.stage_busy_p99_us,
        traced.stage_merge_p50_us,
    );
    println!(
        "  spans hedged {}, hedge-won {}, fast-degraded {}, failed {} \
         (all zero on a healthy flat server)",
        traced.hedged_spans,
        traced.hedge_won_spans,
        traced.fast_degraded_spans,
        traced.failed_spans,
    );
    let scan = &plain.server;
    println!(
        "  scan path: {} rows streamed, {} blocks early-abandoned, \
         {} candidates f32-filtered, {} rescored, {} seeded passes",
        scan.scan_rows_visited,
        scan.scan_blocks_abandoned,
        scan.scan_candidates_filtered,
        scan.scan_candidates_rescored,
        scan.scan_seed_prunes,
    );
    let overhead = traced.latency_p50_us / plain.latency_p50_us.max(1.0);
    println!(
        "  traced/untraced p50 ratio {overhead:.3} \
         (acceptance: within noise — hard ceiling 2.0 on the shared box)"
    );
    assert!(
        traced.stage_gather_p50_us > 0.0,
        "traced run must attribute its stages"
    );
    assert!(
        scan.scan_rows_visited > 0,
        "the serving scan must report its row traffic"
    );
    assert!(
        overhead < 2.0,
        "tracing overhead escaped the noise band: {overhead:.3}"
    );
    write_bench_json(&format!(
        concat!(
            "{{\"bench\":\"serving_trace\",",
            "\"workload\":{{\"n\":{},\"dim\":{},\"k\":{},\"sessions\":{},",
            "\"think_ms\":{},\"max_batch\":{}}},",
            "\"mode\":\"{}\",",
            "\"traced\":{{\"searches_per_sec\":{:.1},\"latency_p50_us\":{:.1},",
            "\"latency_p99_us\":{:.1},",
            "\"stage_gather_p50_us\":{:.1},\"stage_gather_p99_us\":{:.1},",
            "\"stage_merge_p50_us\":{:.1},\"stage_merge_p99_us\":{:.1},",
            "\"stage_queue_p99_us\":{:.1},\"stage_busy_p99_us\":{:.1},",
            "\"hedged_spans\":{},\"fast_degraded_spans\":{}}},",
            "\"untraced\":{{\"searches_per_sec\":{:.1},\"latency_p50_us\":{:.1},",
            "\"latency_p99_us\":{:.1}}},",
            "\"scan\":{{\"rows_visited\":{},\"blocks_abandoned\":{},",
            "\"candidates_filtered\":{},\"candidates_rescored\":{},",
            "\"seed_prunes\":{}}},",
            "\"trace_overhead_p50_ratio\":{:.3}}}\n"
        ),
        N,
        DIM,
        K,
        SESSIONS,
        THINK.as_millis(),
        max_batch(),
        if is_fast() { "fast" } else { "full" },
        traced.searches_per_sec(),
        traced.latency_p50_us,
        traced.latency_p99_us,
        traced.stage_gather_p50_us,
        traced.stage_gather_p99_us,
        traced.stage_merge_p50_us,
        traced.stage_merge_p99_us,
        traced.stage_queue_p99_us,
        traced.stage_busy_p99_us,
        traced.hedged_spans,
        traced.fast_degraded_spans,
        plain.searches_per_sec(),
        plain.latency_p50_us,
        plain.latency_p99_us,
        scan.scan_rows_visited,
        scan.scan_blocks_abandoned,
        scan.scan_candidates_filtered,
        scan.scan_candidates_rescored,
        scan.scan_seed_prunes,
        overhead,
    ));
}
