//! Criterion micro-benchmarks for the feedback kernels: one re-weighting
//! pass, one optimal-point computation, and one full loop cycle against a
//! 10k collection (what each saved cycle of Figure 15 is worth).

use criterion::{criterion_group, criterion_main, Criterion};
use fbp_feedback::reweight::ReweightOptions;
use fbp_feedback::{
    optimal_point, reweight, CategoryOracle, FeedbackConfig, FeedbackLoop, ScoredPoint,
};
use fbp_vecdb::{CollectionBuilder, LinearScan};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 32;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_kernels");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(50);
    let mut rng = StdRng::seed_from_u64(3);
    let rows: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let scored: Vec<ScoredPoint> = rows.iter().map(|r| ScoredPoint::new(r, 1.0)).collect();
    group.bench_function("reweight_50_good_32d", |b| {
        let opts = ReweightOptions::default();
        b.iter(|| black_box(reweight(black_box(&scored), &opts).unwrap()[0]));
    });
    group.bench_function("optimal_point_50_good_32d", |b| {
        b.iter(|| black_box(optimal_point(black_box(&scored)).unwrap()[0]));
    });
    group.finish();
}

fn bench_full_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("feedback_loop");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    // Labelled synthetic collection: one coherent category + noise.
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = CollectionBuilder::new();
    let cat = b.category("target");
    for _ in 0..300 {
        let mut v: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..0.05)).collect();
        v[3] += 0.6 + rng.gen_range(-0.05..0.05);
        v[17] += 0.3 + rng.gen_range(-0.05..0.05);
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        b.push(&v, cat).unwrap();
    }
    for _ in 0..9_700 {
        let mut v: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        b.push_unlabelled(&v).unwrap();
    }
    let coll = b.build();
    let scan = LinearScan::new(&coll);
    let oracle = CategoryOracle::new(&coll, cat);
    let cfg = FeedbackConfig {
        k: 50,
        ..Default::default()
    };
    let fb = FeedbackLoop::new(&scan, &coll, cfg);
    let q: Vec<f64> = coll.vector(0).to_vec();
    group.bench_function("run_to_convergence_10k_collection", |b| {
        b.iter(|| black_box(fb.run(black_box(&q), &oracle).unwrap().cycles));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_full_loop);
criterion_main!(benches);
