//! Multi-query scan Q-sweep: per-query cost of answering Q concurrent
//! queries per blocked collection pass, on the acceptance workload
//! (10k × 64-d, weighted Euclidean, k = 50), in **both scan precisions**.
//!
//! The single-query batched scan is memory-bandwidth-bound on small
//! hosts (PR 1 measured it at the raw sequential-read time of the
//! collection), so per-query cost should fall monotonically as Q grows —
//! every block is streamed once for Q queries — until the scan turns
//! compute-bound. Orthogonally, `Precision::F32Rescore` halves the bytes
//! each pass streams (phase 1 reads the f32 mirror, phase 2 rescores the
//! few survivors in f64), which is the lever for the Q = 1 latency path
//! that batching cannot amortize. The sweep is measured manually (not
//! through the criterion shim) because CI tracks the numbers per PR: set
//! `FBP_BENCH_JSON=path` to dump them machine-readably (the bench-smoke
//! job writes `BENCH_pr.json`; records append, one JSON line per bench),
//! `FBP_BENCH_FAST=1` for reduced samples.

use fbp_bench::{emit, is_fast, time_median_ns, write_bench_json};
use fbp_eval::report::Figure;
use fbp_eval::Series;
use fbp_vecdb::{
    CollectionBuilder, Distance, KnnEngine, LinearScan, MultiQueryScan, Precision, ScanMode,
    WeightedEuclidean,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

const N: usize = 10_000;
const DIM: usize = 64;
const K: usize = 50;
/// Swept batch sizes; every sweep point answers all [`TOTAL_QUERIES`]
/// queries, in batches of Q, so the work compared is identical.
const QS: [usize; 4] = [1, 4, 16, 64];
const TOTAL_QUERIES: usize = 64;

fn collection(seed: u64) -> fbp_vecdb::Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..N {
        let center = rng.gen_range(0..20);
        let v: Vec<f64> = (0..DIM)
            .map(|d| {
                let base = (((center * 31 + d * 7) % 97) as f64) / 97.0;
                (base + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0)
            })
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn main() {
    let coll = collection(71);
    let mut rng = StdRng::seed_from_u64(73);
    let queries: Vec<Vec<f64>> = (0..TOTAL_QUERIES)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let refs: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.3..3.0)).collect();
    let weighted = WeightedEuclidean::new(weights).unwrap();
    // Heterogeneous per-session metrics for the diverged-serving point.
    let session_metrics: Vec<WeightedEuclidean> = (0..TOTAL_QUERIES)
        .map(|_| {
            WeightedEuclidean::new((0..DIM).map(|_| rng.gen_range(0.3..3.0)).collect()).unwrap()
        })
        .collect();

    let (warmup, samples) = if is_fast() { (1, 5) } else { (3, 15) };
    eprintln!(
        "[bench] multi-query scan sweep: {N} × {DIM}-d, k={K}, {TOTAL_QUERIES} queries/sample, {samples} samples{}",
        if is_fast() { " (fast)" } else { "" }
    );

    // Baselines: the single-query batched LinearScan (one pass per
    // query), in both precisions — the f32/f64 ratio at Q = 1 is the
    // acceptance number for the mirror (bandwidth-bound: ideal is 2×).
    let single = LinearScan::with_mode(&coll, ScanMode::Batched);
    let linear_ns = time_median_ns(warmup, samples, || {
        for q in &refs {
            black_box(single.knn(q, K, &weighted).len());
        }
    }) / TOTAL_QUERIES as f64;
    let single_f32 =
        LinearScan::with_mode(&coll, ScanMode::Batched).with_precision(Precision::F32Rescore);
    let linear_f32_ns = time_median_ns(warmup, samples, || {
        for q in &refs {
            black_box(single_f32.knn(q, K, &weighted).len());
        }
    }) / TOTAL_QUERIES as f64;

    // Q-sweep: same 64 queries, answered Q at a time in one pass each,
    // per precision.
    let mut sweeps: Vec<(Precision, Vec<(usize, f64)>)> = Vec::new();
    for precision in [Precision::F64, Precision::F32Rescore] {
        let multi = MultiQueryScan::with_mode(&coll, ScanMode::Batched).with_precision(precision);
        let mut sweep: Vec<(usize, f64)> = Vec::new();
        for q in QS {
            let ns = time_median_ns(warmup, samples, || {
                for batch in refs.chunks(q) {
                    black_box(multi.knn_multi(batch, K, &weighted).len());
                }
            }) / TOTAL_QUERIES as f64;
            sweep.push((q, ns));
        }
        sweeps.push((precision, sweep));
    }

    // Diverged sessions: every query under its own metric, Q = 16.
    let dists: Vec<&dyn Distance> = session_metrics.iter().map(|m| m as &dyn Distance).collect();
    let multi = MultiQueryScan::with_mode(&coll, ScanMode::Batched);
    let per_query_ns = time_median_ns(warmup, samples, || {
        for (batch, dist_batch) in refs.chunks(16).zip(dists.chunks(16)) {
            black_box(multi.knn_per_query(batch, dist_batch, K).len());
        }
    }) / TOTAL_QUERIES as f64;

    let data_bytes = coll.memory_bytes() - coll.mirror_bytes();
    println!("multi-query scan, {N} × {DIM}-d weighted-Euclidean, k = {K}");
    println!(
        "collection {:.1} MB f64 + {:.1} MB f32 mirror",
        data_bytes as f64 / 1e6,
        coll.mirror_bytes() as f64 / 1e6
    );
    println!("{:<36} {:>12} {:>14}", "path", "ns/query", "queries/sec");
    let row = |name: &str, ns: f64| {
        println!("{name:<36} {ns:>12.0} {:>14.0}", 1e9 / ns);
    };
    row("linear-scan f64 (1 pass/query)", linear_ns);
    row("linear-scan f32-rescore", linear_f32_ns);
    for (precision, sweep) in &sweeps {
        let tag = match precision {
            Precision::F64 => "f64",
            Precision::F32Rescore => "f32-rescore",
        };
        for &(q, ns) in sweep {
            row(&format!("multi-query {tag} shared Q={q}"), ns);
        }
    }
    row("multi-query own metrics Q=16", per_query_ns);
    println!(
        "f32-rescore speedup at Q=1: {:.2}x (bandwidth floor would be ~2x)",
        linear_ns / linear_f32_ns
    );

    // Figure JSON under target/figures/ for the experiment archive.
    let mut series: Vec<Series> = sweeps
        .iter()
        .map(|(precision, sweep)| {
            Series::new(
                match precision {
                    Precision::F64 => "shared metric (f64)",
                    Precision::F32Rescore => "shared metric (f32 rescore)",
                },
                sweep
                    .iter()
                    .map(|&(q, ns)| (q as f64, ns))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    series.push(Series::new(
        "linear-scan baseline",
        QS.iter()
            .map(|&q| (q as f64, linear_ns))
            .collect::<Vec<_>>(),
    ));
    let fig = Figure::new(
        "Multi-query scan — per-query cost vs batch size Q",
        "Q (queries per pass)",
        "ns per query",
        series,
    );
    emit("multi_query_scan", &fig);

    // Machine-readable record for the CI bench-smoke artifact.
    let qsweep_json: Vec<String> = sweeps[0]
        .1
        .iter()
        .zip(sweeps[1].1.iter())
        .map(|(&(q, ns64), &(_, ns32))| {
            format!(
                "{{\"q\":{q},\"ns_per_query\":{ns64:.1},\"ns_per_query_f32\":{ns32:.1},\"queries_per_sec\":{:.1}}}",
                1e9 / ns64
            )
        })
        .collect();
    write_bench_json(&format!(
        concat!(
            "{{\"bench\":\"multi_query_scan\",",
            "\"workload\":{{\"n\":{},\"dim\":{},\"k\":{},\"metric\":\"weighted-euclidean\"}},",
            "\"mode\":\"{}\",",
            "\"collection_bytes\":{},",
            "\"mirror_bytes\":{},",
            "\"linear_scan_ns_per_query\":{:.1},",
            "\"linear_scan_f32_ns_per_query\":{:.1},",
            "\"f32_rescore_speedup_q1\":{:.3},",
            "\"per_query_metrics_q16_ns_per_query\":{:.1},",
            "\"qsweep\":[{}]}}\n"
        ),
        N,
        DIM,
        K,
        if is_fast() { "fast" } else { "full" },
        data_bytes,
        coll.mirror_bytes(),
        linear_ns,
        linear_f32_ns,
        linear_ns / linear_f32_ns,
        per_query_ns,
        qsweep_json.join(",")
    ));
}
