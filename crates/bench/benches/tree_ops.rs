//! Criterion micro-benchmarks for Simplex Tree operations: lookup,
//! predict and insert cost as functions of stored points and
//! dimensionality. Underpins the paper's claim of fast predictions
//! (Figure 16 shows logarithmic traversal growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbp_geometry::RootSimplex;
use fbp_simplex_tree::{Oqp, OqpLayout, SimplexTree, TreeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Random interior point of the standard simplex in `dim` dims.
fn simplex_point(dim: usize, rng: &mut StdRng) -> Vec<f64> {
    let raw: Vec<f64> = (0..dim + 1)
        .map(|_| -rng.gen::<f64>().max(1e-12).ln())
        .collect();
    let s: f64 = raw.iter().sum();
    raw[..dim].iter().map(|x| x / s).collect()
}

fn tree_with(dim: usize, points: usize, seed: u64) -> SimplexTree {
    let mut tree = SimplexTree::new(
        RootSimplex::standard(dim),
        OqpLayout::new(dim, dim),
        TreeConfig::default(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..points {
        let q = simplex_point(dim, &mut rng);
        let oqp = Oqp {
            delta: (0..dim).map(|_| rng.gen_range(-0.05..0.05)).collect(),
            weights: (0..dim).map(|_| rng.gen_range(0.2..5.0)).collect(),
        };
        tree.insert(&q, &oqp).unwrap();
    }
    tree
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_lookup_by_points");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);
    let dim = 31; // the paper's query-domain dimensionality
    for &n in &[100usize, 400, 1600] {
        let tree = tree_with(dim, n, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let probes: Vec<Vec<f64>> = (0..64).map(|_| simplex_point(dim, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let hit = tree.lookup(black_box(&probes[i % probes.len()])).unwrap();
                i += 1;
                black_box(hit.nodes_visited)
            });
        });
    }
    group.finish();
}

fn bench_predict_by_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_predict_by_dim");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);
    for &dim in &[7usize, 15, 31, 63] {
        let tree = tree_with(dim, 300, 13);
        let mut rng = StdRng::seed_from_u64(17);
        let probes: Vec<Vec<f64>> = (0..64).map(|_| simplex_point(dim, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let p = tree.predict(black_box(&probes[i % probes.len()])).unwrap();
                i += 1;
                black_box(p.oqp.weights[0])
            });
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_insert");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    let dim = 31;
    group.bench_function("into_500_point_tree", |b| {
        b.iter_batched(
            || {
                let tree = tree_with(dim, 500, 23);
                let mut rng = StdRng::seed_from_u64(29);
                let q = simplex_point(dim, &mut rng);
                let oqp = Oqp {
                    delta: vec![0.01; dim],
                    weights: (0..dim).map(|i| 1.0 + i as f64 * 0.1).collect(),
                };
                (tree, q, oqp)
            },
            |(mut tree, q, oqp)| black_box(tree.insert(&q, &oqp).unwrap()),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_persistence");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);
    let tree = tree_with(31, 500, 31);
    let image = tree.to_bytes();
    group.bench_function("serialize_500_points", |b| {
        b.iter(|| black_box(tree.to_bytes().len()));
    });
    group.bench_function("deserialize_500_points", |b| {
        b.iter(|| black_box(SimplexTree::from_bytes(&image).unwrap().node_count()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_scaling,
    bench_predict_by_dim,
    bench_insert,
    bench_persistence
);
criterion_main!(benches);
