//! Figure 13: is training with a larger k worthwhile even when fewer
//! objects are retrieved at query time?
//!
//! Trains one module per k_train ∈ {20, 50, 80}, evaluates all of them on
//! a common pool of never-seen queries at k_eval ∈ {10..80}.
//!
//! Run: `cargo bench --bench fig13_training_k`.

use fbp_bench::{bench_dataset, bench_queries, by_scale, emit};
use fbp_eval::cross_k::run_cross_k;
use fbp_eval::StreamOptions;

fn main() {
    let ds = bench_dataset();
    let base = StreamOptions {
        n_queries: bench_queries(),
        ..Default::default()
    };
    let k_train = [20usize, 50, 80];
    let k_eval: Vec<usize> = by_scale(
        vec![10, 20, 40, 60, 80],
        vec![10, 20, 30, 40, 50, 60, 70, 80],
    );
    let eval_queries = by_scale(120, 400);
    let res = run_cross_k(&ds, &k_train, &k_eval, eval_queries, &base);
    emit("fig13a_precision", &res.precision_figure());
    emit("fig13b_recall", &res.recall_figure());
}
