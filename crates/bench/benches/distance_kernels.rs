//! Criterion micro-benchmarks for the distance-function classes of §2:
//! per-evaluation cost of L2, weighted L2, quadratic (Mahalanobis) and
//! the Rui-Huang hierarchical model at the paper's dimensionality.

use criterion::{criterion_group, criterion_main, Criterion};
use fbp_linalg::Matrix;
use fbp_vecdb::{
    Distance, Euclidean, HierarchicalDistance, Manhattan, QuadraticDistance, WeightedEuclidean,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 32;

fn vectors(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_eval_32d");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(50);
    let pts = vectors(64, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.1..10.0)).collect();

    let run = |group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
               name: &str,
               dist: &dyn Distance| {
        let pts = &pts;
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let a = &pts[i % pts.len()];
                let bb = &pts[(i * 7 + 1) % pts.len()];
                i += 1;
                black_box(dist.eval(black_box(a), black_box(bb)))
            });
        });
    };

    run(&mut group, "euclidean", &Euclidean);
    run(&mut group, "manhattan", &Manhattan);
    run(
        &mut group,
        "weighted_euclidean",
        &WeightedEuclidean::new(weights.clone()).unwrap(),
    );
    // SPD matrix: diag + small symmetric off-diagonal noise.
    let mut m = Matrix::from_diag(&weights);
    for i in 0..DIM {
        for j in (i + 1)..DIM {
            let v = 0.01 * ((i * j) % 5) as f64;
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    run(
        &mut group,
        "quadratic",
        &QuadraticDistance::new(&m).unwrap(),
    );
    run(
        &mut group,
        "hierarchical_4_features",
        &HierarchicalDistance::uniform(DIM, 4).unwrap(),
    );
    group.finish();
}

/// Per-vector cost of the blocked batch kernels vs the scalar `eval`
/// loop: one query against a contiguous 1024-row block, reported per
/// kernel invocation (divide by 1024 for the per-row figure).
fn bench_batch_kernels(c: &mut Criterion) {
    const ROWS: usize = 1024;
    let mut group = c.benchmark_group("distance_batch_1024x32d");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(50);

    let mut rng = StdRng::seed_from_u64(11);
    let query: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
    let block: Vec<f64> = (0..ROWS * DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
    let weights: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.1..10.0)).collect();
    let weighted = WeightedEuclidean::new(weights).unwrap();

    let run = |group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
               name: &str,
               dist: &dyn Distance| {
        let mut out = vec![0.0; ROWS];
        // Scalar loop through the `dyn` vtable, one call per row.
        group.bench_function(format!("{name}/scalar_eval_loop"), |b| {
            b.iter(|| {
                for (row, slot) in block.chunks_exact(DIM).zip(out.iter_mut()) {
                    *slot = dist.eval(black_box(&query), black_box(row));
                }
                black_box(out[ROWS - 1])
            });
        });
        // One batched surrogate-key call for the whole block.
        group.bench_function(format!("{name}/eval_key_batch"), |b| {
            b.iter(|| {
                dist.eval_key_batch(
                    black_box(&query),
                    black_box(&block),
                    DIM,
                    f64::INFINITY,
                    &mut out,
                );
                black_box(out[ROWS - 1])
            });
        });
    };

    run(&mut group, "euclidean", &Euclidean);
    run(&mut group, "weighted_euclidean", &weighted);
    run(
        &mut group,
        "hierarchical_4_features",
        &HierarchicalDistance::uniform(DIM, 4).unwrap(),
    );
    group.finish();
}

criterion_group!(benches, bench_distances, bench_batch_kernels);
criterion_main!(benches);
