//! Partition-pruning selectivity sweep: rows visited and wall time of
//! the [`PartitionedScan`] against the flat [`MultiQueryScan`] on a
//! clustered vs a uniform workload (paper scale: 1M × 64-d under
//! `FBP_FULL=1`; reduced otherwise), swept over k.
//!
//! The partition layer's contract is *sound* sub-linearity: identical
//! answers, strictly fewer rows streamed whenever the data actually
//! clusters. This bench records both sides of that trade per PR —
//! `rows_visited` reduction (from [`ScanStatsSink`], the same counter
//! the serving tier exports as `scan_partitions_pruned` /
//! `scan_rows_visited`) and the wall-time ratio — for a clustered
//! workload (where pruning should bite) and a uniform one (where the
//! bounds cannot separate anything and the pruned scan must degrade
//! gracefully to ~flat cost, not fall off a cliff). The bench-smoke CI
//! job runs this with `FBP_BENCH_FAST=1` and **asserts the clustered
//! workload visits ≥ 5× fewer rows** — the acceptance floor for the
//! partition layer; a soundness regression that silently stops pruning
//! fails the job rather than just drifting a number.
//!
//! Set `FBP_BENCH_JSON=path` for the machine-readable record
//! (bench-smoke writes `BENCH_pr.json`).

use fbp_bench::{is_fast, is_full, time_median_ns, write_bench_json};
use fbp_vecdb::{
    Collection, CollectionBuilder, MultiQueryScan, PartitionConfig, PartitionedCollection,
    PartitionedScan, Precision, ScanMode, ScanStatsSink, WeightedEuclidean,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 64;
const CLUSTERS: usize = 64;
const KS: [usize; 3] = [1, 10, 100];
const QUERIES: usize = 16;
/// Acceptance floor: the clustered workload must stream at least this
/// many times fewer rows through the pruned scan than the flat scan.
const MIN_ROWS_REDUCTION: f64 = 5.0;

fn scale_n() -> usize {
    if is_full() {
        1_000_000
    } else if is_fast() {
        120_000
    } else {
        300_000
    }
}

/// Tight, well-separated clusters: the workload partition pruning is
/// for. Centers live on a deterministic lattice spread through the
/// cube; rows scatter ±0.02 around them.
fn clustered(n: usize, seed: u64) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for r in 0..n {
        let c = r % CLUSTERS;
        let v: Vec<f64> = (0..DIM)
            .map(|d| center_coord(c, d) + rng.gen_range(-0.02..0.02))
            .collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

/// Rows uniform in the unit cube: centroids overlap, radii stay large,
/// and the sound bounds cannot prune — the graceful-degradation case.
fn uniform(n: usize, seed: u64) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new().with_f32_mirror();
    for _ in 0..n {
        let v: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
        b.push_unlabelled(&v).unwrap();
    }
    b.build()
}

fn center_coord(cluster: usize, dim: usize) -> f64 {
    (((cluster * 31 + dim * 7) % 97) as f64) / 97.0
}

/// Queries anchored near cluster centers (every workload's realistic
/// case: users query where the data is), lightly jittered.
fn queries(seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..QUERIES)
        .map(|i| {
            let c = (i * 7) % CLUSTERS;
            (0..DIM)
                .map(|d| center_coord(c, d) + rng.gen_range(-0.03..0.03))
                .collect()
        })
        .collect()
}

struct SweepPoint {
    workload: &'static str,
    k: usize,
    flat_rows: u64,
    pruned_rows: u64,
    partitions_pruned: u64,
    flat_ns: f64,
    pruned_ns: f64,
    pruned_f32_ns: f64,
}

/// Measure one workload at one k: rows via fresh sinks (one exact pass
/// per query, Q = 1 — the latency path the pruning serves), wall time
/// via the shared median timer.
fn measure(
    workload: &'static str,
    coll: &Collection,
    part: &PartitionedCollection,
    qs: &[Vec<f64>],
    dist: &WeightedEuclidean,
    k: usize,
    (warmup, samples): (usize, usize),
) -> SweepPoint {
    let flat_sink = ScanStatsSink::new();
    let flat = MultiQueryScan::with_mode(coll, ScanMode::Batched).with_scan_stats(&flat_sink);
    for q in qs {
        black_box(flat.knn_multi(&[q.as_slice()], k, dist).len());
    }
    let pruned_sink = ScanStatsSink::new();
    let pruned = PartitionedScan::with_mode(part, ScanMode::Batched).with_scan_stats(&pruned_sink);
    for q in qs {
        black_box(pruned.knn_multi(&[q.as_slice()], k, dist).len());
    }
    let flat_rows = flat_sink.snapshot().rows_visited;
    let pruned_stats = pruned_sink.snapshot();

    let flat = MultiQueryScan::with_mode(coll, ScanMode::Batched);
    let flat_ns = time_median_ns(warmup, samples, || {
        for q in qs {
            black_box(flat.knn_multi(&[q.as_slice()], k, dist).len());
        }
    }) / qs.len() as f64;
    let pruned = PartitionedScan::with_mode(part, ScanMode::Batched);
    let pruned_ns = time_median_ns(warmup, samples, || {
        for q in qs {
            black_box(pruned.knn_multi(&[q.as_slice()], k, dist).len());
        }
    }) / qs.len() as f64;
    let pruned_f32 =
        PartitionedScan::with_mode(part, ScanMode::Batched).with_precision(Precision::F32Rescore);
    let pruned_f32_ns = time_median_ns(warmup, samples, || {
        for q in qs {
            black_box(pruned_f32.knn_multi(&[q.as_slice()], k, dist).len());
        }
    }) / qs.len() as f64;

    SweepPoint {
        workload,
        k,
        flat_rows,
        pruned_rows: pruned_stats.rows_visited,
        partitions_pruned: pruned_stats.partitions_pruned,
        flat_ns,
        pruned_ns,
        pruned_f32_ns,
    }
}

fn main() {
    let n = scale_n();
    let (warmup, samples) = if is_fast() { (1, 3) } else { (2, 7) };
    let cfg = PartitionConfig::default();
    eprintln!(
        "[bench] partition-prune sweep: {n} × {DIM}-d, {} partitions, k ∈ {KS:?}, {QUERIES} queries, {samples} samples{}",
        cfg.partitions,
        if is_fast() { " (fast)" } else { "" }
    );

    let qs = queries(911);
    let weights: Vec<f64> = {
        let mut rng = StdRng::seed_from_u64(913);
        (0..DIM).map(|_| rng.gen_range(0.5..2.0)).collect()
    };
    let dist = WeightedEuclidean::new(weights).unwrap();

    let mut points: Vec<SweepPoint> = Vec::new();
    let mut build_ms = (0.0f64, 0.0f64);
    for (workload, coll) in [
        ("clustered", clustered(n, 701)),
        ("uniform", uniform(n, 703)),
    ] {
        let t0 = std::time::Instant::now();
        let part = PartitionedCollection::build(&coll, &cfg);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if workload == "clustered" {
            build_ms.0 = ms;
        } else {
            build_ms.1 = ms;
        }
        for k in KS {
            points.push(measure(
                workload,
                &coll,
                &part,
                &qs,
                &dist,
                k,
                (warmup, samples),
            ));
        }
    }

    println!(
        "partition pruning, {n} × {DIM}-d weighted-Euclidean, {} partitions",
        cfg.partitions
    );
    println!(
        "layout build: clustered {:.0} ms, uniform {:.0} ms",
        build_ms.0, build_ms.1
    );
    println!(
        "{:<10} {:>4} {:>12} {:>12} {:>7} {:>11} {:>11} {:>9} {:>11}",
        "workload",
        "k",
        "flat rows",
        "pruned rows",
        "rows×",
        "flat ns/q",
        "pruned ns/q",
        "speedup",
        "f32 ns/q"
    );
    for p in &points {
        println!(
            "{:<10} {:>4} {:>12} {:>12} {:>6.1}x {:>11.0} {:>11.0} {:>8.2}x {:>11.0}",
            p.workload,
            p.k,
            p.flat_rows,
            p.pruned_rows,
            p.flat_rows as f64 / p.pruned_rows.max(1) as f64,
            p.flat_ns,
            p.pruned_ns,
            p.flat_ns / p.pruned_ns,
            p.pruned_f32_ns,
        );
    }

    // The acceptance gate: across the whole clustered sweep, the pruned
    // scan must stream ≥ 5× fewer rows than the flat scan. (Aggregated
    // over k so one generous-k point cannot mask a dead pruning layer,
    // and one lucky k cannot carry a broken one.)
    let (flat_total, pruned_total) = points
        .iter()
        .filter(|p| p.workload == "clustered")
        .fold((0u64, 0u64), |(f, p), pt| {
            (f + pt.flat_rows, p + pt.pruned_rows)
        });
    let reduction = flat_total as f64 / pruned_total.max(1) as f64;
    println!("clustered rows reduction (all k): {reduction:.1}x (floor {MIN_ROWS_REDUCTION:.0}x)");
    assert!(
        reduction >= MIN_ROWS_REDUCTION,
        "partition pruning regressed: clustered workload visited only {reduction:.2}x fewer rows \
         (acceptance floor {MIN_ROWS_REDUCTION:.0}x; flat {flat_total}, pruned {pruned_total})"
    );
    assert!(
        points
            .iter()
            .filter(|p| p.workload == "clustered")
            .all(|p| p.partitions_pruned > 0),
        "clustered workload must prune partitions at every swept k"
    );

    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"workload\":\"{}\",\"k\":{},\"flat_rows\":{},\"pruned_rows\":{},",
                    "\"rows_reduction\":{:.2},\"partitions_pruned\":{},",
                    "\"flat_ns_per_query\":{:.1},\"pruned_ns_per_query\":{:.1},",
                    "\"speedup\":{:.3},\"pruned_f32_ns_per_query\":{:.1}}}"
                ),
                p.workload,
                p.k,
                p.flat_rows,
                p.pruned_rows,
                p.flat_rows as f64 / p.pruned_rows.max(1) as f64,
                p.partitions_pruned,
                p.flat_ns,
                p.pruned_ns,
                p.flat_ns / p.pruned_ns,
                p.pruned_f32_ns,
            )
        })
        .collect();
    write_bench_json(&format!(
        concat!(
            "{{\"bench\":\"partition_prune\",",
            "\"workload\":{{\"n\":{},\"dim\":{},\"partitions\":{},\"queries\":{},\"metric\":\"weighted-euclidean\"}},",
            "\"mode\":\"{}\",",
            "\"build_ms_clustered\":{:.1},",
            "\"build_ms_uniform\":{:.1},",
            "\"clustered_rows_reduction\":{:.2},",
            "\"rows_reduction_floor\":{:.1},",
            "\"sweep\":[{}]}}\n"
        ),
        n,
        DIM,
        cfg.partitions,
        QUERIES,
        if is_fast() { "fast" } else { "full" },
        build_ms.0,
        build_ms.1,
        reduction,
        MIN_ROWS_REDUCTION,
        sweep_json.join(",")
    ));
}
