//! Figure 12: FeedbackBypass precision (a) and recall (b) learning curves
//! for k ∈ {20, 50, 80}.
//!
//! Run: `cargo bench --bench fig12_k_learning`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::efficiency::checkpoints;
use fbp_eval::report::Figure;
use fbp_eval::stream::StreamResult;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();
    let ks = [20usize, 50, 80];

    // One stream per k, in parallel (they are independent experiments).
    let mut results: Vec<Option<StreamResult>> = vec![None, None, None];
    crossbeam::thread::scope(|scope| {
        for (slot, &k) in results.iter_mut().zip(ks.iter()) {
            let ds = &ds;
            scope.spawn(move |_| {
                let engine = LinearScan::new(&ds.collection);
                let opts = StreamOptions {
                    n_queries: n,
                    k,
                    ..Default::default()
                };
                *slot = Some(run_stream(ds, &engine, &opts));
            });
        }
    })
    .unwrap();

    let cps = checkpoints(n, (n / 10).max(1));
    let curve = |res: &StreamResult, f: &dyn Fn(&fbp_eval::QueryRecord) -> f64| {
        let v: Vec<f64> = res.records.iter().map(f).collect();
        let c = metrics::cumulative_avg(&v);
        cps.iter()
            .map(|&cp| (cp as f64, c[cp - 1]))
            .collect::<Vec<_>>()
    };

    let mut p_series = Vec::new();
    let mut r_series = Vec::new();
    for (res, &k) in results.iter().zip(ks.iter()) {
        let res = res.as_ref().unwrap();
        p_series.push(Series::new(
            format!("k = {k}"),
            curve(res, &|r| r.bypass.precision),
        ));
        r_series.push(Series::new(
            format!("k = {k}"),
            curve(res, &|r| r.bypass.recall),
        ));
    }
    emit(
        "fig12a_precision",
        &Figure::new(
            "Figure 12a — FeedbackBypass precision vs no. of queries",
            "no. of queries",
            "precision",
            p_series,
        ),
    );
    emit(
        "fig12b_recall",
        &Figure::new(
            "Figure 12b — FeedbackBypass recall vs no. of queries",
            "no. of queries",
            "recall",
            r_series,
        ),
    );
}
