//! Figure 1, quantified: how often does FeedbackBypass improve the top-5
//! for a never-seen query, and by how much?
//!
//! The paper's Figure 1 is a single qualitative example (default top-5
//! with 0 relevant results vs 4 with predicted parameters). This bench
//! measures the population that example is drawn from: top-5 relevant
//! counts under both parameter sets over a pool of held-out queries.
//!
//! Run: `cargo bench --bench fig01_qualitative`.

use fbp_bench::{bench_dataset, bench_queries, by_scale, emit};
use fbp_eval::report::Figure;
use fbp_eval::stream::query_order;
use fbp_eval::{run_stream, Series, StreamOptions};
use fbp_vecdb::{KnnEngine, LinearScan, WeightedEuclidean};

fn main() {
    let ds = bench_dataset();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: bench_queries(),
        k: 50,
        ..Default::default()
    };
    let trained = run_stream(&ds, &engine, &opts).bypass;

    let coll = &ds.collection;
    let order = query_order(&ds, opts.seed);
    let pool: Vec<usize> = order
        .into_iter()
        .skip(opts.n_queries)
        .take(by_scale(150, 500))
        .collect();

    let top5_hits = |point: &[f64], weights: &[f64], cat: u32| -> usize {
        let dist = WeightedEuclidean::new(weights.to_vec()).unwrap();
        engine
            .knn(point, 5, &dist)
            .iter()
            .filter(|n| coll.label(n.index as usize) == cat)
            .count()
    };

    // Histogram of top-5 relevant counts (0..=5) under both scenarios.
    let mut default_hist = [0usize; 6];
    let mut bypass_hist = [0usize; 6];
    let mut improved = 0usize;
    let mut worsened = 0usize;
    for &qidx in &pool {
        let q = coll.vector(qidx);
        let cat = coll.label(qidx);
        let d = top5_hits(q, &vec![1.0; q.len()], cat);
        let p = trained.predict(q).unwrap();
        let b = top5_hits(&p.point, &p.weights, cat);
        default_hist[d] += 1;
        bypass_hist[b] += 1;
        if b > d {
            improved += 1;
        }
        if b < d {
            worsened += 1;
        }
    }

    emit(
        "fig01_top5_distribution",
        &Figure::new(
            "Figure 1 (population view) — distribution of relevant results in the top 5",
            "relevant in top-5",
            "queries",
            vec![
                Series::new(
                    "FeedbackBypass",
                    (0..=5).map(|i| (i as f64, bypass_hist[i] as f64)),
                ),
                Series::new(
                    "Default",
                    (0..=5).map(|i| (i as f64, default_hist[i] as f64)),
                ),
            ],
        ),
    );
    println!(
        "of {} never-seen queries: {} improved, {} unchanged, {} worsened",
        pool.len(),
        improved,
        pool.len() - improved - worsened,
        worsened
    );
}
