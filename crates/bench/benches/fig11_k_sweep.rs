//! Figure 11: precision (a), recall (b), and precision-vs-recall (c)
//! after the full training stream, for k between 10 and 80.
//!
//! Run: `cargo bench --bench fig11_k_sweep` (`FBP_FULL=1` for paper
//! scale; sweeps train one tree per k, in parallel).

use fbp_bench::{bench_dataset, bench_queries, by_scale, emit};
use fbp_eval::ksweep::run_ksweep;
use fbp_eval::StreamOptions;

fn main() {
    let ds = bench_dataset();
    let ks: Vec<usize> = by_scale(
        vec![10, 20, 40, 60, 80],
        vec![10, 20, 30, 40, 50, 60, 70, 80],
    );
    let base = StreamOptions {
        n_queries: bench_queries(),
        ..Default::default()
    };
    let res = run_ksweep(&ds, &ks, &base);
    emit("fig11a_precision_vs_k", &res.precision_figure());
    emit("fig11b_recall_vs_k", &res.recall_figure());
    emit("fig11c_pr_curve", &res.pr_curve_figure());
}
