//! Ablation: the re-weighting rule — MARS `1/σ` vs the ISF98-optimal
//! `1/σ²` (paper §2 recounts exactly this historical refinement).
//!
//! Run: `cargo bench --bench ablation_reweight`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::report::Figure;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_feedback::reweight::{ReweightOptions, ReweightRule};
use fbp_feedback::FeedbackConfig;
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();

    let mut rows = Vec::new();
    for (rule, name) in [
        (ReweightRule::InverseSigma, "MARS 1/sigma"),
        (ReweightRule::InverseVariance, "ISF98 1/sigma^2"),
    ] {
        let feedback = FeedbackConfig {
            reweight: Some(ReweightOptions {
                rule,
                ..Default::default()
            }),
            ..Default::default()
        };
        let engine = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k: 50,
            feedback,
            ..Default::default()
        };
        let res = run_stream(&ds, &engine, &opts);
        let seen: Vec<f64> = res.records.iter().map(|r| r.seen.precision).collect();
        let bypass: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
        let default: Vec<f64> = res.records.iter().map(|r| r.default.precision).collect();
        rows.push((
            name,
            metrics::mean(&default),
            metrics::mean(&bypass),
            metrics::mean(&seen),
        ));
        println!(
            "{name:<16}: default {:.4}  bypass {:.4}  already-seen {:.4}",
            rows.last().unwrap().1,
            rows.last().unwrap().2,
            rows.last().unwrap().3
        );
    }
    emit(
        "ablation_reweight",
        &Figure::new(
            "Ablation — re-weighting rule (mean precision over the stream)",
            "rule (0 = MARS, 1 = ISF98)",
            "precision",
            vec![
                Series::new(
                    "AlreadySeen",
                    rows.iter().enumerate().map(|(i, r)| (i as f64, r.3)),
                ),
                Series::new(
                    "FeedbackBypass",
                    rows.iter().enumerate().map(|(i, r)| (i as f64, r.2)),
                ),
                Series::new(
                    "Default",
                    rows.iter().enumerate().map(|(i, r)| (i as f64, r.1)),
                ),
            ],
        ),
    );
}
