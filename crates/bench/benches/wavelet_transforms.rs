//! Criterion micro-benchmarks for the wavelet substrate: ordered Haar vs
//! lifting, and the unbalanced transform on irregular partitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fbp_wavelet::{dwt, idwt, lift_forward, Normalization, UnbalancedHaar};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

fn bench_haar(c: &mut Criterion) {
    let mut group = c.benchmark_group("haar_dwt");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);
    for &n in &[256usize, 4096] {
        let base = signal(n, 3);
        group.bench_with_input(BenchmarkId::new("ordered", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut d| {
                    dwt(&mut d, Normalization::Orthonormal).unwrap();
                    black_box(d[0])
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("lifting", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut d| {
                    lift_forward(&mut d).unwrap();
                    black_box(d[0])
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut d| {
                    dwt(&mut d, Normalization::Orthonormal).unwrap();
                    idwt(&mut d, Normalization::Orthonormal).unwrap();
                    black_box(d[0])
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_unbalanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("unbalanced_haar");
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(9);
    for &n in &[64usize, 1024] {
        let mut breaks = vec![0.0];
        for _ in 0..n {
            breaks.push(breaks.last().unwrap() + rng.gen_range(0.01..2.0));
        }
        let uh = UnbalancedHaar::new(breaks).unwrap();
        let vals = signal(n, 11);
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| black_box(uh.forward(black_box(&vals)).smooth));
        });
        let coeffs = uh.forward(&vals);
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| black_box(uh.inverse(black_box(&coeffs))[0]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_haar, bench_unbalanced);
criterion_main!(benches);
