//! Ablation: raw vs log-scale weight interpolation (DESIGN.md §4.5).
//!
//! The paper interpolates raw parameter values; learned weights span
//! orders of magnitude, so interpolating their logarithms is the obvious
//! alternative. This bench runs the same stream under both scales.
//!
//! Run: `cargo bench --bench ablation_weight_scale`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::efficiency::checkpoints;
use fbp_eval::report::Figure;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_simplex_tree::WeightScale;
use fbp_vecdb::LinearScan;
use feedbackbypass::BypassConfig;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();
    let cps = checkpoints(n, (n / 8).max(1));

    let mut series = Vec::new();
    for (scale, name) in [(WeightScale::Raw, "raw (paper)"), (WeightScale::Log, "log")] {
        let mut bypass = BypassConfig::default();
        bypass.tree.weight_scale = scale;
        let engine = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k: 50,
            bypass,
            ..Default::default()
        };
        let res = run_stream(&ds, &engine, &opts);
        let prec: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
        let cum = metrics::cumulative_avg(&prec);
        series.push(Series::new(
            name,
            cps.iter()
                .map(|&c| (c as f64, cum[c - 1]))
                .collect::<Vec<_>>(),
        ));
        println!("{name}: final bypass precision {:.4}", cum[n - 1]);
    }
    emit(
        "ablation_weight_scale",
        &Figure::new(
            "Ablation — weight interpolation scale (bypass precision)",
            "no. of queries",
            "precision",
            series,
        ),
    );
}
