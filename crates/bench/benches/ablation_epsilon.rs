//! Ablation: the insert threshold ε (paper §4.2).
//!
//! "The particular choice of the threshold ε determines the quality of
//! the approximation: for low thresholds the approximation is more
//! accurate whereas high thresholds cause more slack" — and storage
//! shrinks. This bench sweeps ε and reports stored points, tree nodes and
//! FeedbackBypass precision, regenerating the storage/accuracy trade-off.
//!
//! Run: `cargo bench --bench ablation_epsilon`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::report::Figure;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_vecdb::LinearScan;
use feedbackbypass::BypassConfig;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();
    let epsilons = [1e-4, 1e-2, 0.1, 0.3, 1.0, 3.0];

    let mut stored_pts = Vec::new();
    let mut nodes = Vec::new();
    let mut precisions = Vec::new();
    for &eps in &epsilons {
        let mut bypass = BypassConfig::default();
        bypass.tree.delta_eps = eps;
        bypass.tree.weight_eps = eps;
        let engine = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k: 50,
            bypass,
            ..Default::default()
        };
        let res = run_stream(&ds, &engine, &opts);
        let shape = res.bypass.tree().shape();
        stored_pts.push((eps, shape.stored_points as f64));
        nodes.push((eps, shape.node_count as f64));
        let tail: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
        precisions.push((eps, metrics::tail_mean(&tail, n / 2)));
        println!(
            "eps {eps:>8.4}: stored {} / nodes {} / bypass precision {:.4}",
            shape.stored_points,
            shape.node_count,
            precisions.last().unwrap().1
        );
    }
    emit(
        "ablation_epsilon_storage",
        &Figure::new(
            "Ablation — insert threshold ε vs storage",
            "epsilon",
            "count",
            vec![
                Series::new("stored points", stored_pts),
                Series::new("tree nodes", nodes),
            ],
        ),
    );
    emit(
        "ablation_epsilon_precision",
        &Figure::new(
            "Ablation — insert threshold ε vs bypass precision (tail mean)",
            "epsilon",
            "precision",
            vec![Series::new("FeedbackBypass", precisions)],
        ),
    );
}
