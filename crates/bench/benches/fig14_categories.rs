//! Figure 14: per-category precision (a) and recall (b) of the three
//! scenarios — robustness across query types.
//!
//! Run: `cargo bench --bench fig14_categories`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::per_category::breakdown;
use fbp_eval::{run_stream, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: bench_queries(),
        k: 50,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    let bd = breakdown(&ds.collection, &res.records);

    emit("fig14a_precision", &bd.precision_figure());
    emit("fig14b_recall", &bd.recall_figure());

    // Per-category query counts for context (small categories are noisy).
    println!("queries per category:");
    for (name, count) in bd.names.iter().zip(bd.query_counts.iter()) {
        println!("  {name:<10} {count}");
    }
}
