//! Ablation: the lookup descent rule (DESIGN.md §4.1) — most-interior
//! child vs the naive first-containing child of the paper's pseudo-code.
//!
//! Both must deliver identical results for clearly-interior points; the
//! interesting question is behavior and cost near simplex boundaries.
//!
//! Run: `cargo bench --bench ablation_descent`.

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::report::Figure;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_simplex_tree::DescentRule;
use fbp_vecdb::LinearScan;
use feedbackbypass::BypassConfig;
use std::time::Instant;

fn main() {
    let ds = bench_dataset();
    let n = bench_queries();

    let mut series = Vec::new();
    for (rule, name) in [
        (DescentRule::MostInterior, "most-interior (default)"),
        (DescentRule::FirstContaining, "first-containing (Fig. 8)"),
    ] {
        let mut bypass = BypassConfig::default();
        bypass.tree.descent = rule;
        let engine = LinearScan::new(&ds.collection);
        let opts = StreamOptions {
            n_queries: n,
            k: 50,
            bypass,
            ..Default::default()
        };
        let t0 = Instant::now();
        let res = run_stream(&ds, &engine, &opts);
        let elapsed = t0.elapsed();
        let prec: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
        let visited: Vec<f64> = res.records.iter().map(|r| r.nodes_visited as f64).collect();
        println!(
            "{name:<28}: bypass precision {:.4}, mean nodes visited {:.2}, stream took {elapsed:.2?}",
            metrics::mean(&prec),
            metrics::mean(&visited)
        );
        series.push(Series::new(
            name,
            vec![(0.0, metrics::mean(&prec)), (1.0, metrics::mean(&visited))],
        ));
    }
    emit(
        "ablation_descent",
        &Figure::new(
            "Ablation — descent rule (x=0: bypass precision, x=1: mean nodes visited)",
            "metric",
            "value",
            series,
        ),
    );
}
