//! Figure 10: average precision (a) and precision gain (b) of the three
//! scenarios as a function of the number of processed queries, k = 50.
//!
//! Run: `cargo bench --bench fig10_learning` (`FBP_FULL=1` for the
//! paper-scale 1000-query stream).

use fbp_bench::{bench_dataset, bench_queries, emit};
use fbp_eval::efficiency::checkpoints;
use fbp_eval::report::Figure;
use fbp_eval::{metrics, run_stream, Series, StreamOptions};
use fbp_vecdb::LinearScan;

fn main() {
    let ds = bench_dataset();
    let engine = LinearScan::new(&ds.collection);
    let n = bench_queries();
    let opts = StreamOptions {
        n_queries: n,
        k: 50,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);

    let d: Vec<f64> = res.records.iter().map(|r| r.default.precision).collect();
    let b: Vec<f64> = res.records.iter().map(|r| r.bypass.precision).collect();
    let s: Vec<f64> = res.records.iter().map(|r| r.seen.precision).collect();
    let (cd, cb, cs) = (
        metrics::cumulative_avg(&d),
        metrics::cumulative_avg(&b),
        metrics::cumulative_avg(&s),
    );
    let cps = checkpoints(n, (n / 10).max(1));
    let pick =
        |v: &[f64]| -> Vec<(f64, f64)> { cps.iter().map(|&c| (c as f64, v[c - 1])).collect() };

    emit(
        "fig10a_precision",
        &Figure::new(
            "Figure 10a — precision vs no. of queries (k = 50)",
            "no. of queries",
            "precision",
            vec![
                Series::new("AlreadySeen", pick(&cs)),
                Series::new("FeedbackBypass", pick(&cb)),
                Series::new("Default", pick(&cd)),
            ],
        ),
    );
    let gain = |v: &[f64]| -> Vec<(f64, f64)> {
        cps.iter()
            .map(|&c| (c as f64, metrics::precision_gain(v[c - 1], cd[c - 1])))
            .collect()
    };
    emit(
        "fig10b_gain",
        &Figure::new(
            "Figure 10b — precision gain (%) vs no. of queries",
            "no. of queries",
            "gain %",
            vec![
                Series::new("AlreadySeen", gain(&cs)),
                Series::new("FeedbackBypass", gain(&cb)),
            ],
        ),
    );
}
