//! Property-based tests for the wavelet transforms.

use fbp_wavelet::{
    analysis, dwt, haar, idwt, lift_forward, lift_inverse, threshold, Normalization, UnbalancedHaar,
};
use proptest::prelude::*;

/// Strategy: dyadic-length signal.
fn dyadic_signal() -> impl Strategy<Value = Vec<f64>> {
    (1usize..=6).prop_flat_map(|log| prop::collection::vec(-100.0..100.0f64, 1usize << log))
}

/// Strategy: irregular partition + matching values.
fn partitioned_signal() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(0.01..2.0f64, n),
            prop::collection::vec(-50.0..50.0f64, n),
        )
            .prop_map(|(gaps, vals)| {
                let mut breaks = Vec::with_capacity(gaps.len() + 1);
                let mut x = 0.0;
                breaks.push(x);
                for g in gaps {
                    x += g;
                    breaks.push(x);
                }
                (breaks, vals)
            })
    })
}

proptest! {
    #[test]
    fn dwt_roundtrips(mut data in dyadic_signal()) {
        let orig = data.clone();
        dwt(&mut data, Normalization::Orthonormal).unwrap();
        idwt(&mut data, Normalization::Orthonormal).unwrap();
        for (a, b) in orig.iter().zip(data.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn dwt_average_roundtrips(mut data in dyadic_signal()) {
        let orig = data.clone();
        dwt(&mut data, Normalization::Average).unwrap();
        idwt(&mut data, Normalization::Average).unwrap();
        for (a, b) in orig.iter().zip(data.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn orthonormal_parseval(mut data in dyadic_signal()) {
        let before = analysis::energy(&data);
        dwt(&mut data, Normalization::Orthonormal).unwrap();
        let after = analysis::energy(&data);
        prop_assert!((before - after).abs() < 1e-7 * before.max(1.0));
    }

    #[test]
    fn lifting_equals_its_inverse(mut data in dyadic_signal()) {
        let orig = data.clone();
        lift_forward(&mut data).unwrap();
        lift_inverse(&mut data).unwrap();
        for (a, b) in orig.iter().zip(data.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn lifting_smooths_match_ordered_transform(data in dyadic_signal()) {
        // Same smooth coefficient (global mean) for both formulations.
        let mut l = data.clone();
        lift_forward(&mut l).unwrap();
        let mut h = data.clone();
        dwt(&mut h, Normalization::Average).unwrap();
        prop_assert!((l[0] - h[0]).abs() < 1e-8);
        // Details agree up to the fixed factor −2.
        for i in 1..data.len() {
            prop_assert!((l[i] + 2.0 * h[i]).abs() < 1e-7,
                "i={i}: lift={} dwt={}", l[i], h[i]);
        }
    }

    #[test]
    fn unbalanced_roundtrips((breaks, vals) in partitioned_signal()) {
        let uh = UnbalancedHaar::new(breaks).unwrap();
        let coeffs = uh.forward(&vals);
        let rec = uh.inverse(&coeffs);
        for (a, b) in vals.iter().zip(rec.iter()) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn unbalanced_parseval((breaks, vals) in partitioned_signal()) {
        let uh = UnbalancedHaar::new(breaks).unwrap();
        let coeffs = uh.forward(&vals);
        let coeff_energy = coeffs.smooth * coeffs.smooth
            + coeffs.details.iter().map(|d| d * d).sum::<f64>();
        let sig_energy = uh.energy(&vals);
        prop_assert!((coeff_energy - sig_energy).abs() < 1e-6 * sig_energy.max(1.0));
    }

    #[test]
    fn threshold_zero_is_lossless(mut data in dyadic_signal()) {
        let orig = data.clone();
        dwt(&mut data, Normalization::Orthonormal).unwrap();
        let kept = threshold::hard_threshold(&mut data, 0.0);
        prop_assert_eq!(kept, data.len());
        idwt(&mut data, Normalization::Orthonormal).unwrap();
        prop_assert!(analysis::max_abs_error(&orig, &data) < 1e-8);
    }

    #[test]
    fn top_k_error_monotone_in_k(data in dyadic_signal()) {
        // Keeping more coefficients can never increase L2 error.
        let mut coeffs = data.clone();
        dwt(&mut coeffs, Normalization::Orthonormal).unwrap();
        let n = coeffs.len();
        let mut prev_err = f64::INFINITY;
        for k in [n / 4, n / 2, n] {
            let mut c = coeffs.clone();
            threshold::keep_top_k(&mut c, k.max(1));
            let mut rec = c;
            idwt(&mut rec, Normalization::Orthonormal).unwrap();
            let err = analysis::energy(
                &data
                    .iter()
                    .zip(rec.iter())
                    .map(|(a, b)| a - b)
                    .collect::<Vec<_>>(),
            );
            prop_assert!(err <= prev_err + 1e-8);
            prev_err = err;
        }
    }

    #[test]
    fn pad_to_pow2_always_dyadic(data in prop::collection::vec(-5.0..5.0f64, 0..70)) {
        let padded = haar::pad_to_pow2(&data);
        prop_assert!(padded.len().is_power_of_two());
        prop_assert!(padded.len() >= data.len());
        prop_assert!(padded.len() < 2 * data.len().max(1));
        for (a, b) in data.iter().zip(padded.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}
