//! Coefficient thresholding: the storage-for-accuracy knob.
//!
//! The paper (§4.2) notes that the Simplex Tree's insert threshold ε trades
//! storage for prediction accuracy. The same trade-off in classical wavelet
//! terms is coefficient thresholding: zeroed coefficients need not be
//! stored. These helpers operate on any coefficient slice (balanced or
//! unbalanced transforms alike) and report how many coefficients survive.

/// Zero all coefficients with magnitude `< t`. Returns the surviving count.
pub fn hard_threshold(coeffs: &mut [f64], t: f64) -> usize {
    let mut kept = 0;
    for c in coeffs.iter_mut() {
        if c.abs() < t {
            *c = 0.0;
        } else {
            kept += 1;
        }
    }
    kept
}

/// Soft thresholding: shrink magnitudes toward zero by `t`, zeroing those
/// below. Returns the surviving count.
pub fn soft_threshold(coeffs: &mut [f64], t: f64) -> usize {
    let mut kept = 0;
    for c in coeffs.iter_mut() {
        let a = c.abs();
        if a <= t {
            *c = 0.0;
        } else {
            *c = c.signum() * (a - t);
            kept += 1;
        }
    }
    kept
}

/// Keep only the `k` largest-magnitude coefficients, zeroing the rest.
/// Ties are broken toward earlier (coarser) coefficients. Returns the
/// number actually kept (`min(k, len)`).
pub fn keep_top_k(coeffs: &mut [f64], k: usize) -> usize {
    if k >= coeffs.len() {
        return coeffs.len();
    }
    let mut idx: Vec<usize> = (0..coeffs.len()).collect();
    // Sort by descending magnitude, then ascending index for determinism.
    idx.sort_by(|&a, &b| {
        coeffs[b]
            .abs()
            .partial_cmp(&coeffs[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut keep = vec![false; coeffs.len()];
    for &i in idx.iter().take(k) {
        keep[i] = true;
    }
    for (i, c) in coeffs.iter_mut().enumerate() {
        if !keep[i] {
            *c = 0.0;
        }
    }
    k
}

/// Fraction of total squared magnitude retained by the non-zero
/// coefficients of `thresholded` relative to `original` (1.0 = lossless).
pub fn retained_energy(original: &[f64], thresholded: &[f64]) -> f64 {
    let total: f64 = original.iter().map(|c| c * c).sum();
    if total == 0.0 {
        return 1.0;
    }
    let kept: f64 = thresholded.iter().map(|c| c * c).sum();
    kept / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::{dwt, idwt, Normalization};

    #[test]
    fn hard_threshold_counts() {
        let mut c = [3.0, -0.1, 0.5, -2.0, 0.0];
        let kept = hard_threshold(&mut c, 0.5);
        assert_eq!(kept, 3); // 3.0, 0.5, -2.0 survive (|0.5| is not < 0.5)
        assert_eq!(c, [3.0, 0.0, 0.5, -2.0, 0.0]);
    }

    #[test]
    fn soft_threshold_shrinks() {
        let mut c = [3.0, -1.0, 0.2];
        let kept = soft_threshold(&mut c, 1.0);
        assert_eq!(kept, 1);
        assert_eq!(c, [2.0, 0.0, 0.0]);
    }

    #[test]
    fn top_k_keeps_largest() {
        let mut c = [0.5, -3.0, 1.0, 2.0];
        keep_top_k(&mut c, 2);
        assert_eq!(c, [0.0, -3.0, 0.0, 2.0]);
        // k larger than len keeps everything.
        let mut d = [1.0, 2.0];
        assert_eq!(keep_top_k(&mut d, 10), 2);
        assert_eq!(d, [1.0, 2.0]);
        // k = 0 zeroes everything.
        let mut e = [1.0, 2.0];
        keep_top_k(&mut e, 0);
        assert_eq!(e, [0.0, 0.0]);
    }

    #[test]
    fn retained_energy_bounds() {
        let orig = [1.0, 2.0, 2.0];
        let mut th = orig;
        hard_threshold(&mut th, 1.5);
        let r = retained_energy(&orig, &th);
        assert!((r - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(retained_energy(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn thresholded_reconstruction_error_bounded_by_dropped_energy() {
        // With the orthonormal transform, L2 reconstruction error equals
        // the L2 norm of the dropped coefficients (Parseval).
        let orig: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin() * 2.0).collect();
        let mut coeffs = orig.clone();
        dwt(&mut coeffs, Normalization::Orthonormal).unwrap();
        let full = coeffs.clone();
        hard_threshold(&mut coeffs, 0.25);
        let dropped_sq: f64 = full
            .iter()
            .zip(coeffs.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let mut rec = coeffs.clone();
        idwt(&mut rec, Normalization::Orthonormal).unwrap();
        let err_sq: f64 = orig
            .iter()
            .zip(rec.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!((err_sq - dropped_sq).abs() < 1e-10);
    }
}
