//! Lifting-scheme formulation of the Haar transform (Sweldens '96).
//!
//! The paper cites the lifting scheme as the construction behind its
//! locally-updatable wavelet representation. For Haar, one lifting step is
//!
//! ```text
//! split:    even/odd interleave
//! predict:  d ← odd − even          (detail)
//! update:   s ← even + d/2          (smooth, preserves the mean)
//! ```
//!
//! which is computed **in place** with no scratch buffer — the property
//! that makes lifting attractive for updating stored representations
//! locally. The result is the `Average`-normalized Haar transform up to
//! the detail scaling (here details are raw differences, smooths are
//! pairwise means).

use crate::{Result, WaveletError};

fn check_pow2(len: usize) -> Result<()> {
    if len == 0 || !len.is_power_of_two() {
        return Err(WaveletError::NotPowerOfTwo { len });
    }
    Ok(())
}

/// One forward lifting sweep over `data[..n]` (stride-aware, in place):
/// afterwards positions `0..n/2` hold smooths and `n/2..n` hold details.
fn lift_step(data: &mut [f64], n: usize, scratch: &mut Vec<f64>) {
    let half = n / 2;
    // Predict + update on interleaved pairs.
    for i in 0..half {
        let even = data[2 * i];
        let odd = data[2 * i + 1];
        let d = odd - even; // predict
        let s = even + 0.5 * d; // update (= pairwise mean)
        data[2 * i] = s;
        data[2 * i + 1] = d;
    }
    // De-interleave so smooths are contiguous (ordered layout).
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    for i in 0..half {
        data[i] = scratch[2 * i];
        data[half + i] = scratch[2 * i + 1];
    }
}

/// One inverse lifting sweep.
fn unlift_step(data: &mut [f64], n: usize, scratch: &mut Vec<f64>) {
    let half = n / 2;
    // Re-interleave.
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    for i in 0..half {
        data[2 * i] = scratch[i];
        data[2 * i + 1] = scratch[half + i];
    }
    // Undo update, then predict.
    for i in 0..half {
        let s = data[2 * i];
        let d = data[2 * i + 1];
        let even = s - 0.5 * d;
        let odd = even + d;
        data[2 * i] = even;
        data[2 * i + 1] = odd;
    }
}

/// Full multi-level forward Haar transform via lifting, in place.
pub fn lift_forward(data: &mut [f64]) -> Result<()> {
    check_pow2(data.len())?;
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = data.len();
    while n >= 2 {
        lift_step(data, n, &mut scratch);
        n /= 2;
    }
    Ok(())
}

/// Full multi-level inverse of [`lift_forward`].
pub fn lift_inverse(data: &mut [f64]) -> Result<()> {
    check_pow2(data.len())?;
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = 2;
    while n <= data.len() {
        unlift_step(data, n, &mut scratch);
        n *= 2;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haar::{dwt, Normalization};

    #[test]
    fn roundtrip() {
        let orig: Vec<f64> = (0..32).map(|i| ((i * 13) % 7) as f64 * 0.5 - 1.0).collect();
        let mut d = orig.clone();
        lift_forward(&mut d).unwrap();
        lift_inverse(&mut d).unwrap();
        for (a, b) in orig.iter().zip(d.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn smooth_coefficient_is_global_mean() {
        let orig = [3.0, 5.0, 7.0, 9.0, 1.0, 1.0, 2.0, 4.0];
        let mut d = orig;
        lift_forward(&mut d).unwrap();
        let mean: f64 = orig.iter().sum::<f64>() / orig.len() as f64;
        assert!((d[0] - mean).abs() < 1e-12);
    }

    #[test]
    fn smooths_match_average_normalized_dwt() {
        // Lifting computes the same smooth coefficients as the Average
        // transform; details differ only by the factor 2 (raw difference vs
        // semi-difference).
        let orig = [9.0, 7.0, 3.0, 5.0];
        let mut l = orig;
        lift_forward(&mut l).unwrap();
        let mut h = orig;
        dwt(&mut h, Normalization::Average).unwrap();
        assert!((l[0] - h[0]).abs() < 1e-12);
        for i in 1..4 {
            assert!(
                (l[i] - (-2.0) * h[i]).abs() < 1e-12,
                "i={i}: {l:?} vs {h:?}"
            );
        }
    }

    #[test]
    fn rejects_non_pow2() {
        let mut d = vec![1.0, 2.0, 3.0];
        assert!(lift_forward(&mut d).is_err());
        assert!(lift_inverse(&mut d).is_err());
    }

    #[test]
    fn constant_signal_zero_details() {
        let mut d = vec![4.25; 64];
        lift_forward(&mut d).unwrap();
        assert!((d[0] - 4.25).abs() < 1e-12);
        assert!(d[1..].iter().all(|x| x.abs() < 1e-12));
    }
}
