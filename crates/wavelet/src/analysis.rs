//! Reconstruction-error and energy diagnostics.

/// Total squared magnitude `Σ xᵢ²`.
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// Root-mean-square error between two equal-length signals.
///
/// # Panics
/// Panics if lengths differ or both are empty.
pub fn rms_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rms_error: length mismatch");
    assert!(!a.is_empty(), "rms_error: empty input");
    let sq: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (sq / a.len() as f64).sqrt()
}

/// Maximum absolute error between two equal-length signals.
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Histogram of coefficient magnitudes across `buckets` log-spaced bins
/// between `min_mag` and the observed max; useful for picking thresholds.
/// Coefficients below `min_mag` land in bucket 0.
pub fn magnitude_profile(coeffs: &[f64], buckets: usize, min_mag: f64) -> Vec<usize> {
    assert!(buckets >= 1);
    assert!(min_mag > 0.0);
    let mut counts = vec![0usize; buckets];
    let max = coeffs.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
    if max <= min_mag {
        counts[0] = coeffs.len();
        return counts;
    }
    let log_min = min_mag.ln();
    let log_max = max.ln();
    let span = log_max - log_min;
    for &c in coeffs {
        let a = c.abs();
        let b = if a <= min_mag {
            0
        } else {
            let f = (a.ln() - log_min) / span;
            ((f * buckets as f64) as usize).min(buckets - 1)
        };
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_basic() {
        assert_eq!(energy(&[3.0, 4.0]), 25.0);
        assert_eq!(energy(&[]), 0.0);
    }

    #[test]
    fn rms_and_max_error() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 3.0];
        assert!((rms_error(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &b), 2.0);
        assert_eq!(rms_error(&a, &a), 0.0);
    }

    #[test]
    #[should_panic]
    fn rms_error_length_mismatch_panics() {
        rms_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn magnitude_profile_buckets() {
        let coeffs = [0.0, 1e-6, 0.1, 1.0, 10.0];
        let prof = magnitude_profile(&coeffs, 4, 1e-3);
        assert_eq!(prof.iter().sum::<usize>(), 5);
        assert_eq!(prof[0], 2); // 0.0 and 1e-6 underflow the floor
        assert_eq!(prof[3], 1); // 10.0 in the top bucket
                                // All-small input collapses into bucket 0.
        let small = [1e-9, 1e-10];
        let p2 = magnitude_profile(&small, 3, 1e-3);
        assert_eq!(p2, vec![2, 0, 0]);
    }
}
