//! Unbalanced Haar transform on irregular 1-D partitions.
//!
//! The classic Haar transform assumes cells of equal measure. The Simplex
//! Tree's partition is *irregular*: every split produces simplices of
//! different volumes. The unbalanced Haar construction fixes the basis so
//! it stays orthonormal w.r.t. the measure: merging two cells of lengths
//! `lL`, `lR` with means `mL`, `mR` produces
//!
//! ```text
//! parent mean   m = (lL·mL + lR·mR) / (lL + lR)
//! detail        d = (mL − mR) · √(lL·lR / (lL + lR))
//! ```
//!
//! preserving the weighted energy `Σ lᵢ·mᵢ²` exactly (Parseval). This
//! module implements the transform for piecewise-constant functions on an
//! interval partition — the 1-D analogue of the paper's simplex
//! construction — with a deterministic adjacent-pair merge tree so the
//! inverse can rebuild the structure from the cell lengths alone.

use crate::{Result, WaveletError};

/// Unbalanced Haar analysis/synthesis operator over a fixed partition.
#[derive(Debug, Clone)]
pub struct UnbalancedHaar {
    /// Breakpoints `x₀ < x₁ < … < x_n` delimiting the `n` cells.
    breaks: Vec<f64>,
    /// Cell lengths (derived, cached).
    lengths: Vec<f64>,
}

/// Coefficients of an unbalanced Haar analysis: the global smooth
/// coefficient plus per-merge details (coarse-to-fine reversed order is an
/// implementation detail; use [`UnbalancedHaar::inverse`] to reconstruct).
#[derive(Debug, Clone, PartialEq)]
pub struct UhCoeffs {
    /// `m_total · √L_total` — carries the weighted mean.
    pub smooth: f64,
    /// Detail coefficients in merge order (fine to coarse).
    pub details: Vec<f64>,
}

impl UnbalancedHaar {
    /// Build from strictly increasing breakpoints (≥ 2 required).
    pub fn new(breaks: Vec<f64>) -> Result<Self> {
        if breaks.len() < 2 {
            return Err(WaveletError::BadPartition("need at least two breakpoints"));
        }
        if breaks.windows(2).any(|w| w[1] <= w[0]) {
            return Err(WaveletError::BadPartition(
                "breakpoints must be strictly increasing",
            ));
        }
        let lengths = breaks.windows(2).map(|w| w[1] - w[0]).collect();
        Ok(UnbalancedHaar { breaks, lengths })
    }

    /// Uniform partition of `[a, b]` into `n` cells (degenerates to the
    /// classic balanced Haar).
    pub fn uniform(a: f64, b: f64, n: usize) -> Result<Self> {
        if n == 0 || b <= a {
            return Err(WaveletError::BadPartition("empty uniform partition"));
        }
        let step = (b - a) / n as f64;
        let breaks = (0..=n).map(|i| a + step * i as f64).collect();
        UnbalancedHaar::new(breaks)
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.lengths.len()
    }

    /// Cell lengths.
    pub fn lengths(&self) -> &[f64] {
        &self.lengths
    }

    /// Weighted energy `Σ lᵢ·vᵢ²` of piecewise-constant values.
    pub fn energy(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.cells());
        self.lengths
            .iter()
            .zip(values.iter())
            .map(|(l, v)| l * v * v)
            .sum()
    }

    /// Forward transform of per-cell values.
    pub fn forward(&self, values: &[f64]) -> UhCoeffs {
        assert_eq!(values.len(), self.cells(), "forward: value count mismatch");
        let mut means: Vec<f64> = values.to_vec();
        let mut lens: Vec<f64> = self.lengths.clone();
        let mut details = Vec::with_capacity(values.len().saturating_sub(1));
        while means.len() > 1 {
            let mut next_m = Vec::with_capacity(means.len() / 2 + 1);
            let mut next_l = Vec::with_capacity(lens.len() / 2 + 1);
            let mut i = 0;
            while i + 1 < means.len() {
                let (ll, lr) = (lens[i], lens[i + 1]);
                let (ml, mr) = (means[i], means[i + 1]);
                let lsum = ll + lr;
                next_m.push((ll * ml + lr * mr) / lsum);
                next_l.push(lsum);
                details.push((ml - mr) * (ll * lr / lsum).sqrt());
                i += 2;
            }
            if i < means.len() {
                // Odd cell rides up unchanged.
                next_m.push(means[i]);
                next_l.push(lens[i]);
            }
            means = next_m;
            lens = next_l;
        }
        UhCoeffs {
            smooth: means[0] * lens[0].sqrt(),
            details,
        }
    }

    /// Inverse transform: reconstruct per-cell values from coefficients.
    pub fn inverse(&self, coeffs: &UhCoeffs) -> Vec<f64> {
        let n = self.cells();
        assert_eq!(
            coeffs.details.len(),
            n.saturating_sub(1),
            "inverse: coefficient count mismatch"
        );
        // Rebuild the level structure of cell lengths (must match forward).
        let mut levels: Vec<Vec<f64>> = vec![self.lengths.clone()];
        while levels.last().unwrap().len() > 1 {
            let cur = levels.last().unwrap();
            let mut next = Vec::with_capacity(cur.len() / 2 + 1);
            let mut i = 0;
            while i + 1 < cur.len() {
                next.push(cur[i] + cur[i + 1]);
                i += 2;
            }
            if i < cur.len() {
                next.push(cur[i]);
            }
            levels.push(next);
        }
        // Detail consumption order: forward pushed details level by level;
        // replay levels in the same order, popping from the front.
        let total_len: f64 = self.lengths.iter().sum();
        let mut means = vec![coeffs.smooth / total_len.sqrt()];
        // Walk levels from coarsest back to finest.
        let mut detail_idx = coeffs.details.len();
        for lvl in (0..levels.len() - 1).rev() {
            let fine = &levels[lvl];
            let mut fine_means = vec![0.0; fine.len()];
            // Number of merges done at this level going forward:
            let merges = fine.len() / 2;
            detail_idx -= merges;
            let mut di = detail_idx;
            let mut i = 0;
            let mut parent = 0;
            while i + 1 < fine.len() {
                let (ll, lr) = (fine[i], fine[i + 1]);
                let lsum = ll + lr;
                let m = means[parent];
                let d = coeffs.details[di];
                let diff = d / (ll * lr / lsum).sqrt();
                // Solve mL − mR = diff, (ll·mL + lr·mR)/lsum = m.
                let mr = m - diff * ll / lsum;
                let ml = mr + diff;
                fine_means[i] = ml;
                fine_means[i + 1] = mr;
                di += 1;
                i += 2;
                parent += 1;
            }
            if i < fine.len() {
                fine_means[i] = means[parent];
            }
            means = fine_means;
        }
        debug_assert_eq!(detail_idx, 0);
        means
    }

    /// Evaluate the piecewise-constant function at `x` (cells are
    /// half-open `[xᵢ, xᵢ₊₁)`; the last cell is closed).
    pub fn evaluate(&self, values: &[f64], x: f64) -> Option<f64> {
        assert_eq!(values.len(), self.cells());
        if x < self.breaks[0] || x > *self.breaks.last().unwrap() {
            return None;
        }
        // partition_point: first break > x, minus one (clamped for x = max).
        let idx = self
            .breaks
            .partition_point(|&b| b <= x)
            .saturating_sub(1)
            .min(self.cells() - 1);
        Some(values[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_irregular() {
        let uh = UnbalancedHaar::new(vec![0.0, 0.5, 0.7, 1.5, 4.0, 4.1]).unwrap();
        let vals = [2.0, -1.0, 0.5, 3.0, 7.0];
        let c = uh.forward(&vals);
        assert_eq!(c.details.len(), 4);
        let rec = uh.inverse(&c);
        for (a, b) in vals.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-12, "{vals:?} vs {rec:?}");
        }
    }

    #[test]
    fn roundtrip_odd_cell_count() {
        let uh = UnbalancedHaar::new(vec![0.0, 1.0, 3.0, 6.0]).unwrap();
        let vals = [1.0, 2.0, 3.0];
        let rec = uh.inverse(&uh.forward(&vals));
        for (a, b) in vals.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_preserved() {
        let uh = UnbalancedHaar::new(vec![0.0, 0.1, 1.0, 2.5, 2.6, 5.0]).unwrap();
        let vals = [1.0, -2.0, 0.25, 4.0, -1.5];
        let c = uh.forward(&vals);
        let coeff_energy = c.smooth * c.smooth + c.details.iter().map(|d| d * d).sum::<f64>();
        assert!((uh.energy(&vals) - coeff_energy).abs() < 1e-10);
    }

    #[test]
    fn constant_function_zero_details() {
        let uh = UnbalancedHaar::new(vec![0.0, 0.3, 0.35, 2.0, 9.0]).unwrap();
        let vals = [5.0; 4];
        let c = uh.forward(&vals);
        assert!(c.details.iter().all(|d| d.abs() < 1e-12));
        // Smooth carries the weighted mean.
        let total: f64 = uh.lengths().iter().sum();
        assert!((c.smooth - 5.0 * total.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn uniform_matches_balanced_intuition() {
        let uh = UnbalancedHaar::uniform(0.0, 1.0, 4).unwrap();
        assert_eq!(uh.cells(), 4);
        let vals = [9.0, 7.0, 3.0, 5.0];
        let c = uh.forward(&vals);
        let rec = uh.inverse(&c);
        for (a, b) in vals.iter().zip(rec.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn evaluate_cells() {
        let uh = UnbalancedHaar::new(vec![0.0, 1.0, 3.0]).unwrap();
        let vals = [10.0, 20.0];
        assert_eq!(uh.evaluate(&vals, 0.0), Some(10.0));
        assert_eq!(uh.evaluate(&vals, 0.99), Some(10.0));
        assert_eq!(uh.evaluate(&vals, 1.0), Some(20.0));
        assert_eq!(uh.evaluate(&vals, 3.0), Some(20.0));
        assert_eq!(uh.evaluate(&vals, -0.1), None);
        assert_eq!(uh.evaluate(&vals, 3.1), None);
    }

    #[test]
    fn bad_partitions_rejected() {
        assert!(UnbalancedHaar::new(vec![0.0]).is_err());
        assert!(UnbalancedHaar::new(vec![0.0, 0.0]).is_err());
        assert!(UnbalancedHaar::new(vec![1.0, 0.5]).is_err());
        assert!(UnbalancedHaar::uniform(0.0, 0.0, 3).is_err());
        assert!(UnbalancedHaar::uniform(0.0, 1.0, 0).is_err());
    }
}
