//! Ordered 1-D and 2-D Haar discrete wavelet transform.

use crate::{Result, WaveletError};

/// Normalization convention for the Haar filter pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalization {
    /// Orthonormal: average/difference scaled by `1/√2`; preserves energy
    /// (Parseval), so coefficient magnitudes are comparable across levels —
    /// the right choice for thresholding.
    Orthonormal,
    /// Plain averages `(a+b)/2` and semi-differences `(a−b)/2`; matches the
    /// textbook "average & detail" presentation.
    Average,
}

fn check_pow2(len: usize) -> Result<()> {
    if len == 0 || !len.is_power_of_two() {
        return Err(WaveletError::NotPowerOfTwo { len });
    }
    Ok(())
}

/// One analysis sweep on `data[..n]`: writes `n/2` smooth coefficients then
/// `n/2` detail coefficients back into `data[..n]` using `scratch`.
fn analyze_step(data: &mut [f64], n: usize, norm: Normalization, scratch: &mut Vec<f64>) {
    let half = n / 2;
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    let (s, d) = match norm {
        Normalization::Orthonormal => {
            let r = std::f64::consts::FRAC_1_SQRT_2;
            (r, r)
        }
        Normalization::Average => (0.5, 0.5),
    };
    for i in 0..half {
        let a = scratch[2 * i];
        let b = scratch[2 * i + 1];
        data[i] = s * (a + b);
        data[half + i] = d * (a - b);
    }
}

/// One synthesis sweep inverting [`analyze_step`].
fn synthesize_step(data: &mut [f64], n: usize, norm: Normalization, scratch: &mut Vec<f64>) {
    let half = n / 2;
    scratch.clear();
    scratch.extend_from_slice(&data[..n]);
    match norm {
        Normalization::Orthonormal => {
            let r = std::f64::consts::FRAC_1_SQRT_2;
            for i in 0..half {
                let s = scratch[i];
                let d = scratch[half + i];
                data[2 * i] = r * (s + d);
                data[2 * i + 1] = r * (s - d);
            }
        }
        Normalization::Average => {
            for i in 0..half {
                let s = scratch[i];
                let d = scratch[half + i];
                data[2 * i] = s + d;
                data[2 * i + 1] = s - d;
            }
        }
    }
}

/// Full multi-level forward Haar DWT, in place.
///
/// After the call, `data[0]` holds the coarsest smooth coefficient and the
/// remaining positions hold detail coefficients from coarse to fine.
pub fn dwt(data: &mut [f64], norm: Normalization) -> Result<()> {
    check_pow2(data.len())?;
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = data.len();
    while n >= 2 {
        analyze_step(data, n, norm, &mut scratch);
        n /= 2;
    }
    Ok(())
}

/// Partial forward transform: run only `levels` analysis sweeps.
pub fn dwt_levels(data: &mut [f64], levels: usize, norm: Normalization) -> Result<()> {
    check_pow2(data.len())?;
    let max = data.len().trailing_zeros() as usize;
    if levels > max {
        return Err(WaveletError::TooManyLevels {
            len: data.len(),
            levels,
        });
    }
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = data.len();
    for _ in 0..levels {
        analyze_step(data, n, norm, &mut scratch);
        n /= 2;
    }
    Ok(())
}

/// Full multi-level inverse Haar DWT, in place.
pub fn idwt(data: &mut [f64], norm: Normalization) -> Result<()> {
    check_pow2(data.len())?;
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = 2;
    while n <= data.len() {
        synthesize_step(data, n, norm, &mut scratch);
        n *= 2;
    }
    Ok(())
}

/// Partial inverse transform matching [`dwt_levels`].
pub fn idwt_levels(data: &mut [f64], levels: usize, norm: Normalization) -> Result<()> {
    check_pow2(data.len())?;
    let max = data.len().trailing_zeros() as usize;
    if levels > max {
        return Err(WaveletError::TooManyLevels {
            len: data.len(),
            levels,
        });
    }
    if levels == 0 {
        return Ok(());
    }
    let mut scratch = Vec::with_capacity(data.len());
    let mut n = data.len() >> (levels - 1);
    while n <= data.len() {
        synthesize_step(data, n, norm, &mut scratch);
        n *= 2;
    }
    Ok(())
}

/// 2-D Haar DWT (standard decomposition: full 1-D transform of every row,
/// then of every column). `data` is row-major `rows × cols`.
pub fn dwt2(data: &mut [f64], rows: usize, cols: usize, norm: Normalization) -> Result<()> {
    assert_eq!(data.len(), rows * cols, "dwt2: bad buffer size");
    check_pow2(rows)?;
    check_pow2(cols)?;
    for r in 0..rows {
        dwt(&mut data[r * cols..(r + 1) * cols], norm)?;
    }
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        dwt(&mut col, norm)?;
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
    Ok(())
}

/// Inverse of [`dwt2`].
pub fn idwt2(data: &mut [f64], rows: usize, cols: usize, norm: Normalization) -> Result<()> {
    assert_eq!(data.len(), rows * cols, "idwt2: bad buffer size");
    check_pow2(rows)?;
    check_pow2(cols)?;
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = data[r * cols + c];
        }
        idwt(&mut col, norm)?;
        for r in 0..rows {
            data[r * cols + c] = col[r];
        }
    }
    for r in 0..rows {
        idwt(&mut data[r * cols..(r + 1) * cols], norm)?;
    }
    Ok(())
}

/// Pad `data` with its last value (or zero when empty) to the next power of
/// two. The DWT requires dyadic lengths; callers with arbitrary-length
/// signals pad first and ignore the padded tail on reconstruction.
pub fn pad_to_pow2(data: &[f64]) -> Vec<f64> {
    let target = data.len().max(1).next_power_of_two();
    let mut out = Vec::with_capacity(target);
    out.extend_from_slice(data);
    let fill = data.last().copied().unwrap_or(0.0);
    out.resize(target, fill);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_norm_known_values() {
        // Textbook example: [9, 7, 3, 5] → smooth [8, 4] detail [1, -1]
        // → final [6, 2, 1, -1].
        let mut d = [9.0, 7.0, 3.0, 5.0];
        dwt(&mut d, Normalization::Average).unwrap();
        assert_eq!(d, [6.0, 2.0, 1.0, -1.0]);
        idwt(&mut d, Normalization::Average).unwrap();
        assert_eq!(d, [9.0, 7.0, 3.0, 5.0]);
    }

    #[test]
    fn orthonormal_preserves_energy() {
        let orig = [1.0, -2.0, 3.5, 0.25, -1.5, 4.0, 0.0, 2.0];
        let mut d = orig;
        dwt(&mut d, Normalization::Orthonormal).unwrap();
        let e_orig: f64 = orig.iter().map(|x| x * x).sum();
        let e_coef: f64 = d.iter().map(|x| x * x).sum();
        assert!((e_orig - e_coef).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_orthonormal() {
        let orig: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let mut d = orig.clone();
        dwt(&mut d, Normalization::Orthonormal).unwrap();
        idwt(&mut d, Normalization::Orthonormal).unwrap();
        for (a, b) in orig.iter().zip(d.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_signal_has_single_coefficient() {
        let mut d = vec![5.0; 16];
        dwt(&mut d, Normalization::Average).unwrap();
        assert!((d[0] - 5.0).abs() < 1e-12);
        for &x in &d[1..] {
            assert!(x.abs() < 1e-12, "details of a constant must vanish");
        }
    }

    #[test]
    fn rejects_non_pow2() {
        let mut d = vec![1.0; 6];
        assert_eq!(
            dwt(&mut d, Normalization::Average),
            Err(WaveletError::NotPowerOfTwo { len: 6 })
        );
        let mut e = vec![];
        assert!(dwt(&mut e, Normalization::Average).is_err());
    }

    #[test]
    fn partial_levels_roundtrip() {
        let orig: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let mut d = orig.clone();
        dwt_levels(&mut d, 2, Normalization::Orthonormal).unwrap();
        idwt_levels(&mut d, 2, Normalization::Orthonormal).unwrap();
        for (a, b) in orig.iter().zip(d.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        let mut t = vec![0.0; 8];
        assert!(matches!(
            dwt_levels(&mut t, 4, Normalization::Average),
            Err(WaveletError::TooManyLevels { .. })
        ));
    }

    #[test]
    fn dwt2_roundtrip() {
        let rows = 8;
        let cols = 4;
        let orig: Vec<f64> = (0..rows * cols).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut d = orig.clone();
        dwt2(&mut d, rows, cols, Normalization::Orthonormal).unwrap();
        idwt2(&mut d, rows, cols, Normalization::Orthonormal).unwrap();
        for (a, b) in orig.iter().zip(d.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dwt2_constant_image_single_coefficient() {
        let mut d = vec![3.0; 16 * 16];
        dwt2(&mut d, 16, 16, Normalization::Average).unwrap();
        assert!((d[0] - 3.0).abs() < 1e-12);
        assert!(d[1..].iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn pad_to_pow2_behavior() {
        assert_eq!(pad_to_pow2(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0, 3.0]);
        assert_eq!(pad_to_pow2(&[1.0]), vec![1.0]);
        assert_eq!(pad_to_pow2(&[]), vec![0.0]);
        assert_eq!(pad_to_pow2(&[1.0, 2.0, 3.0, 4.0]).len(), 4);
    }
}
