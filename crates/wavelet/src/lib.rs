//! # fbp-wavelet
//!
//! Wavelet substrate for the FeedbackBypass reproduction.
//!
//! The paper (§4) represents the learned query mapping as a
//! *wavelet-based* approximation: on the Simplex Tree's partition the
//! approximation is an **unbalanced Haar** construction — basis functions
//! with support limited to one simplex, so updates only recompute locally.
//! This crate supplies the general wavelet machinery behind that view:
//!
//! * [`haar`] — classic 1-D/2-D Haar DWT (ordered, orthonormal or
//!   unnormalized), multi-level;
//! * [`lifting`] — the in-place lifting-scheme formulation (Sweldens '96,
//!   cited by the paper), equivalent to the ordered transform;
//! * [`unbalanced`] — unbalanced Haar transform on *irregular* 1-D
//!   partitions: intervals of unequal length get basis functions weighted
//!   by their measure, which is the 1-D analogue of the simplex-tree
//!   construction;
//! * [`threshold`] — coefficient thresholding (hard/soft/top-k) to trade
//!   storage for accuracy, the knob the paper alludes to with "storage
//!   requirements can be easily traded off for the accuracy of the
//!   prediction";
//! * [`analysis`] — reconstruction-error and energy diagnostics (Parseval
//!   checks).

#![warn(missing_docs)]

pub mod analysis;
pub mod haar;
pub mod lifting;
pub mod threshold;
pub mod unbalanced;

pub use analysis::{energy, max_abs_error, rms_error};
pub use haar::{dwt, dwt2, idwt, idwt2, Normalization};
pub use lifting::{lift_forward, lift_inverse};
pub use threshold::{hard_threshold, keep_top_k, soft_threshold};
pub use unbalanced::UnbalancedHaar;

/// Errors from wavelet transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaveletError {
    /// Input length is not a power of two (required by the dyadic DWT).
    NotPowerOfTwo {
        /// Offending input length.
        len: usize,
    },
    /// Requested more levels than the dyadic length supports.
    TooManyLevels {
        /// Input length.
        len: usize,
        /// Levels requested.
        levels: usize,
    },
    /// Irregular-partition inputs are inconsistent.
    BadPartition(&'static str),
}

impl std::fmt::Display for WaveletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveletError::NotPowerOfTwo { len } => {
                write!(f, "input length {len} is not a power of two")
            }
            WaveletError::TooManyLevels { len, levels } => {
                write!(f, "cannot run {levels} levels on length {len}")
            }
            WaveletError::BadPartition(msg) => write!(f, "bad partition: {msg}"),
        }
    }
}

impl std::error::Error for WaveletError {}

/// Result alias for wavelet operations.
pub type Result<T> = std::result::Result<T, WaveletError>;
