//! Workspace root crate for the FeedbackBypass reproduction.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library lives in
//! [`feedbackbypass`] and the `fbp-*` substrate crates; this crate simply
//! re-exports them under one roof for convenience.

//! For serving over the network, see [`server`] (`fbp-server`): a TCP
//! front-end with adaptive micro-batching over the coalesced scan path
//! — one micro-batcher per collection shard once
//! `ServerConfig::shards > 1`, with scatter/gather replies pinned
//! bit-identical to flat serving — `examples/serve_loadgen.rs` drives
//! it end to end.
//!
//! **`ARCHITECTURE.md` at the repository root** is the map of the whole
//! system: the crate graph, the life of a query from TCP frame to SIMD
//! kernel, the precision model (F64 / F32Rescore / slack bounds), and
//! the bit-identity invariants every PR must preserve.

pub use fbp_eval as eval;
pub use fbp_feedback as feedback;
pub use fbp_geometry as geometry;
pub use fbp_imagegen as imagegen;
pub use fbp_linalg as linalg;
pub use fbp_server as server;
pub use fbp_simplex_tree as simplex_tree;
pub use fbp_vecdb as vecdb;
pub use fbp_wavelet as wavelet;
pub use feedbackbypass as bypass;
