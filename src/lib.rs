//! Workspace root crate for the FeedbackBypass reproduction.
//!
//! This crate exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The actual library lives in
//! [`feedbackbypass`] and the `fbp-*` substrate crates; this crate simply
//! re-exports them under one roof for convenience.

//! For serving over the network, see [`server`] (`fbp-server`): a TCP
//! front-end with adaptive micro-batching over the coalesced scan path —
//! `examples/serve_loadgen.rs` drives it end to end.

pub use fbp_eval as eval;
pub use fbp_feedback as feedback;
pub use fbp_geometry as geometry;
pub use fbp_imagegen as imagegen;
pub use fbp_linalg as linalg;
pub use fbp_server as server;
pub use fbp_simplex_tree as simplex_tree;
pub use fbp_vecdb as vecdb;
pub use fbp_wavelet as wavelet;
pub use feedbackbypass as bypass;
