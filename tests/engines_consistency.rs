//! The whole system must behave identically regardless of which k-NN
//! engine serves it: linear scan, VP-tree and M-tree answer exactly the
//! same queries (the metric trees prune with distortion bounds, never
//! approximately).

use fbp_eval::{run_stream, StreamOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::{KnnEngine, LinearScan, MTree, VpTree};

#[test]
fn stream_results_identical_across_engines() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let opts = StreamOptions {
        n_queries: 30,
        k: 10,
        ..Default::default()
    };

    let scan = LinearScan::new(&ds.collection);
    let vp = VpTree::build(&ds.collection);
    let mt = MTree::with_defaults(&ds.collection);
    let engines: [&dyn KnnEngine; 3] = [&scan, &vp, &mt];

    let runs: Vec<_> = engines
        .iter()
        .map(|e| run_stream(&ds, *e, &opts))
        .collect();

    for (i, run) in runs.iter().enumerate().skip(1) {
        for (a, b) in runs[0].records.iter().zip(run.records.iter()) {
            assert_eq!(
                a.default.precision, b.default.precision,
                "engine {i} diverged on default precision"
            );
            assert_eq!(
                a.seen.precision, b.seen.precision,
                "engine {i} diverged on already-seen precision"
            );
            assert_eq!(
                a.bypass.precision, b.bypass.precision,
                "engine {i} diverged on bypass precision"
            );
            assert_eq!(
                a.cycles_from_default, b.cycles_from_default,
                "engine {i} diverged on loop cycles"
            );
        }
        // Identical inserts → byte-identical trees.
        assert_eq!(
            runs[0].bypass.to_bytes(),
            run.bypass.to_bytes(),
            "engine {i} produced a different learned mapping"
        );
    }
}
