//! The whole system must behave identically regardless of which k-NN
//! engine serves it: linear scan, VP-tree and M-tree answer exactly the
//! same queries (the metric trees prune with distortion bounds, never
//! approximately) — and the linear scan itself must answer identically
//! across its scalar, batched, and parallel execution paths.

use fbp_eval::{run_stream, StreamOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_linalg::Matrix;
use fbp_vecdb::{
    Distance, HierarchicalDistance, KnnEngine, LinearScan, MTree, QuadraticDistance, ScanMode,
    VpTree, WeightedEuclidean,
};

#[test]
fn stream_results_identical_across_engines() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let opts = StreamOptions {
        n_queries: 30,
        k: 10,
        ..Default::default()
    };

    let scan = LinearScan::new(&ds.collection);
    let vp = VpTree::build(&ds.collection);
    let mt = MTree::with_defaults(&ds.collection);
    let engines: [&dyn KnnEngine; 3] = [&scan, &vp, &mt];

    let runs: Vec<_> = engines.iter().map(|e| run_stream(&ds, *e, &opts)).collect();

    for (i, run) in runs.iter().enumerate().skip(1) {
        for (a, b) in runs[0].records.iter().zip(run.records.iter()) {
            assert_eq!(
                a.default.precision, b.default.precision,
                "engine {i} diverged on default precision"
            );
            assert_eq!(
                a.seen.precision, b.seen.precision,
                "engine {i} diverged on already-seen precision"
            );
            assert_eq!(
                a.bypass.precision, b.bypass.precision,
                "engine {i} diverged on bypass precision"
            );
            assert_eq!(
                a.cycles_from_default, b.cycles_from_default,
                "engine {i} diverged on loop cycles"
            );
        }
        // Identical inserts → byte-identical trees.
        assert_eq!(
            runs[0].bypass.to_bytes(),
            run.bypass.to_bytes(),
            "engine {i} produced a different learned mapping"
        );
    }
}

/// Deterministic pseudo-random vectors (xorshift-free LCG; no rand
/// dependency needed for the root integration tests).
fn pseudo_random(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| (0..dim).map(|_| next()).collect()).collect()
}

/// The batched/parallel fast paths must reproduce the scalar per-vector
/// baseline exactly: same indices, distances within 1e-12, across all
/// four distance classes and k ∈ {1, 10, 100}.
#[test]
fn scan_paths_identical_across_distance_classes() {
    const DIM: usize = 40;
    const N: usize = 4000;
    let points = pseudo_random(N, DIM, 17);
    let mut builder = fbp_vecdb::CollectionBuilder::new();
    for p in &points {
        builder.push_unlabelled(p).unwrap();
    }
    let coll = builder.build();
    let queries = pseudo_random(8, DIM, 91);

    let weights: Vec<f64> = (0..DIM).map(|i| 0.2 + (i % 9) as f64 * 0.7).collect();
    let weighted = WeightedEuclidean::new(weights.clone()).unwrap();
    // Diagonally dominant SPD matrix: diag weights + small symmetric
    // off-diagonal couplings.
    let mut m = Matrix::from_diag(&weights);
    for i in 0..DIM {
        for j in (i + 1)..DIM {
            let v = 0.004 * ((i * j) % 7) as f64;
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    let quadratic = QuadraticDistance::new(&m).unwrap();
    let hierarchical = HierarchicalDistance::new(
        vec![
            fbp_vecdb::distance::FeatureSpan::new(0, 16),
            fbp_vecdb::distance::FeatureSpan::new(16, 40),
        ],
        vec![2.0, 0.5],
        weights.clone(),
    )
    .unwrap();
    let distances: [&dyn Distance; 4] =
        [&fbp_vecdb::Euclidean, &weighted, &quadratic, &hierarchical];

    let scalar = LinearScan::with_mode(&coll, ScanMode::Scalar);
    let batched = LinearScan::with_mode(&coll, ScanMode::Batched);
    let parallel = LinearScan::with_mode(&coll, ScanMode::Parallel);

    for dist in distances {
        for k in [1usize, 10, 100] {
            for q in &queries {
                let base = scalar.knn(q, k, dist);
                for (path, fast) in [
                    ("batched", batched.knn(q, k, dist)),
                    ("parallel", parallel.knn(q, k, dist)),
                ] {
                    assert_eq!(
                        base.len(),
                        fast.len(),
                        "{path}/{} k={k}: result count",
                        dist.name()
                    );
                    for (a, b) in base.iter().zip(fast.iter()) {
                        assert_eq!(
                            a.index,
                            b.index,
                            "{path}/{} k={k}: ranking diverged",
                            dist.name()
                        );
                        assert!(
                            (a.dist - b.dist).abs() <= 1e-12,
                            "{path}/{} k={k}: distance {} vs {}",
                            dist.name(),
                            a.dist,
                            b.dist
                        );
                    }
                }
            }
        }
    }
}
