//! Cross-session persistence integration: learn in one "session", restore
//! in the next, keep learning, and reject corrupted state.

use fbp_eval::stream::query_order;
use fbp_eval::{run_stream, StreamOptions};
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass};

#[test]
fn restored_module_continues_learning() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let coll = &ds.collection;
    let engine = LinearScan::new(coll);

    // Session 1: a short stream.
    let opts = StreamOptions {
        n_queries: 40,
        k: 10,
        ..Default::default()
    };
    let session1 = run_stream(&ds, &engine, &opts).bypass;
    let stored1 = session1.tree().stored_points();
    let image = session1.to_bytes();

    // Session 2: restore, verify predictions identical, keep learning.
    let mut session2 = FeedbackBypass::from_bytes(&image).expect("restore");
    assert_eq!(session2.tree().stored_points(), stored1);
    for &qidx in ds.labelled.iter().take(10) {
        let q = coll.vector(qidx);
        let a = session1.predict(q).unwrap();
        let b = session2.predict(q).unwrap();
        assert_eq!(a, b, "restored prediction differs at query {qidx}");
    }

    // Continue with fresh queries through the real loop.
    let order = query_order(&ds, opts.seed);
    let fb = FeedbackLoop::new(
        &engine,
        coll,
        FeedbackConfig {
            k: 10,
            ..Default::default()
        },
    );
    let mut new_inserts = 0;
    for &qidx in order.iter().skip(40).take(15) {
        let q: Vec<f64> = coll.vector(qidx).to_vec();
        let oracle = CategoryOracle::new(coll, coll.label(qidx));
        let pred = session2.predict(&q).unwrap();
        let run = fb.run_from(&pred.point, &pred.weights, &oracle).unwrap();
        if run.cycles > 0 {
            session2.insert(&q, &run.point, &run.weights).unwrap();
            new_inserts += 1;
        }
    }
    assert!(new_inserts > 0, "second session should keep learning");
    assert!(session2.tree().stored_points() >= stored1);
    session2.tree().verify_invariants().unwrap();

    // Round-trip of the extended state still works.
    let image2 = session2.to_bytes();
    let session3 = FeedbackBypass::from_bytes(&image2).unwrap();
    assert_eq!(
        session3.tree().stored_points(),
        session2.tree().stored_points()
    );
}

#[test]
fn every_corruption_position_is_detected() {
    // Flip one byte at several positions across the image: all must fail
    // loudly (checksum or structural validation), never load silently.
    let mut fb = FeedbackBypass::for_histograms(4, BypassConfig::default()).unwrap();
    fb.insert(
        &[0.4, 0.3, 0.2, 0.1],
        &[0.5, 0.25, 0.15, 0.1],
        &[2.0, 1.0, 0.5, 1.0],
    )
    .unwrap();
    let image = fb.to_bytes();
    for pos in (0..image.len()).step_by(image.len() / 23 + 1) {
        let mut bad = image.clone();
        bad[pos] ^= 0x5a;
        assert!(
            FeedbackBypass::from_bytes(&bad).is_err(),
            "corruption at byte {pos} loaded silently"
        );
    }
}
