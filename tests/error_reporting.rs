//! Error types across the workspace: `Display` output is part of the
//! public contract (operators read these), and every error must be
//! `std::error::Error + Send + Sync` so callers can box them.

use fbp_feedback::FeedbackError;
use fbp_geometry::GeometryError;
use fbp_linalg::LinalgError;
use fbp_simplex_tree::TreeError;
use fbp_vecdb::VecdbError;
use fbp_wavelet::WaveletError;
use feedbackbypass::BypassError;

fn assert_error<E: std::error::Error + Send + Sync + 'static>(e: E, needle: &str) {
    let msg = e.to_string();
    assert!(
        msg.contains(needle),
        "display {msg:?} should mention {needle:?}"
    );
    // Boxing as a dyn error must work (the Send + Sync bound).
    let boxed: Box<dyn std::error::Error + Send + Sync> = Box::new(e);
    assert!(!boxed.to_string().is_empty());
}

#[test]
fn linalg_errors_display() {
    assert_error(LinalgError::Singular { step: 3 }, "singular");
    assert_error(
        LinalgError::NotPositiveDefinite { step: 1 },
        "positive definite",
    );
    assert_error(
        LinalgError::ShapeMismatch {
            expected: (2, 2),
            got: (2, 3),
        },
        "2x3",
    );
}

#[test]
fn geometry_errors_display() {
    assert_error(GeometryError::DegenerateSimplex, "degenerate");
    assert_error(
        GeometryError::DimensionMismatch {
            expected: 4,
            got: 3,
        },
        "expected 4",
    );
}

#[test]
fn wavelet_errors_display() {
    assert_error(WaveletError::NotPowerOfTwo { len: 7 }, "7");
    assert_error(WaveletError::TooManyLevels { len: 8, levels: 9 }, "9");
    assert_error(WaveletError::BadPartition("inverted"), "inverted");
}

#[test]
fn tree_errors_display() {
    assert_error(TreeError::OutOfDomain { min_coord: -0.25 }, "outside");
    assert_error(
        TreeError::DimMismatch {
            expected: 31,
            got: 32,
        },
        "31",
    );
    assert_error(TreeError::Corrupt("checksum".into()), "checksum");
}

#[test]
fn vecdb_errors_display() {
    assert_error(
        VecdbError::DimMismatch {
            expected: 32,
            got: 16,
        },
        "32",
    );
    assert_error(VecdbError::BadParameters("weights".into()), "weights");
    assert_error(VecdbError::EmptyCollection, "empty");
}

#[test]
fn feedback_errors_display() {
    assert_error(FeedbackError::NoPositiveExamples, "positive");
    assert_error(
        FeedbackError::DimMismatch {
            expected: 2,
            got: 1,
        },
        "expected 2",
    );
    assert_error(
        FeedbackError::BadConfig("sigma_floor".into()),
        "sigma_floor",
    );
}

#[test]
fn bypass_errors_display_and_wrap() {
    assert_error(BypassError::BadQuery("not normalized".into()), "normalized");
    // From-conversions preserve the inner message.
    let tree_err: BypassError = TreeError::Corrupt("bad magic".into()).into();
    assert_error(tree_err, "bad magic");
    let fb_err: BypassError = FeedbackError::NoPositiveExamples.into();
    assert_error(fb_err, "positive");
}
