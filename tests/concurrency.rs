//! Concurrency integration: many threads sharing one module through
//! [`feedbackbypass::SharedBypass`] while full feedback loops run.

use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;
use feedbackbypass::{BypassConfig, FeedbackBypass, SharedBypass};

#[test]
fn concurrent_sessions_share_learning() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let coll = &ds.collection;
    let module = FeedbackBypass::for_histograms(coll.dim(), BypassConfig::default()).unwrap();
    let shared = SharedBypass::new(module);

    let n_threads = 4;
    let per_thread = 12;
    crossbeam::thread::scope(|scope| {
        for t in 0..n_threads {
            let shared = shared.clone();
            let ds = &ds;
            scope.spawn(move |_| {
                let coll = &ds.collection;
                let engine = LinearScan::new(coll);
                let fb = FeedbackLoop::new(
                    &engine,
                    coll,
                    FeedbackConfig {
                        k: 10,
                        ..Default::default()
                    },
                );
                // Disjoint query slices so threads insert different points.
                for &qidx in ds.labelled.iter().skip(t * per_thread).take(per_thread) {
                    let q: Vec<f64> = coll.vector(qidx).to_vec();
                    let oracle = CategoryOracle::new(coll, coll.label(qidx));
                    let pred = shared.predict(&q).expect("predict under read lock");
                    let run = fb
                        .run_from(&pred.point, &pred.weights, &oracle)
                        .expect("loop");
                    if run.cycles > 0 {
                        shared
                            .insert(&q, &run.point, &run.weights)
                            .expect("insert under write lock");
                    }
                }
            });
        }
    })
    .unwrap();

    let (stored, nodes, depth) = shared.stats();
    assert!(stored > 0, "no learning happened");
    assert!(nodes > 1);
    assert!(depth >= 2);
    // The concurrently built tree is structurally sound and serializable.
    shared.with_read(|m| m.tree().verify_invariants().unwrap());
    let image = shared.to_bytes();
    let restored = FeedbackBypass::from_bytes(&image).unwrap();
    assert_eq!(restored.tree().stored_points(), stored);
}
