//! Integration test for the PCA-reduced query domain (the paper's §3
//! follow-up): the reduced module must learn from real feedback loops on
//! the synthetic dataset and make useful, always-safe predictions.

use fbp_eval::metrics;
use fbp_eval::scenario::{evaluate_default, evaluate_params};
use fbp_feedback::{CategoryOracle, FeedbackConfig, FeedbackLoop};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_simplex_tree::TreeConfig;
use fbp_vecdb::LinearScan;
use feedbackbypass::ReducedBypass;

#[test]
fn reduced_module_learns_on_the_synthetic_dataset() {
    let ds = SyntheticDataset::generate(DatasetConfig::small());
    let coll = &ds.collection;
    let engine = LinearScan::new(coll);
    let sample: Vec<&[f64]> = ds.labelled.iter().map(|&i| coll.vector(i)).collect();
    let mut rb = ReducedBypass::fit(&sample, 6, TreeConfig::default()).unwrap();
    assert!(rb.reducer().explained_variance > 0.3);

    let k = 10;
    let fb = FeedbackLoop::new(
        &engine,
        coll,
        FeedbackConfig {
            k,
            ..Default::default()
        },
    );

    // Train on the first 60 labelled images.
    for &qidx in ds.labelled.iter().take(60) {
        let q: Vec<f64> = coll.vector(qidx).to_vec();
        let oracle = CategoryOracle::new(coll, coll.label(qidx));
        let run = fb.run(&q, &oracle).unwrap();
        if run.cycles > 0 {
            rb.insert(&q, &run.point, &run.weights).unwrap();
        }
    }
    assert!(rb.tree().stored_points() > 20);
    rb.tree().verify_invariants().unwrap();

    // Evaluate on held-out labelled images: predictions must not lose to
    // the default on average.
    let mut d_prec = Vec::new();
    let mut b_prec = Vec::new();
    for &qidx in ds.labelled.iter().skip(60).take(60) {
        let q = coll.vector(qidx);
        let oracle = CategoryOracle::new(coll, coll.label(qidx));
        d_prec.push(evaluate_default(&engine, q, k, &oracle).precision);
        let pred = rb.predict(q).unwrap();
        assert!(pred.weights.iter().all(|&w| w > 0.0));
        b_prec.push(evaluate_params(&engine, &pred.point, &pred.weights, k, &oracle).precision);
    }
    let d = metrics::mean(&d_prec);
    let b = metrics::mean(&b_prec);
    assert!(
        b >= d - 0.02,
        "reduced predictions must be safe: bypass {b:.3} vs default {d:.3}"
    );
}
