//! End-to-end integration: the full §5 pipeline on a small synthetic
//! dataset, exercising every crate in one pass.

use fbp_eval::{metrics, run_stream, StreamOptions};
use fbp_imagegen::{DatasetConfig, SyntheticDataset};
use fbp_vecdb::LinearScan;

fn small_ds() -> SyntheticDataset {
    SyntheticDataset::generate(DatasetConfig::small())
}

#[test]
fn scenario_ordering_holds() {
    let ds = small_ds();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: 80,
        k: 15,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    assert_eq!(res.records.len(), 80);

    let mean = |f: &dyn Fn(&fbp_eval::QueryRecord) -> f64| {
        let v: Vec<f64> = res.records.iter().map(f).collect();
        metrics::mean(&v)
    };
    let d = mean(&|r| r.default.precision);
    let b = mean(&|r| r.bypass.precision);
    let s = mean(&|r| r.seen.precision);
    // The paper's central ordering: AlreadySeen dominates Default
    // decisively; FeedbackBypass sits between them (allow slack on the
    // noisy small dataset for the bypass-vs-default comparison).
    assert!(
        s > d * 1.15,
        "AlreadySeen {s:.3} should beat Default {d:.3}"
    );
    assert!(
        s >= b,
        "AlreadySeen {s:.3} is the ceiling for bypass {b:.3}"
    );
    assert!(
        b >= d - 0.02,
        "bypass {b:.3} must not lose to default {d:.3}"
    );
}

#[test]
fn tree_grows_and_stays_consistent() {
    let ds = small_ds();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: 60,
        k: 10,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    let tree = res.bypass.tree();
    tree.verify_invariants().expect("tree invariants");
    assert!(tree.stored_points() > 20, "most loops should learn");
    let shape = tree.shape();
    assert!(shape.depth >= 3);
    // Depth recorded in the records is monotone non-decreasing.
    let mut prev = 0;
    for r in &res.records {
        assert!(r.tree_depth >= prev);
        prev = r.tree_depth;
    }
    // Every stored point predicts itself exactly (AlreadySeen identity).
    for (p, oqp) in tree.stored_vertices().take(10) {
        let pred = tree.predict(p).unwrap();
        assert!(pred.oqp.max_component_diff(&oqp) < 1e-6);
    }
}

#[test]
fn savings_are_mostly_nonnegative() {
    let ds = small_ds();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: 50,
        k: 10,
        measure_savings: true,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    let saved: Vec<f64> = res
        .records
        .iter()
        .map(|r| r.cycles_from_default as f64 - r.cycles_from_predicted.unwrap() as f64)
        .collect();
    // On average, starting from the prediction must not cost extra cycles.
    assert!(
        metrics::mean(&saved) >= -0.1,
        "mean savings {:.3} strongly negative",
        metrics::mean(&saved)
    );
}

#[test]
fn per_category_breakdown_covers_all_categories() {
    let ds = small_ds();
    let engine = LinearScan::new(&ds.collection);
    let opts = StreamOptions {
        n_queries: 100,
        k: 10,
        ..Default::default()
    };
    let res = run_stream(&ds, &engine, &opts);
    let bd = fbp_eval::per_category::breakdown(&ds.collection, &res.records);
    assert_eq!(bd.names.len(), 7);
    assert_eq!(
        bd.names,
        vec!["Bird", "Fish", "Mammal", "Blossom", "TreeLeaf", "Bridge", "Monument"]
    );
    // With 100 queries over 7 categories, most categories get sampled.
    let sampled = bd.query_counts.iter().filter(|&&c| c > 0).count();
    assert!(sampled >= 5, "only {sampled} categories sampled");
    assert_eq!(bd.query_counts.iter().sum::<usize>(), 100);
}
