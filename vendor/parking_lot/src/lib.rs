//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses: `RwLock` and `Mutex` whose
//! `read`/`write`/`lock` return guards directly (no `Result`). Poisoning
//! is translated into a panic propagation: if a writer panicked, the data
//! is taken anyway (parking_lot has no poisoning at all, so this matches
//! its semantics closely enough for read-mostly workloads).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn concurrent_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.read().iter().sum::<i32>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
