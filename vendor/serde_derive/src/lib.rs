//! Offline stand-in for `serde_derive`: a `#[derive(Serialize)]` that
//! handles plain (non-generic) structs with named fields, emitting a
//! field-by-field JSON object through the local `serde` shim's
//! `Serialize::write_json`. Written against the raw `proc_macro` API so
//! it needs no syn/quote (the build environment is offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let body: String = fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let comma = if i > 0 { "out.push(',');" } else { "" };
            format!(
                "{comma} out.push_str(\"\\\"{f}\\\":\"); \
                 serde::Serialize::write_json(&self.{f}, out);"
            )
        })
        .collect();
    let imp = format!(
        "impl serde::Serialize for {name} {{\
             fn write_json(&self, out: &mut String) {{\
                 out.push('{{');\
                 {body}\
                 out.push('}}');\
             }}\
         }}"
    );
    imp.parse().expect("generated impl parses")
}

/// Extract the struct name and its named field identifiers.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes (#[...]) and doc comments.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("#[derive(Serialize)] requires a struct");
    // Find the brace-delimited field body (skipping any generics would go
    // here; the workspace's serialized structs are non-generic).
    let body = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("#[derive(Serialize)] requires named fields");

    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    let mut angle_depth = 0i32;
    let mut expect_field = true;
    while let Some(tt) = toks.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // attribute body
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expect_field = true;
            }
            TokenTree::Ident(id) if expect_field && angle_depth == 0 => {
                let s = id.to_string();
                if s == "pub" {
                    // Visibility; possibly followed by pub(crate) group.
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next();
                    }
                } else if matches!(
                    toks.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':'
                ) {
                    fields.push(s);
                    expect_field = false;
                }
            }
            _ => {}
        }
    }
    (name, fields)
}
