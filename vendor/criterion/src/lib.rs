//! Offline stand-in for `criterion`.
//!
//! Wall-clock micro-benchmark harness with the API subset the workspace's
//! benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros, and `black_box`. Each benchmark warms up,
//! auto-calibrates an iteration count, collects `sample_size` timed
//! samples, and prints `min / median / mean` per-iteration times.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement back-ends (only wall-clock time here).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Compose from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone, Copy)]
struct BenchConfig {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: BenchConfig,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(id, self.cfg, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    cfg: BenchConfig,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Total time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Number of timed samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.id), self.cfg, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.cfg, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (upstream emits summary reports here; we print per
    /// benchmark, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Per-sample batching policy for [`Bencher::iter_batched`]. The shim
/// regenerates inputs per iteration regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch upstream.
    LargeInput,
    /// Each input used exactly once.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    cfg: BenchConfig,
    /// Collected per-iteration sample means, in nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure a closure: warm-up, calibrate iterations per sample, then
    /// collect `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches and the branch predictor).
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_end {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Calibrate: spread measurement_time across sample_size samples.
        let sample_ns = self.cfg.measurement_time.as_nanos() as f64 / self.cfg.sample_size as f64;
        let iters_per_sample = ((sample_ns / per_iter.max(1.0)) as u64).clamp(1, u64::MAX);

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Measure a closure over fresh inputs produced by `setup`. Unlike
    /// upstream, setup time is excluded by timing each routine call
    /// individually (coarser clock granularity, same contract).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        // Warm-up.
        let warm_end = Instant::now() + self.cfg.warm_up_time;
        let mut per_iter = 0.0;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            per_iter += t0.elapsed().as_nanos() as f64;
            warm_iters += 1;
        }
        per_iter /= warm_iters.max(1) as f64;

        let sample_ns = self.cfg.measurement_time.as_nanos() as f64 / self.cfg.sample_size as f64;
        let iters_per_sample = ((sample_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let mut elapsed = 0.0;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed().as_nanos() as f64;
            }
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

fn run_benchmark(id: &str, cfg: BenchConfig, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        cfg,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|a, c| a.partial_cmp(c).expect("finite timings"));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<48} time: [min {} median {} mean {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(10));
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("euclidean", "scan");
        assert_eq!(id.id, "euclidean/scan");
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
    }
}
