//! Offline stand-in for the `bytes` crate: a growable byte buffer plus
//! the little-endian `BufMut` writer methods the persistence layer uses.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Consume into the underlying vector (stands in for `freeze()`).
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Little-endian write interface.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16_le(0x0102);
        b.put_u32_le(0x0304_0506);
        b.put_u64_le(1);
        b.put_f64_le(1.0);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(&b[..3], &[0xAB, 0x02, 0x01]);
        assert_eq!(&b[3..7], &[0x06, 0x05, 0x04, 0x03]);
        assert_eq!(b[7], 1);
        assert_eq!(&b[15..23], &1.0f64.to_le_bytes());
        assert_eq!(b.to_vec().len(), b.len());
    }
}
