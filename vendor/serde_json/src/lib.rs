//! Offline stand-in for `serde_json`: `to_string` over the shim
//! `serde::Serialize` trait, plus a self-contained JSON parser into a
//! [`Value`] tree with the indexing/comparison sugar tests use
//! (`v["key"][0] == 0.5`).

use std::fmt;
use std::ops::Index;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field access; `Null` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As an f64 when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// As a str when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("bad array token {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("bad object token {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_index() {
        let v = from_str(r#"{"title":"J","series":[{"y":[0.5,1]}],"ok":true}"#).unwrap();
        assert_eq!(v["title"], "J");
        assert_eq!(v["series"][0]["y"][0], 0.5);
        assert_eq!(v["series"][0]["y"][1], 1.0);
        assert_eq!(v["ok"], true);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn escapes_round_trip() {
        let v = from_str(r#""a\"b\nA""#).unwrap();
        assert_eq!(v, "a\"b\nA");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
