//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace's test
//! suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`, range
//! and tuple strategies, `prop::collection::vec`, and the `prop_map` /
//! `prop_flat_map` combinators. Cases are generated deterministically
//! (seeded per test name) and there is **no shrinking** — a failing case
//! reports its case number and message and panics immediately.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (FNV-1a) so each test gets its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi].
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Failure raised by `prop_assert!` and friends.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure with a message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps tree-heavy suites fast while
        // still covering the input space well.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retry until `pred` accepts a value (bounded; panics after 1000
    /// rejections, mirroring proptest's local-reject limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Types drawable unconstrained via [`any()`], mirroring
/// `proptest::arbitrary::Arbitrary` for the types the workspace needs.
pub trait Arbitrary {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any()`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                self.start().wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident => $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Length specification for [`vec()`]: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.size.lo, self.size.hi);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`: `Some` with probability 1/2
        /// (upstream's default probability), `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of()`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body (returns a
/// [`TestCaseError`] instead of panicking, like upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                l
            )));
        }
    }};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}:\n{}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..500 {
            let f = (0.5..2.0f64).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&u));
            let v = prop::collection::vec(0.0..1.0f64, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let (a, b) = ((0..5u32), (0.0..1.0f64)).generate(&mut rng);
            assert!(a < 5 && b < 1.0);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::from_name("combinators");
        let s = (1usize..4).prop_flat_map(|n| prop::collection::vec(0.0..1.0f64, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let doubled = (0..10u32).prop_map(|x| x * 2);
        assert_eq!(doubled.generate(&mut rng) % 2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_with_patterns(
            mut v in prop::collection::vec(0.0..1.0f64, 1..8),
            k in 1usize..5,
        ) {
            v.push(0.5);
            prop_assert!(!v.is_empty());
            prop_assert!(k >= 1, "k was {}", k);
            prop_assert_eq!(v.last().copied(), Some(0.5));
        }
    }
}
