//! Offline stand-in for `crossbeam`, delegating scoped threads to
//! `std::thread::scope` (stable since Rust 1.63, which removed the need
//! for crossbeam's implementation). Only the `thread::scope` API the
//! workspace uses is provided.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure; spawns scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle (all
        /// call sites in this workspace ignore it).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Run a closure with a thread scope; all spawned threads are joined
    /// before this returns. Panics in unjoined threads propagate as a
    /// panic here (std semantics), so the `Err` arm is never produced —
    /// it exists to satisfy crossbeam's `Result` signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        super::thread::scope(|scope| {
            for &x in &data {
                let counter = &counter;
                scope.spawn(move |_| counter.fetch_add(x, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
