//! Offline stand-in for `serde`, specialized to the one output format the
//! workspace needs: JSON text. `Serialize` writes the value directly as
//! JSON; the `#[derive(Serialize)]` macro (re-exported from the local
//! `serde_derive` shim) emits field-by-field object output for plain
//! structs with named fields.

pub use serde_derive::Serialize;

/// Serialize a value as JSON text.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_json_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number; non-finite floats become `null` (matching
/// `serde_json`'s behavior for f64).
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Integral values print without a trailing ".0", like serde_json.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        write_f64(*self, out);
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        write_f64(*self as f64, out);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        }
    )*};
}
impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_escaped(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&2.0f64), "2");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&42u32), "42");
        assert_eq!(json(&String::from("a\"b")), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1.0f64, 2.5]), "[1,2.5]");
        assert_eq!(json(&Option::<f64>::None), "null");
        assert_eq!(json(&Some(3u8)), "3");
    }
}
