//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the exact API surface the workspace uses: `StdRng`
//! seeded from a `u64`, `Rng::{gen, gen_range, gen_bool}` over the
//! primitive numeric types, and `seq::SliceRandom::shuffle`. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the callers rely on (they never depend
//! on matching upstream `rand`'s exact streams).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, full range for integers, fair coin for bool).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `hi` is exclusive.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi` is inclusive.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Floating rounding can land exactly on `hi`; clamp back in.
                if v < hi { v } else { lo }
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing generator extension trait (the rand 0.8 `Rng`).
pub trait Rng: RngCore {
    /// Draw from the type's standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed from one `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (public-domain algorithm by
    /// Blackman & Vigna). Not the same stream as upstream `StdRng`, but
    /// deterministic per seed, which is the property callers rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension: random shuffling.
    pub trait SliceRandom {
        /// Item type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..20usize);
            assert!(i < 20);
            let j = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&j));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
